//! The virtual-time executor.
//!
//! Drives a [`Program`] over a [`Platform`] under a [`Scheduler`], producing
//! a [`RunReport`]. The execution model mirrors the OmpSs runtime the paper
//! uses:
//!
//! * task instances become *ready* when their data dependences are
//!   satisfied and their taskwait epoch is active;
//! * ready instances are *bound* to a device by the scheduler and wait in
//!   that device's FIFO queue for a free slot (a CPU hardware thread, or
//!   the GPU);
//! * dispatching an instance first satisfies coherence (host↔device
//!   transfers for its read regions — serialised with the device's work,
//!   as in a single-command-queue OpenCL device), then executes under the
//!   device's roofline model;
//! * dynamic policies pay the platform's per-decision scheduling overhead
//!   per instance; pinned (static) plans do not;
//! * each `taskwait` waits for all prior instances, flushes device-resident
//!   data to the host and invalidates device copies;
//! * a final implicit flush returns all results to the host — the paper's
//!   "one device-to-host data transfer after the last kernel finishes".
//!
//! # Resilient execution
//!
//! [`simulate_faulty`] runs the same model under a seeded
//! [`FaultSchedule`]:
//!
//! * **throttle ramps** multiply an attempt's execution time;
//! * **transfer faults** re-issue the transfer at full wire cost;
//! * a **transient task fault** wastes the attempt, then the
//!   [`RetryPolicy`] retries on the same device with exponential backoff
//!   charged as simulated time; when retries are exhausted the task *fails
//!   over* to the surviving device with the most slots (ultimately the
//!   host, mirroring the paper's Only-CPU baseline), and a task that
//!   exhausts retries with nowhere left to go finishes in *safe mode*
//!   (fault sampling disabled) so every run terminates;
//! * a **device dropout** kills the device's queued and in-flight work and
//!   re-binds it to survivors; uncommitted completions of the *current*
//!   epoch that ran on the dead device are re-executed, because their
//!   results lived in the dead memory and the host only holds the previous
//!   taskwait's checkpoint. Epochs whose barrier was already reached are
//!   committed checkpoints and are never re-executed.
//!
//! The fault path is strictly additive: with no schedule the executor takes
//! the exact event sequence of the healthy simulator, byte for byte.
//!
//! # Gray-failure resilience
//!
//! [`simulate_resilient`] layers the [`crate::health`] subsystem on top:
//! a straggler *watchdog* that hedges slow attempts onto the best other
//! device (first finisher wins), *duplicate-check* verification that
//! catches silently corrupted epochs at their barrier and rolls them back
//! to the checkpoint, and a per-device *circuit breaker* fed by an EWMA
//! health score. With [`HealthConfig::disabled`] the resilient executor is
//! exactly [`simulate_faulty`], byte for byte. Because attempt durations
//! are sampled at dispatch, the watchdog is *prescient*: the fire event is
//! armed up front exactly when the attempt will still be running at its
//! deadline — semantically identical to a wall-clock watchdog. Two
//! documented simplifications: a hedged duplicate re-reads its inputs
//! without re-charging transfers and samples no faults of its own, and a
//! hedge win leaves the coherence directory naming the primary's memory
//! space (only timing and attribution move to the peer).
//!
//! # Adaptive repartitioning
//!
//! [`simulate_adaptive`] layers the [`crate::adapt`] controller on top:
//! at each taskwait barrier the per-device busy-time skew of the closing
//! epoch is measured, a sustained imbalance re-solves the plan's Glinda
//! partition against the *observed* throughputs and re-pins the remaining
//! epochs' chunks, and when re-solves are exhausted the static plan
//! escalates to an internal DP-Perf scheduler seeded with the run's own
//! observations. With [`AdaptConfig::disabled`] the adaptive executor is
//! exactly [`simulate_resilient`], byte for byte. Skew accounting is
//! dispatch-based (a hedge win still attributes to the primary's
//! dispatch), and a dropout or epoch rollback clears the open epoch's
//! observation window — the detector is a heuristic over committed work,
//! not an audit trail.

use crate::adapt::{AdaptConfig, AdaptPlan, AdaptReport, ReplanConfig, ReplanError};
use crate::coherence::CoherenceDir;
use crate::graph::TaskGraph;
use crate::health::{BreakerState, HealthConfig, HealthReport, QuarantineSpan, VerificationPolicy};
use crate::journal::{EpochRecord, JournalError, JournalSink, RngCursors};
use crate::obs::{
    route_event, DeviceBreakdown, NullObserver, Observer, TimeBreakdown, TraceObserver,
};
use crate::program::{KernelId, Program, TaskDesc, TaskId};
use crate::scheduler::{BindCtx, PerfScheduler, RateObservation, Scheduler};
use crate::stats::{KernelStats, RunReport};
use crate::trace::{Trace, TraceEvent};
use glinda::{MultiDeviceProblem, MultiSolution};
use hetero_platform::{
    DeviceId, EventQueue, FaultCounters, FaultEvent, FaultRng, FaultSchedule, MemSpaceId, Platform,
    PlatformCounters, RetryPolicy, SimTime,
};
use std::collections::{BTreeMap, VecDeque};

/// Stream-splitting constant for the health RNG: verification sampling
/// draws from its own SplitMix64 stream so enabling it never perturbs
/// fault sampling.
///
/// Public (with [`ADAPT_STREAM`] and [`CORRELATED_STREAM`]) so the fuzzing
/// harness can pin the values with a golden-seed test: changing any of
/// these constants silently re-rolls every recorded fault trace and fuzz
/// corpus entry, so a refactor must not be able to shift them unnoticed.
pub const HEALTH_STREAM: u64 = 0x5EED_C0DE_D00D_FEED;

/// Stream-splitting constant for the adaptation RNG: the controller's
/// tie-breaks draw from their own SplitMix64 stream so enabling
/// adaptation never perturbs fault or verification sampling.
pub const ADAPT_STREAM: u64 = 0xADA7_ADA7_ADA7_ADA7;

/// Stream-splitting constant for the correlated-trigger RNG: conditional
/// sibling draws come from their own SplitMix64 stream so a schedule with
/// fault domains replays the *base* fault sampling of the same schedule
/// without domains byte-identically. The stream is only allocated when
/// [`FaultSchedule::has_correlation`] is true.
pub const CORRELATED_STREAM: u64 = 0x00C0_DEFA_17D0_5EED;

/// Stream-splitting constant for the plan-repair RNG: survivor re-plan
/// tie-breaks draw from their own SplitMix64 stream so enabling repair
/// never perturbs fault, health, or adaptation sampling and identical
/// seeds replay byte-identically.
pub const REPLAN_STREAM: u64 = 0x9EBA_1A2C_D00D_5EED;

/// Safety margin of the N-way rebind guard: a survivor re-plan (or barrier
/// rebalance) applies an epoch's moves only when the modeled wall beats the
/// naive chunk-by-chunk failover wall by at least this fraction. The model
/// is a per-epoch LPT relaxation — it prices execution at observed rates
/// plus host round-trip and migration transfers, but cannot see link
/// serialization or queue interleaving — so marginal predicted wins are
/// not acted on.
const NWAY_GUARD_MARGIN: f64 = 0.10;

enum Ev {
    TaskDone {
        task: TaskId,
        dev: DeviceId,
        gen: u32,
    },
    TaskAborted {
        task: TaskId,
        dev: DeviceId,
        gen: u32,
    },
    EpochFlushed,
    DeviceDropout {
        dev: DeviceId,
    },
    /// The straggler watchdog's deadline passed with the attempt still
    /// running (`started`/`gen` identify the exact dispatch watched).
    WatchdogFire {
        task: TaskId,
        started: SimTime,
        gen: u32,
    },
    /// A hedged duplicate designated the winner finished on its peer.
    HedgeDone {
        task: TaskId,
        dev: DeviceId,
        gen: u32,
    },
    /// A quarantined device's cool-down elapsed: half-open the circuit.
    CircuitProbe {
        dev: DeviceId,
    },
}

/// Simulate `program` on `platform` under `scheduler`.
pub fn simulate(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
) -> RunReport {
    simulate_observed(program, platform, scheduler, &mut NullObserver)
}

/// [`simulate`] with a pluggable [`Observer`] receiving every executor
/// event (see [`crate::obs`]). Observers are strictly observational: the
/// run's virtual-time outcome is identical for any observer.
pub fn simulate_observed(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    obs: &mut dyn Observer,
) -> RunReport {
    Sim::new(
        program, platform, scheduler, obs, None, None, None, None, None,
    )
    .run()
}

/// [`simulate`], additionally recording an execution [`Trace`].
pub fn simulate_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
) -> (RunReport, Trace) {
    let mut obs = TraceObserver::new();
    let report = simulate_observed(program, platform, scheduler, &mut obs);
    (report, obs.into_trace())
}

/// [`simulate`] under a seeded [`FaultSchedule`]: injects the scheduled
/// faults and executes resiliently under `policy` (see the module docs).
/// Identical schedules (same seed, same events) replay identical runs.
pub fn simulate_faulty(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
) -> RunReport {
    simulate_faulty_observed(
        program,
        platform,
        scheduler,
        schedule,
        policy,
        &mut NullObserver,
    )
}

/// [`simulate_faulty`] with a pluggable [`Observer`] (see [`crate::obs`]).
pub fn simulate_faulty_observed(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    obs: &mut dyn Observer,
) -> RunReport {
    Sim::new(
        program,
        platform,
        scheduler,
        obs,
        Some((schedule, policy)),
        None,
        None,
        None,
        None,
    )
    .run()
}

/// [`simulate_faulty`], additionally recording an execution [`Trace`] with
/// the fault events ([`TraceEvent::TaskFault`], [`TraceEvent::Failover`],
/// ...).
pub fn simulate_faulty_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
) -> (RunReport, Trace) {
    let mut obs = TraceObserver::new();
    let report = simulate_faulty_observed(program, platform, scheduler, schedule, policy, &mut obs);
    (report, obs.into_trace())
}

/// [`simulate_faulty`] with the gray-failure resilience subsystem
/// configured by `health` (see [`crate::health`]): the straggler watchdog
/// with hedged duplicates, duplicate-check SDC verification with epoch
/// rollback, and the device-health circuit breaker. With
/// [`HealthConfig::disabled`] this is exactly [`simulate_faulty`].
pub fn simulate_resilient(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
) -> RunReport {
    simulate_resilient_observed(
        program,
        platform,
        scheduler,
        schedule,
        policy,
        health,
        &mut NullObserver,
    )
}

/// [`simulate_resilient`] with a pluggable [`Observer`] (see
/// [`crate::obs`]).
pub fn simulate_resilient_observed(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    obs: &mut dyn Observer,
) -> RunReport {
    Sim::new(
        program,
        platform,
        scheduler,
        obs,
        Some((schedule, policy)),
        Some(*health),
        None,
        None,
        None,
    )
    .run()
}

/// [`simulate_resilient`], additionally recording an execution [`Trace`]
/// with the gray-failure events ([`TraceEvent::HedgeLaunched`],
/// [`TraceEvent::CorruptionDetected`], [`TraceEvent::CircuitOpen`], ...).
pub fn simulate_resilient_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
) -> (RunReport, Trace) {
    let mut obs = TraceObserver::new();
    let report = simulate_resilient_observed(
        program, platform, scheduler, schedule, policy, health, &mut obs,
    );
    (report, obs.into_trace())
}

/// [`simulate_resilient`] with the adaptive repartitioning controller
/// configured by `adapt` (see [`crate::adapt`]): per-epoch imbalance
/// detection, Glinda re-solving against observed throughputs, and
/// static → dynamic strategy escalation. `plan` carries the static
/// partitioning decision behind the program (when there is one) so the
/// controller can re-solve it; programs without a static split pass
/// `None` and can still escalate. With [`AdaptConfig::disabled`] this is
/// exactly [`simulate_resilient`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_adaptive(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
    plan: Option<AdaptPlan>,
) -> RunReport {
    simulate_adaptive_observed(
        program,
        platform,
        scheduler,
        schedule,
        policy,
        health,
        adapt,
        plan,
        &mut NullObserver,
    )
}

/// [`simulate_adaptive`] with a pluggable [`Observer`] (see
/// [`crate::obs`]).
#[allow(clippy::too_many_arguments)]
pub fn simulate_adaptive_observed(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
    plan: Option<AdaptPlan>,
    obs: &mut dyn Observer,
) -> RunReport {
    Sim::new(
        program,
        platform,
        scheduler,
        obs,
        Some((schedule, policy)),
        Some(*health),
        Some((*adapt, plan)),
        None,
        None,
    )
    .run()
}

/// [`simulate_adaptive`], additionally recording an execution [`Trace`]
/// with the adaptation events ([`TraceEvent::ImbalanceDetected`],
/// [`TraceEvent::Repartitioned`], [`TraceEvent::StrategyEscalated`]).
#[allow(clippy::too_many_arguments)]
pub fn simulate_adaptive_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
    plan: Option<AdaptPlan>,
) -> (RunReport, Trace) {
    let mut obs = TraceObserver::new();
    let report = simulate_adaptive_observed(
        program, platform, scheduler, schedule, policy, health, adapt, plan, &mut obs,
    );
    (report, obs.into_trace())
}

/// [`simulate_adaptive`] with the degraded-mode plan-repair subsystem
/// configured by `replan` (see [`ReplanConfig`]): when a device dies past
/// its retry budget or the circuit breaker quarantines it, the executor
/// re-solves every not-yet-checkpointed epoch over the surviving device
/// set at observed rates and rebinds the queued chunks wave-aware, with
/// migrations priced by the nominal link; when a breaker recloses, a
/// symmetric *healing* re-plan readmits the device. Both run behind the
/// controller's strict no-regression guard and are bounded by
/// [`ReplanConfig::max_replans`]. With [`ReplanConfig::disabled`] this is
/// exactly [`simulate_adaptive`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_repairing(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
    plan: Option<AdaptPlan>,
    replan: &ReplanConfig,
) -> RunReport {
    simulate_repairing_observed(
        program,
        platform,
        scheduler,
        schedule,
        policy,
        health,
        adapt,
        plan,
        replan,
        &mut NullObserver,
    )
}

/// [`simulate_repairing`] with a pluggable [`Observer`] (see
/// [`crate::obs`]).
#[allow(clippy::too_many_arguments)]
pub fn simulate_repairing_observed(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
    plan: Option<AdaptPlan>,
    replan: &ReplanConfig,
    obs: &mut dyn Observer,
) -> RunReport {
    Sim::new(
        program,
        platform,
        scheduler,
        obs,
        Some((schedule, policy)),
        Some(*health),
        Some((*adapt, plan)),
        Some(*replan),
        None,
    )
    .run()
}

/// [`simulate_repairing`], additionally recording an execution [`Trace`]
/// with the repair events ([`TraceEvent::PlanRepaired`],
/// [`TraceEvent::DeviceReadmitted`]).
#[allow(clippy::too_many_arguments)]
pub fn simulate_repairing_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
    health: &HealthConfig,
    adapt: &AdaptConfig,
    plan: Option<AdaptPlan>,
    replan: &ReplanConfig,
) -> (RunReport, Trace) {
    let mut obs = TraceObserver::new();
    let report = simulate_repairing_observed(
        program, platform, scheduler, schedule, policy, health, adapt, plan, replan, &mut obs,
    );
    (report, obs.into_trace())
}

/// The journaled executor entry: any of the five simulate paths (pass
/// `None` for the layers the run does not use, exactly as the un-journaled
/// wrappers do), with a [`JournalSink`] committing one [`EpochRecord`] per
/// epoch flush. The sink must have been opened with
/// [`JournalSink::begin`]. Returns [`JournalError::Killed`] when the
/// sink's [`hetero_platform::KillSchedule`] fires (the journal text
/// written so far is valid and resumable), and
/// [`JournalError::DivergentReplay`] when a resumed run fails the
/// byte-exact redo-replay validation. A journaled run is byte-identical
/// to its un-journaled twin: the sink observes commits, it never steers.
#[allow(clippy::too_many_arguments)]
pub fn simulate_journaled_observed(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    faults: Option<(&FaultSchedule, RetryPolicy)>,
    health: Option<HealthConfig>,
    adapt: Option<(AdaptConfig, Option<AdaptPlan>)>,
    replan: Option<ReplanConfig>,
    journal: &mut JournalSink,
    obs: &mut dyn Observer,
) -> Result<RunReport, JournalError> {
    Sim::new(
        program,
        platform,
        scheduler,
        obs,
        faults,
        health,
        adapt,
        replan,
        Some(journal),
    )
    .run_result()
}

/// Mutable fault-injection state, present only on the faulty path.
struct FaultCtx<'a> {
    schedule: &'a FaultSchedule,
    policy: RetryPolicy,
    rng: FaultRng,
    counters: FaultCounters,
    /// Per device: permanently dropped out.
    dead: Vec<bool>,
    /// Per task: attempt generation; completion events carry the
    /// generation they were issued under, so a dropout can invalidate the
    /// in-flight event of a task it kills by bumping this.
    gen: Vec<u32>,
    /// Per task: already failed over once (next exhaustion → safe mode).
    failed_over: Vec<bool>,
    /// Per task: placement was forced (scheduler bypassed), so the
    /// scheduler must not be told about its completion — its own books
    /// still name the device *it* chose.
    suppress_complete: Vec<bool>,
    /// Per task: currently occupying a slot (dispatched, not done).
    in_flight: Vec<bool>,
    /// Per task: dispatch time of the current attempt batch.
    started_at: Vec<SimTime>,
    /// Per task: `record_task` was applied for the current dispatch (false
    /// while an aborting dispatch only charged raw busy time).
    recorded: Vec<bool>,
    /// Per task: fault loss (failed attempts, backoff, transfer retries)
    /// already booked into `time_lost` for the current dispatch, so a
    /// dropout that discards the dispatch charges only the remainder.
    booked_loss: Vec<SimTime>,
    /// Per task: the current committed result is silently corrupted
    /// (ground truth, tracked whether or not verification is on).
    corrupt: Vec<bool>,
    /// Corrupt results injected across all dispatches.
    corruptions_injected: u64,
    /// Corruption injection disabled for the open epoch's re-runs (set
    /// after `max_rollbacks_per_epoch`; the SDC analog of safe mode).
    suppress_corruption: bool,
    /// Sibling fault windows synthesized by correlated triggering during
    /// this run, in trigger order (exported as
    /// `RunReport::synthesized_faults` for trace recording).
    synth: Vec<FaultEvent>,
    /// Conditional-trigger stream, allocated only when the schedule has a
    /// domain with `trigger_prob > 0` so domain-free schedules replay
    /// byte-identically.
    corr_rng: Option<FaultRng>,
}

impl FaultCtx<'_> {
    /// Task-fault probability for `dev` at `at`, for an attempt of a task
    /// dispatched at `dispatched`: composes the schedule's windows with the
    /// sibling windows synthesized so far (same ordered product a replayed
    /// [`hetero_platform::FaultTrace`] computes). The dispatch time lets a
    /// replay schedule gate its baked-in synthesized windows to exactly
    /// the tasks the recorded run's live windows could reach.
    fn task_fault_prob(&self, dev: DeviceId, at: SimTime, dispatched: SimTime) -> f64 {
        self.schedule
            .task_fault_prob_dispatched(dev, at, dispatched, &self.synth)
    }

    /// `true` while any synthesized sibling window is open at `now`.
    fn synth_window_open(&self, now: SimTime) -> bool {
        self.synth.iter().any(|ev| {
            matches!(ev, FaultEvent::TaskFaults { from, until, .. }
                if *from <= now && now < *until)
        })
    }
}

/// A member of a fault domain faulted at `now` on `source`: draw, per
/// sibling, whether the shared root condition propagates — opening a
/// `sibling_fault_prob` window of the domain's length on the sibling. The
/// draws come from the dedicated correlated stream and every opened window
/// is recorded in `f.synth` (and the trace), so a recorded run replays
/// byte-identically with triggering disabled.
fn trigger_correlated(f: &mut FaultCtx, obs: &mut dyn Observer, source: DeviceId, now: SimTime) {
    let Some(rng) = f.corr_rng.as_mut() else {
        return;
    };
    for (di, d) in f.schedule.domains.iter().enumerate() {
        if d.trigger_prob <= 0.0 || !d.contains(source) {
            continue;
        }
        for &sib in &d.members {
            if sib == source {
                continue;
            }
            if rng.next_f64() >= d.trigger_prob {
                continue;
            }
            let until = now + d.window;
            f.synth.push(FaultEvent::TaskFaults {
                dev: Some(sib),
                prob: d.sibling_fault_prob,
                from: now,
                until,
            });
            f.counters.correlated_triggers += 1;
            route_event(
                obs,
                &TraceEvent::CorrelatedFaultTriggered {
                    domain: di,
                    source,
                    sibling: sib,
                    until,
                    at: now,
                },
            );
        }
    }
}

/// An active hedged duplicate of one straggling task.
#[derive(Clone, Copy)]
struct Hedge {
    /// Device the duplicate runs on.
    peer: DeviceId,
    /// When the duplicate was launched.
    launched: SimTime,
    /// The duplicate will finish before the straggling primary (decided at
    /// launch — attempt durations are known at dispatch).
    winner: bool,
}

/// Mutable gray-failure state, present only when a [`HealthConfig`] with
/// at least one mitigation enabled was supplied.
struct HealthCtx {
    config: HealthConfig,
    /// Verification-sampling stream, independent of the fault stream.
    rng: FaultRng,
    report: HealthReport,
    /// Per device: consecutive bad observations (resets on a good one).
    consecutive_bad: Vec<u32>,
    /// Per device: circuit-breaker state.
    state: Vec<BreakerState>,
    /// Per device: the probe task let through while half-open.
    probe_task: Vec<Option<TaskId>>,
    /// Per task: the watchdog fired for the current dispatch.
    straggled: Vec<bool>,
    /// Per task: active hedged duplicate.
    hedge: Vec<Option<Hedge>>,
    /// Rollbacks of the open epoch so far.
    rollbacks_this_epoch: u32,
}

/// Mutable adaptation state, present only when an [`AdaptConfig`] with at
/// least one mitigation enabled was supplied.
struct AdaptCtx {
    config: AdaptConfig,
    /// The static partitioning decision behind the program, re-solved on
    /// imbalance (`solution` tracks the currently applied split). `None`
    /// disables repartitioning but still allows escalation.
    plan: Option<AdaptPlan>,
    /// Tie-break stream, independent of the fault and health streams.
    rng: FaultRng,
    report: AdaptReport,
    /// Per device: busy time committed in the open epoch's window.
    epoch_busy: Vec<SimTime>,
    /// Per device: items committed in the open epoch's window.
    epoch_items: Vec<u64>,
    /// Cumulative (kernel, device) throughput observations; seeds the
    /// escalated DP-Perf scheduler.
    obs: BTreeMap<(KernelId, DeviceId), RateObservation>,
    /// Consecutive barriers whose skew exceeded the threshold.
    consecutive_imbalanced: u32,
    /// Re-solves since the run last met the balance target.
    resolves_since_balance: u32,
    /// Per task: repartition override re-pinning a not-yet-placed chunk.
    override_of: Vec<Option<DeviceId>>,
    /// The internal DP-Perf scheduler, once the static plan is abandoned.
    escalated: Option<PerfScheduler>,
    /// Per task: bound by the escalated scheduler (pays the dynamic
    /// per-decision scheduling overhead, routes `on_complete` internally).
    bound_by_escalated: Vec<bool>,
    /// Consecutive escalated barriers that were balanced *and* free of any
    /// open disturbance window; reaching `reinstate_after` attempts a
    /// de-escalation back to the (re-solved) static plan.
    calm_barriers: u32,
    /// When the previous taskwait barrier was reached — the closing
    /// epoch's wall clock, the de-escalation guard's dynamic baseline.
    last_barrier_at: SimTime,
}

/// Mutable plan-repair state, present only when an enabled
/// [`ReplanConfig`] was supplied (see [`simulate_repairing`]).
struct ReplanCtx {
    config: ReplanConfig,
    /// Tie-break stream, independent of the fault/health/adapt streams.
    rng: FaultRng,
    /// Survivor re-plans applied after a death or quarantine.
    replans: u64,
    /// Healing re-plans applied after a breaker reclose.
    readmissions: u64,
    /// Why the last repair attempt failed, if any did.
    error: Option<ReplanError>,
    /// Per task: survivor re-plan override re-pinning a pending chunk.
    override_of: Vec<Option<DeviceId>>,
    /// Per device: cumulative committed items, for observed-rate re-solves.
    obs_items: Vec<f64>,
    /// Per device: cumulative committed slot-busy seconds (pairs with
    /// `obs_items`; whole-device rate = items × slots / busy).
    obs_secs: Vec<f64>,
}

/// The available device with the most slots (ties → lowest id), excluding
/// `exclude`; `blocked` marks devices no binding may target (dead, or
/// quarantined by the circuit breaker). The host (device 0, never dead and
/// never quarantined) is the target of last resort.
fn fallback_device(platform: &Platform, blocked: &[bool], exclude: Option<DeviceId>) -> DeviceId {
    platform
        .devices
        .iter()
        .filter(|d| !blocked[d.id.0] && Some(d.id) != exclude)
        .max_by_key(|d| (d.spec.kind.slots(), std::cmp::Reverse(d.id.0)))
        .map(|d| d.id)
        .unwrap_or(DeviceId(0))
}

/// Per-dispatch blame decomposition of one task's slot occupancy, mirrored
/// alongside `busy_of` so reversals (dropout kills, epoch resets, hedge
/// losses, rollbacks) can recategorize exactly what dispatch charged.
/// Invariant: `sched + adapt + transfer + link + fault + exec == busy_of`
/// for a successful dispatch (`exec == 0` for an aborted one).
#[derive(Clone, Copy, Default)]
struct TaskCost {
    sched: SimTime,
    adapt: SimTime,
    transfer: SimTime,
    exec: SimTime,
    /// Mirrors the dispatch's `booked_loss`: fault time already charged to
    /// `fault_loss` at dispatch, so reversals charge only the remainder.
    fault: SimTime,
    /// Extra wire time a successful transfer paid on a degraded link over
    /// its nominal cost (reversed with `transfer` on reversal).
    link: SimTime,
    /// Binding overhead charged because a survivor re-plan re-pinned this
    /// chunk (the plan-repair analogue of `sched`/`adapt`).
    replan: SimTime,
}

struct Sim<'a> {
    program: &'a Program,
    platform: &'a Platform,
    scheduler: &'a mut dyn Scheduler,
    graph: TaskGraph,
    tasks: Vec<&'a TaskDesc>,
    epochs: Vec<Vec<TaskId>>,

    now: SimTime,
    queue: EventQueue<Ev>,
    coherence: CoherenceDir,
    counters: PlatformCounters,
    per_kernel: Vec<KernelStats>,

    remaining_preds: Vec<usize>,
    completed: Vec<bool>,
    busy_of: Vec<SimTime>,
    exec_of: Vec<SimTime>,
    placements: Vec<Option<DeviceId>>,
    dev_queues: Vec<VecDeque<TaskId>>,
    free_slots: Vec<usize>,
    /// Completion time of the last task finished on each device, used to
    /// start the taskwait flush of a device's data as soon as that device
    /// is done (overlapping with other devices still computing, as the
    /// runtime's asynchronous write-back does).
    dev_last_done: Vec<SimTime>,

    cur_epoch: usize,
    epoch_remaining: usize,
    flushes_done: usize,
    obs: &'a mut dyn Observer,
    /// Per-device blame accumulators (always on; `dead`/`idle`/`slots` are
    /// filled in at `finish`).
    blame: Vec<DeviceBreakdown>,
    /// Per-task blame mirror of the current dispatch's accounting.
    cost_of: Vec<TaskCost>,
    /// Per-device dropout time (for the `dead` blame component).
    death_at: Vec<Option<SimTime>>,
    /// Accelerator device owning each non-host memory space (`None` for
    /// the host space), for mapping a transfer hop to the host↔device
    /// link a [`FaultEvent::LinkDegrade`] window names.
    space_dev: Vec<Option<DeviceId>>,
    faults: Option<FaultCtx<'a>>,
    health: Option<HealthCtx>,
    adapt: Option<AdaptCtx>,
    replan: Option<ReplanCtx>,
    /// The write-ahead run journal, when this run is journaled (see
    /// [`crate::journal`]): one record per committed epoch flush.
    journal: Option<&'a mut JournalSink>,
    /// A journal failure (kill, divergent replay) raised mid-event; the
    /// run loop surfaces it as the run's `Err` after the event returns.
    journal_err: Option<JournalError>,
    /// Per device: cumulative *actual* exec seconds of committed chunks
    /// (throttle windows included), paired with [`Sim::cal_model`].
    cal_exec: Vec<f64>,
    /// Per device: the model-predicted exec seconds of those same chunks.
    /// The ratio `cal_exec / cal_model` calibrates the device model for
    /// rebalancing cost estimates — unlike a raw items-per-second
    /// extrapolation it is immune to launch-overhead and kernel-mix skew,
    /// while still capturing sustained throttling.
    cal_model: Vec<f64>,
}

impl<'a> Sim<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &'a Program,
        platform: &'a Platform,
        scheduler: &'a mut dyn Scheduler,
        obs: &'a mut dyn Observer,
        faults: Option<(&'a FaultSchedule, RetryPolicy)>,
        health: Option<HealthConfig>,
        adapt: Option<(AdaptConfig, Option<AdaptPlan>)>,
        replan: Option<ReplanConfig>,
        journal: Option<&'a mut JournalSink>,
    ) -> Self {
        let graph = TaskGraph::build(program);
        let tasks: Vec<&TaskDesc> = program.tasks().into_iter().map(|(_, t)| t).collect();
        let epochs = program.epochs();
        let n = tasks.len();
        let per_kernel = program
            .kernels
            .iter()
            .map(|k| KernelStats {
                name: k.name.clone(),
                items_per_device: vec![0; platform.devices.len()],
                tasks_per_device: vec![0; platform.devices.len()],
            })
            .collect();
        let faults = faults.map(|(schedule, policy)| {
            schedule
                .validate()
                .unwrap_or_else(|e| panic!("invalid fault schedule: {e}"));
            FaultCtx {
                schedule,
                policy,
                rng: schedule.rng(),
                counters: FaultCounters::default(),
                dead: vec![false; platform.devices.len()],
                gen: vec![0; n],
                failed_over: vec![false; n],
                suppress_complete: vec![false; n],
                in_flight: vec![false; n],
                started_at: vec![SimTime::ZERO; n],
                recorded: vec![false; n],
                booked_loss: vec![SimTime::ZERO; n],
                corrupt: vec![false; n],
                corruptions_injected: 0,
                suppress_corruption: false,
                synth: Vec::new(),
                corr_rng: schedule
                    .has_correlation()
                    .then(|| FaultRng::new(schedule.seed ^ CORRELATED_STREAM)),
            }
        });
        let ndev = platform.devices.len();
        let health = health
            .inspect(|config| {
                config
                    .validate()
                    .unwrap_or_else(|e| panic!("invalid health config: {e}"));
            })
            .filter(HealthConfig::enabled)
            .map(|config| HealthCtx {
                config,
                rng: FaultRng::new(
                    faults.as_ref().map(|f| f.schedule.seed).unwrap_or(0) ^ HEALTH_STREAM,
                ),
                report: HealthReport {
                    scores: vec![1.0; ndev],
                    ..HealthReport::default()
                },
                consecutive_bad: vec![0; ndev],
                state: vec![BreakerState::Closed; ndev],
                probe_task: vec![None; ndev],
                straggled: vec![false; n],
                hedge: vec![None; n],
                rollbacks_this_epoch: 0,
            });
        let adapt = adapt
            .inspect(|(config, _)| {
                config
                    .validate()
                    .unwrap_or_else(|e| panic!("invalid adapt config: {e}"));
            })
            .filter(|(config, _)| config.enabled())
            .map(|(config, plan)| AdaptCtx {
                config,
                plan,
                rng: FaultRng::new(
                    faults.as_ref().map(|f| f.schedule.seed).unwrap_or(0) ^ ADAPT_STREAM,
                ),
                report: AdaptReport::default(),
                epoch_busy: vec![SimTime::ZERO; ndev],
                epoch_items: vec![0; ndev],
                obs: BTreeMap::new(),
                consecutive_imbalanced: 0,
                resolves_since_balance: 0,
                override_of: vec![None; n],
                escalated: None,
                bound_by_escalated: vec![false; n],
                calm_barriers: 0,
                last_barrier_at: SimTime::ZERO,
            });
        let replan = replan
            .inspect(|config| {
                config
                    .validate()
                    .unwrap_or_else(|e| panic!("invalid replan config: {e}"));
            })
            .filter(ReplanConfig::enabled)
            .map(|config| ReplanCtx {
                config,
                rng: FaultRng::new(
                    faults.as_ref().map(|f| f.schedule.seed).unwrap_or(0) ^ REPLAN_STREAM,
                ),
                replans: 0,
                readmissions: 0,
                error: None,
                override_of: vec![None; n],
                obs_items: vec![0.0; ndev],
                obs_secs: vec![0.0; ndev],
            });
        Sim {
            remaining_preds: graph.preds.iter().map(Vec::len).collect(),
            graph,
            tasks,
            epochs,
            program,
            platform,
            scheduler,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            coherence: CoherenceDir::new(platform.mem_spaces, &program.buffers),
            counters: PlatformCounters::new(platform.devices.len()),
            per_kernel,
            completed: vec![false; n],
            busy_of: vec![SimTime::ZERO; n],
            exec_of: vec![SimTime::ZERO; n],
            placements: vec![None; n],
            dev_queues: platform.devices.iter().map(|_| VecDeque::new()).collect(),
            free_slots: platform
                .devices
                .iter()
                .map(|d| d.spec.kind.slots())
                .collect(),
            dev_last_done: vec![SimTime::ZERO; platform.devices.len()],
            cur_epoch: 0,
            epoch_remaining: 0,
            flushes_done: 0,
            obs,
            blame: vec![DeviceBreakdown::default(); ndev],
            cost_of: vec![TaskCost::default(); n],
            death_at: vec![None; ndev],
            space_dev: {
                let mut map = vec![None; platform.mem_spaces];
                for d in &platform.devices {
                    if !d.mem_space.is_host() {
                        map[d.mem_space.0] = Some(d.id);
                    }
                }
                map
            },
            faults,
            health,
            adapt,
            replan,
            journal,
            journal_err: None,
            cal_exec: vec![0.0; ndev],
            cal_model: vec![0.0; ndev],
        }
    }

    /// Reverse the non-fault blame components of `t`'s current dispatch on
    /// `dev` — the blame mirror of taking back `busy_of[t]` from the device
    /// counters. The `fault` component stays booked (it mirrors
    /// `time_lost`, which reversals also keep).
    fn unblame(&mut self, t: TaskId, dev: DeviceId) {
        let c = self.cost_of[t.0];
        let b = &mut self.blame[dev.0];
        b.scheduling = b.scheduling.saturating_sub(c.sched);
        b.adaptation = b.adaptation.saturating_sub(c.adapt);
        b.transfer = b.transfer.saturating_sub(c.transfer);
        b.link_degraded = b.link_degraded.saturating_sub(c.link);
        b.compute = b.compute.saturating_sub(c.exec);
        b.replan = b.replan.saturating_sub(c.replan);
    }

    fn run(self) -> RunReport {
        self.run_result()
            .unwrap_or_else(|e| panic!("unjournaled run cannot fail: {e}"))
    }

    fn run_result(mut self) -> Result<RunReport, JournalError> {
        if self.epochs.is_empty() || self.tasks.is_empty() {
            return Ok(self.finish());
        }
        // Dropouts are scheduled up front: their events carry the lowest
        // sequence numbers, so at a time tie the failure wins — a task
        // finishing exactly when its device dies is killed.
        if let Some(f) = &self.faults {
            let dropouts = f.schedule.dropouts();
            for (dev, at) in dropouts {
                self.queue.push(at, Ev::DeviceDropout { dev });
            }
        }
        self.activate_epoch();
        while let Some((t, ev)) = self.queue.pop() {
            // Injected coordinator death at simulated time: the process
            // dies before processing any event at or past the instant.
            if let Some(kill_at) = self.journal.as_deref().and_then(JournalSink::time_kill_at) {
                if t >= kill_at {
                    let records = self.journal.as_deref().map_or(0, JournalSink::records);
                    return Err(JournalError::Killed { records, at: t });
                }
            }
            match ev {
                Ev::TaskDone { task, dev, gen } => {
                    if self.stale(task, gen) {
                        continue;
                    }
                    self.now = t;
                    self.on_task_done(task, dev);
                }
                Ev::TaskAborted { task, dev, gen } => {
                    if self.stale(task, gen) {
                        continue;
                    }
                    self.now = t;
                    self.on_task_aborted(task, dev);
                }
                Ev::EpochFlushed => {
                    self.now = t;
                    self.on_epoch_flushed();
                }
                Ev::DeviceDropout { dev } => {
                    // A dropout after the program finished is a non-event;
                    // skipping it keeps the makespan untouched.
                    if self.cur_epoch >= self.epochs.len() {
                        continue;
                    }
                    self.now = t;
                    self.on_device_dropout(dev);
                }
                Ev::WatchdogFire { task, started, gen } => {
                    if self.stale(task, gen) {
                        continue;
                    }
                    self.now = t;
                    self.on_watchdog_fire(task, started);
                }
                Ev::HedgeDone { task, dev, gen } => {
                    if self.stale(task, gen) {
                        continue;
                    }
                    self.now = t;
                    self.on_hedge_done(task, dev);
                }
                Ev::CircuitProbe { dev } => {
                    // Like dropouts, probes after the program finished must
                    // not extend the makespan.
                    if self.cur_epoch >= self.epochs.len() {
                        continue;
                    }
                    self.now = t;
                    self.on_circuit_probe(dev);
                }
            }
            // A journal failure (injected record-kill, divergent replay)
            // terminates the run at the event that raised it.
            if let Some(e) = self.journal_err.take() {
                return Err(e);
            }
        }
        assert!(
            self.completed.iter().all(|&c| c),
            "deadlock: not all tasks completed (cyclic program or lost event)"
        );
        Ok(self.finish())
    }

    fn finish(self) -> RunReport {
        let mut health = self.health.map(|h| h.report).unwrap_or_default();
        if let Some(f) = &self.faults {
            // Ground truth is reported whether or not verification ran.
            health.corruptions_injected = f.corruptions_injected;
            health.corrupt_committed = f.corrupt.iter().filter(|&&c| c).count() as u64;
        }
        // A breaker still open (or a device that died while quarantined) at
        // run end leaves its span open-ended; close it at the makespan so
        // the blame table and the exported quarantine seconds agree.
        for span in health.quarantine.iter_mut() {
            if span.until.is_none() {
                span.until = Some(self.now);
            }
        }
        // Close the blame books: per device, capacity = makespan × slots;
        // dead time covers the post-dropout tail, idle is the remainder —
        // so every device's components sum exactly to its capacity.
        let makespan = self.now;
        let mut per_device = self.blame;
        for (i, d) in self.platform.devices.iter().enumerate() {
            let b = &mut per_device[i];
            b.slots = d.spec.kind.slots() as u64;
            let cap = makespan * b.slots;
            b.dead = self.death_at[i]
                .map(|at| makespan.saturating_sub(at) * b.slots)
                .unwrap_or(SimTime::ZERO);
            b.idle = cap.saturating_sub(b.active() + b.dead);
        }
        let report = RunReport {
            scheduler: self.scheduler.name().to_string(),
            makespan,
            counters: self.counters,
            per_kernel: self.per_kernel,
            device_is_gpu: self
                .platform
                .devices
                .iter()
                .map(|d| d.spec.kind.is_gpu())
                .collect(),
            synthesized_faults: self
                .faults
                .as_ref()
                .map(|f| f.synth.clone())
                .unwrap_or_default(),
            faults: self.faults.map(|f| f.counters).unwrap_or_default(),
            health,
            adapt: {
                let mut adapt = self.adapt.map(|a| a.report).unwrap_or_default();
                if let Some(r) = self.replan {
                    adapt.replans = r.replans;
                    adapt.readmissions = r.readmissions;
                    adapt.replan_error = r.error;
                }
                adapt
            },
            breakdown: TimeBreakdown {
                makespan,
                per_device,
            },
        };
        if self.obs.enabled() {
            self.obs.on_run_end(&report);
        }
        report
    }

    /// `true` when a completion event belongs to a dispatch that a dropout
    /// has since invalidated.
    fn stale(&self, t: TaskId, gen: u32) -> bool {
        self.faults.as_ref().is_some_and(|f| f.gen[t.0] != gen)
    }

    fn cur_gen(&self, t: TaskId) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.gen[t.0])
    }

    /// Begin the current epoch: bind its dependency-free tasks.
    fn activate_epoch(&mut self) {
        // Rollback budgets are per epoch: a fresh epoch re-enables
        // corruption injection (rollback's re-activation bypasses this).
        if let Some(h) = &mut self.health {
            h.rollbacks_this_epoch = 0;
        }
        if let Some(f) = &mut self.faults {
            f.suppress_corruption = false;
        }
        // The skew detector observes one epoch at a time.
        if let Some(a) = &mut self.adapt {
            a.epoch_busy.fill(SimTime::ZERO);
            a.epoch_items.fill(0);
        }
        let tasks: Vec<TaskId> = self.epochs[self.cur_epoch].clone();
        self.epoch_remaining = tasks.len();
        if tasks.is_empty() {
            // An empty epoch is just a flush point.
            self.start_flush();
            return;
        }
        for t in tasks {
            if self.remaining_preds[t.0] == 0 {
                self.make_ready(t);
            }
        }
        self.dispatch_all();
    }

    /// Bind a ready task to a device and enqueue it there.
    fn make_ready(&mut self, t: TaskId) {
        let pred_placements: Vec<DeviceId> = self.graph.preds[t.0]
            .iter()
            .map(|p| {
                self.placements[p.0].expect("predecessor completed, so it must have been placed")
            })
            .collect();
        let task = self.tasks[t.0];
        let coherence = &self.coherence;
        let platform = self.platform;
        let buffers = &self.program.buffers;
        // Estimates see the wire as it stands *now*: an open LinkDegrade
        // window steers dynamic policies away from the throttled device.
        let now = self.now;
        let link_sched = self
            .faults
            .as_ref()
            .map(|f| f.schedule)
            .filter(|s| s.has_link_degrade());
        let transfer_estimate = move |dev: DeviceId| -> SimTime {
            let space = platform.device(dev).mem_space;
            let (bw, lat) = link_sched.map_or((1.0, 1.0), |s| s.link_factors(dev, now));
            let price = |from: MemSpaceId, to: MemSpaceId, bytes: u64| -> SimTime {
                if bw == 1.0 && lat == 1.0 {
                    platform.transfer_time(from, to, bytes)
                } else {
                    platform
                        .link(from, to)
                        .map_or(SimTime::ZERO, |l| l.transfer_time_scaled(bytes, bw, lat))
                }
            };
            let mut total = SimTime::ZERO;
            for acc in &task.accesses {
                if acc.mode.reads() {
                    let bytes =
                        coherence.missing_read_bytes(acc.region.buffer, acc.region.span, space);
                    if bytes > 0 {
                        // Approximation: data arrives from the host.
                        total += price(MemSpaceId::HOST, space, bytes);
                    }
                }
                if acc.mode.writes() && !space.is_host() {
                    // Data produced off-host must eventually be written
                    // back; charge it to the placement (conservative, as in
                    // a descriptor-based data-movement estimate).
                    let bytes = acc.region.len() * buffers[acc.region.buffer.0].item_bytes;
                    total += price(space, MemSpaceId::HOST, bytes);
                }
            }
            total
        };
        // Once the plan escalated, the internal DP-Perf scheduler binds
        // everything that follows; its view of the task has the static pin
        // stripped (a pinned task would otherwise bypass the policy).
        // Before escalation, a repartition override re-pins the chunk.
        let escalated_bind = self.adapt.as_ref().is_some_and(|a| a.escalated.is_some());
        let stripped;
        let bind_task = if escalated_bind {
            stripped = TaskDesc {
                pinned: None,
                ..task.clone()
            };
            &stripped
        } else {
            task
        };
        let ctx = BindCtx {
            now: self.now,
            platform: self.platform,
            task: bind_task,
            task_id: t,
            pred_placements: &pred_placements,
            transfer_estimate: &transfer_estimate,
        };
        let mut dev = if escalated_bind {
            let a = self.adapt.as_mut().unwrap();
            if !a.bound_by_escalated[t.0] {
                a.bound_by_escalated[t.0] = true;
                a.report.escalated_tasks += 1;
            }
            a.escalated.as_mut().unwrap().bind(&ctx)
        } else if let Some(d) = self.replan.as_ref().and_then(|r| r.override_of[t.0]) {
            // A survivor re-plan's re-pin takes precedence over the
            // repartition override: repair runs later and already folded
            // the adaptation state into its decision.
            d
        } else if let Some(d) = self.adapt.as_ref().and_then(|a| a.override_of[t.0]) {
            d
        } else {
            self.scheduler.bind(&ctx)
        };
        // A binding that names a dead or quarantined device is redirected
        // to the fallback survivor (a pinned plan keeps naming its dead
        // device; redirecting here is what "falls back to Only-CPU
        // completion"). Half-open devices keep their bindings: they become
        // probe candidates.
        if self.faults.is_some() {
            let unavail = self.unavailable();
            let redirect = unavail[dev.0]
                && !self
                    .health
                    .as_ref()
                    .is_some_and(|h| h.state[dev.0] == BreakerState::HalfOpen);
            if redirect {
                let target = fallback_device(self.platform, &unavail, None);
                if let Some(f) = self.faults.as_mut() {
                    f.counters.failovers += 1;
                    f.suppress_complete[t.0] = true;
                }
                route_event(
                    &mut *self.obs,
                    &TraceEvent::Failover {
                        task: t,
                        from: dev,
                        to: target,
                        at: self.now,
                    },
                );
                dev = target;
            }
        }
        self.placements[t.0] = Some(dev);
        self.dev_queues[dev.0].push_back(t);
        if self.obs.enabled() {
            let depth = self.dev_queues[dev.0].len();
            self.obs.on_task_bound(t, dev, self.now, depth);
        }
    }

    fn dispatch_all(&mut self) {
        for d in 0..self.dev_queues.len() {
            self.dispatch(DeviceId(d));
        }
    }

    /// Start as many queued tasks on `dev` as free slots allow. A
    /// quarantined device dispatches nothing; a half-open device lets a
    /// single probe task through at a time.
    fn dispatch(&mut self, dev: DeviceId) {
        if self.faults.as_ref().is_some_and(|f| f.dead[dev.0]) {
            return;
        }
        let half_open = match self.health.as_ref().map(|h| h.state[dev.0]) {
            Some(BreakerState::Open) => return,
            Some(BreakerState::HalfOpen) => {
                if self.health.as_ref().unwrap().probe_task[dev.0].is_some() {
                    return;
                }
                true
            }
            _ => false,
        };
        while self.free_slots[dev.0] > 0 {
            let Some(t) = self.dev_queues[dev.0].pop_front() else {
                break;
            };
            self.free_slots[dev.0] -= 1;
            let (busy, nominal, aborted) = self.start_task(t, dev);
            let gen = self.cur_gen(t);
            if let Some(f) = &mut self.faults {
                f.in_flight[t.0] = true;
                f.started_at[t.0] = self.now;
            }
            if let Some(h) = &mut self.health {
                h.straggled[t.0] = false;
                if half_open {
                    h.probe_task[dev.0] = Some(t);
                    h.report.probes += 1;
                }
            }
            let ev = if aborted {
                Ev::TaskAborted { task: t, dev, gen }
            } else {
                Ev::TaskDone { task: t, dev, gen }
            };
            self.queue.push(self.now + busy, ev);
            // Prescient watchdog: attempt durations are sampled at
            // dispatch, so the fire event is armed up front exactly when
            // the attempt will still be running at its deadline.
            if !aborted {
                if let Some(w) = self.health.as_ref().and_then(|h| h.config.watchdog) {
                    let deadline = SimTime::from_secs_f64(nominal.as_secs_f64() * w.slack);
                    if nominal > SimTime::ZERO && busy > deadline {
                        self.queue.push(
                            self.now + deadline,
                            Ev::WatchdogFire {
                                task: t,
                                started: self.now,
                                gen,
                            },
                        );
                    }
                }
            }
            if half_open {
                break;
            }
        }
    }

    /// Account one task's slot occupancy: scheduling overhead + coherence
    /// transfers + roofline execution (+ fault attempts, under a schedule).
    /// Mutates the coherence directory. Returns the slot occupancy, the
    /// *nominal* occupancy (the model's fault- and throttle-free
    /// prediction, which is what the watchdog's deadline is computed
    /// against), and whether the task aborted (exhausted its retries and
    /// must fail over).
    fn start_task(&mut self, t: TaskId, dev: DeviceId) -> (SimTime, SimTime, bool) {
        let task = self.tasks[t.0];
        let device = self.platform.device(dev);
        let space = device.mem_space;
        let mut busy = SimTime::ZERO;
        let mut nominal = SimTime::ZERO;
        let mut cost = TaskCost::default();

        if let Some(f) = &mut self.faults {
            f.booked_loss[t.0] = SimTime::ZERO;
        }

        // Tasks bound by the escalated DP-Perf scheduler pay the dynamic
        // per-decision overhead even though the run started static.
        let by_escalated = self
            .adapt
            .as_ref()
            .is_some_and(|a| a.bound_by_escalated[t.0]);
        let dynamic_bound = self.scheduler.is_dynamic() || by_escalated;
        if dynamic_bound {
            busy += self.platform.sched_overhead;
            nominal += self.platform.sched_overhead;
            self.counters.record_sched(self.platform.sched_overhead);
            // Overhead paid *because* the run escalated is adaptation
            // blame; ordinary dynamic-policy overhead is scheduling blame.
            if by_escalated {
                cost.adapt += self.platform.sched_overhead;
            } else {
                cost.sched += self.platform.sched_overhead;
            }
        }
        // Chunks re-pinned by a survivor re-plan pay the same per-decision
        // overhead, booked to the `replan` blame component.
        let by_replan = !by_escalated
            && !dynamic_bound
            && self
                .replan
                .as_ref()
                .is_some_and(|r| r.override_of[t.0].is_some());
        if by_replan {
            busy += self.platform.sched_overhead;
            nominal += self.platform.sched_overhead;
            self.counters.record_sched(self.platform.sched_overhead);
            cost.replan += self.platform.sched_overhead;
        }

        for acc in &task.accesses {
            if acc.mode.reads() {
                for tr in self
                    .coherence
                    .acquire_for_read(acc.region.buffer, acc.region.span, space)
                {
                    // Degraded cost prices the wire as it stands when the
                    // transfer is issued; the nominal cost keeps the
                    // watchdog baseline degradation-free.
                    let ddt =
                        self.degraded_transfer_cost(tr.from, tr.to, tr.bytes, self.now + busy);
                    let ndt = transfer_cost(self.platform, tr.from, tr.to, tr.bytes);
                    // A faulty link re-issues the transfer at full cost;
                    // after max_attempts failed tries it goes through
                    // regardless (the retry storm has been paid for).
                    if let Some(f) = &mut self.faults {
                        let mut attempts = 0;
                        while attempts < f.policy.max_attempts {
                            let p = f.schedule.transfer_fault_prob(self.now + busy);
                            if p <= 0.0 || f.rng.next_f64() >= p {
                                break;
                            }
                            f.counters.transfer_faults += 1;
                            f.counters.transfer_retries += 1;
                            f.counters.time_lost += ddt;
                            f.booked_loss[t.0] += ddt;
                            cost.fault += ddt;
                            self.counters.record_transfer(tr.bytes, ddt);
                            route_event(
                                &mut *self.obs,
                                &TraceEvent::TransferRetry {
                                    from: tr.from,
                                    to: tr.to,
                                    bytes: tr.bytes,
                                    start: self.now + busy,
                                    end: self.now + busy + ddt,
                                },
                            );
                            busy += ddt;
                            attempts += 1;
                        }
                    }
                    route_event(
                        &mut *self.obs,
                        &TraceEvent::Transfer {
                            from: tr.from,
                            to: tr.to,
                            bytes: tr.bytes,
                            start: self.now + busy,
                            end: self.now + busy + ddt,
                        },
                    );
                    busy += ddt;
                    nominal += ndt;
                    // The slowdown beyond the nominal wire is link blame;
                    // the nominal part stays transfer blame. `extra` is
                    // zero whenever the link is at (or above) spec.
                    let extra = ddt.saturating_sub(ndt);
                    cost.transfer += ddt - extra;
                    cost.link += extra;
                    self.counters.record_transfer(tr.bytes, ddt);
                }
            }
        }

        let profile = &self.program.kernels[task.kernel.0].profile;
        let base_exec = device.exec_time_weighted(profile, task.items, task.cost_scale);
        nominal += base_exec;
        let mut exec = base_exec;
        let mut aborted = false;
        // Attempt outcomes are computed here, at dispatch time: replayed
        // synthesized windows that opened later cannot apply (see
        // `FaultSchedule::task_fault_prob_dispatched`).
        let dispatched = self.now;
        if let Some(f) = &mut self.faults {
            let max = f.policy.max_attempts.max(1);
            let mut attempt: u32 = 1;
            loop {
                let at = self.now + busy;
                let this_exec = f.schedule.throttled_exec(dev, at, base_exec);
                let p = f.task_fault_prob(dev, at, dispatched);
                let failed = p > 0.0 && f.rng.next_f64() < p;
                if !failed {
                    exec = this_exec;
                    busy += this_exec;
                    break;
                }
                // The attempt runs to completion, then is detected failed.
                f.counters.task_faults += 1;
                f.counters.time_lost += this_exec;
                f.booked_loss[t.0] += this_exec;
                cost.fault += this_exec;
                busy += this_exec;
                route_event(
                    &mut *self.obs,
                    &TraceEvent::TaskFault {
                        task: t,
                        dev,
                        attempt,
                        at: self.now + busy,
                    },
                );
                // A member fault may raise sibling fault probability for a
                // window (correlated fault domains).
                trigger_correlated(f, &mut *self.obs, dev, self.now + busy);
                if attempt >= max {
                    let has_failover_target = !f.failed_over[t.0]
                        && self
                            .platform
                            .devices
                            .iter()
                            .any(|d| !f.dead[d.id.0] && d.id != dev);
                    if has_failover_target {
                        aborted = true;
                    } else {
                        // Safe mode: one final fault-free attempt
                        // guarantees termination on the last resort.
                        let final_exec = f.schedule.throttled_exec(dev, self.now + busy, base_exec);
                        exec = final_exec;
                        busy += final_exec;
                        f.counters.safe_mode_tasks += 1;
                    }
                    break;
                }
                let bo = f.policy.backoff_for(attempt);
                f.counters.task_retries += 1;
                f.counters.backoff_time += bo;
                f.counters.time_lost += bo;
                f.booked_loss[t.0] += bo;
                cost.fault += bo;
                busy += bo;
                attempt += 1;
            }
            // Silent corruption: the attempt "succeeds" on time but its
            // committed result is wrong. Ground truth is tracked whether
            // or not verification is on; the draw is gated on a positive
            // probability so schedules without SDC events keep their
            // exact fault stream.
            if !aborted {
                f.corrupt[t.0] = false;
                let cp = f.schedule.corruption_prob(dev, self.now);
                if cp > 0.0 && !f.suppress_corruption && f.rng.next_f64() < cp {
                    f.corrupt[t.0] = true;
                    f.corruptions_injected += 1;
                }
            }
        } else {
            busy += exec;
        }

        if aborted {
            // Nothing was produced: no writes land, no work is recorded —
            // the slot was simply held for the wasted attempts. The trace
            // still needs the occupancy (span trees tile capacity against
            // the blame books), so the span goes out as a held slot
            // rather than a task.
            self.counters.devices[dev.0].busy += busy;
            self.busy_of[t.0] = busy;
            if let Some(f) = &mut self.faults {
                f.recorded[t.0] = false;
            }
            self.cost_of[t.0] = cost;
            self.apply_blame(dev, cost);
            route_event(
                &mut *self.obs,
                &TraceEvent::SlotHeld {
                    task: t,
                    kernel: task.kernel,
                    dev,
                    start: self.now,
                    end: self.now + busy,
                },
            );
            return (busy, nominal, true);
        }

        for acc in &task.accesses {
            if acc.mode.writes() {
                self.coherence
                    .record_write(acc.region.buffer, acc.region.span, space);
            }
        }

        self.counters.record_task(dev, task.items, busy);
        let ks = &mut self.per_kernel[task.kernel.0];
        ks.items_per_device[dev.0] += task.items;
        ks.tasks_per_device[dev.0] += 1;
        self.busy_of[t.0] = busy;
        self.exec_of[t.0] = exec;
        cost.exec = exec;
        self.cost_of[t.0] = cost;
        self.apply_blame(dev, cost);
        if let Some(f) = &mut self.faults {
            f.recorded[t.0] = true;
        }
        // Feed the adaptation observers: per-epoch skew accumulators and
        // the cumulative rate table that seeds an eventual escalation.
        if let Some(a) = &mut self.adapt {
            a.epoch_busy[dev.0] += busy;
            a.epoch_items[dev.0] += task.items;
            let o = a.obs.entry((task.kernel, dev)).or_default();
            o.count += 1;
            o.items += task.items as f64;
            o.secs += exec.as_secs_f64();
        }
        // Plan repair keeps its own whole-device rate books, so survivor
        // re-solves see observed throughput even with adaptation disabled.
        if let Some(r) = &mut self.replan {
            r.obs_items[dev.0] += task.items as f64;
            r.obs_secs[dev.0] += busy.as_secs_f64();
        }
        self.cal_exec[dev.0] += exec.as_secs_f64();
        self.cal_model[dev.0] += base_exec.as_secs_f64();
        route_event(
            &mut *self.obs,
            &TraceEvent::Task {
                task: t,
                kernel: task.kernel,
                dev,
                items: task.items,
                start: self.now,
                end: self.now + busy,
            },
        );
        (busy, nominal, false)
    }

    /// Charge one dispatch's blame components to `dev`'s accumulators.
    fn apply_blame(&mut self, dev: DeviceId, cost: TaskCost) {
        let b = &mut self.blame[dev.0];
        b.scheduling += cost.sched;
        b.adaptation += cost.adapt;
        b.transfer += cost.transfer;
        b.link_degraded += cost.link;
        b.fault_loss += cost.fault;
        b.compute += cost.exec;
        b.replan += cost.replan;
    }

    fn on_task_done(&mut self, t: TaskId, dev: DeviceId) {
        self.completed[t.0] = true;
        self.free_slots[dev.0] += 1;
        self.dev_last_done[dev.0] = self.dev_last_done[dev.0].max(self.now);
        if self.obs.enabled() {
            self.obs.on_task_done(t, dev, self.now);
        }
        let task = self.tasks[t.0];
        let suppress = if let Some(f) = &mut self.faults {
            f.in_flight[t.0] = false;
            f.suppress_complete[t.0]
        } else {
            false
        };
        if !suppress {
            // Escalated bindings report to the internal DP-Perf scheduler
            // whose books they live in, not the original (static) policy.
            if self
                .adapt
                .as_ref()
                .is_some_and(|a| a.bound_by_escalated[t.0])
            {
                if let Some(esc) = self.adapt.as_mut().and_then(|a| a.escalated.as_mut()) {
                    esc.on_complete(
                        t,
                        task.kernel,
                        dev,
                        task.items,
                        self.busy_of[t.0],
                        self.exec_of[t.0],
                        self.now,
                    );
                }
            } else {
                self.scheduler.on_complete(
                    t,
                    task.kernel,
                    dev,
                    task.items,
                    self.busy_of[t.0],
                    self.exec_of[t.0],
                    self.now,
                );
            }
        }

        // A loser hedge is cancelled the moment its primary finishes: the
        // peer slot it burned is charged to `time_hedged` and freed.
        if let Some(h) = &mut self.health {
            if let Some(hd) = h.hedge[t.0].take() {
                let span = self.now.saturating_sub(hd.launched);
                self.counters.devices[hd.peer.0].busy += span;
                self.blame[hd.peer.0].hedge_waste += span;
                h.report.time_hedged += span;
                self.free_slots[hd.peer.0] += 1;
                self.dev_last_done[hd.peer.0] = self.dev_last_done[hd.peer.0].max(self.now);
            }
        }
        if self.health.is_some() {
            let bad = self.health.as_ref().unwrap().straggled[t.0]
                || self
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.booked_loss[t.0] > SimTime::ZERO);
            self.observe(dev, !bad, Some(t));
        }

        self.release_and_advance(t);
    }

    /// Completion tail shared by [`Sim::on_task_done`] and a winning
    /// hedge: release successors, advance the epoch, refill slots.
    fn release_and_advance(&mut self, t: TaskId) {
        // Release successors whose dependences are now satisfied. Only
        // successors in the *active* epoch become ready (later epochs wait
        // for their taskwait barrier; `activate_epoch` re-scans them). A
        // successor that is already placed (queued, in flight, or completed
        // — possible only when a dropout re-armed this dependence while the
        // consumer's standing result was left alone) must not be re-bound.
        let succs = self.graph.succs[t.0].clone();
        for s in succs {
            self.remaining_preds[s.0] -= 1;
            if self.remaining_preds[s.0] == 0
                && self.graph.epoch_of[s.0] == self.cur_epoch
                && self.placements[s.0].is_none()
            {
                self.make_ready(s);
            }
        }

        self.epoch_remaining -= 1;
        if self.epoch_remaining == 0 {
            self.on_epoch_barrier();
        }
        self.dispatch_all();
    }

    /// Retry exhaustion on a live device: free the slot and fail the task
    /// over to the fallback survivor (forced placement — the scheduler is
    /// bypassed and will not be told about the eventual completion).
    fn on_task_aborted(&mut self, t: TaskId, dev: DeviceId) {
        self.free_slots[dev.0] += 1;
        self.dev_last_done[dev.0] = self.dev_last_done[dev.0].max(self.now);
        {
            let f = self
                .faults
                .as_mut()
                .expect("aborts only occur under faults");
            f.in_flight[t.0] = false;
            f.failed_over[t.0] = true;
            f.suppress_complete[t.0] = true;
            f.counters.failovers += 1;
        }
        // Observe first: the exhaustion may trip the breaker, and the
        // fallback choice must see the updated quarantine set.
        self.observe(dev, false, Some(t));
        let unavail = self.unavailable();
        let target = fallback_device(self.platform, &unavail, Some(dev));
        route_event(
            &mut *self.obs,
            &TraceEvent::Failover {
                task: t,
                from: dev,
                to: target,
                at: self.now,
            },
        );
        self.placements[t.0] = Some(target);
        self.dev_queues[target.0].push_back(t);
        self.dispatch_all();
    }

    /// Permanent device failure. Kills the device's queued and in-flight
    /// work, re-executes its uncommitted completions of the open epoch
    /// (their results lived in the dead memory space), restores lost data
    /// from the host's epoch checkpoint, and re-binds everything to the
    /// survivors. Committed epochs (barrier reached) are never touched.
    fn on_device_dropout(&mut self, dev: DeviceId) {
        if dev.0 == 0 {
            return; // the host is the last resort and cannot die
        }
        {
            let f = self
                .faults
                .as_mut()
                .expect("dropouts only occur under faults");
            if f.dead[dev.0] {
                return;
            }
            f.dead[dev.0] = true;
            f.counters.device_dropouts += 1;
            // A dropout is the strongest member fault a domain can see;
            // surviving siblings get the correlated window.
            trigger_correlated(f, &mut *self.obs, dev, self.now);
        }
        self.free_slots[dev.0] = 0;
        self.death_at[dev.0] = Some(self.now);
        route_event(
            &mut *self.obs,
            &TraceEvent::DeviceDropout { dev, at: self.now },
        );

        // Hedge bookkeeping: a hedge whose peer died is lost (a
        // designated-winner's primary completion is revived), and a hedge
        // whose primary is about to be killed below is cancelled with it.
        if self.health.is_some() {
            for ti in 0..self.tasks.len() {
                let Some(hd) = self.health.as_ref().and_then(|h| h.hedge[ti]) else {
                    continue;
                };
                let span = self.now.saturating_sub(hd.launched);
                if hd.peer == dev {
                    self.counters.devices[dev.0].busy += span;
                    self.blame[dev.0].hedge_waste += span;
                    if let Some(h) = self.health.as_mut() {
                        h.report.time_hedged += span;
                        h.hedge[ti] = None;
                    }
                    if hd.winner {
                        // The primary is still physically running; its
                        // completion was invalidated when the hedge was
                        // designated winner — revive it under the current
                        // generation (the primary outlives the hedge by
                        // construction: hedge_end < primary_end).
                        let f = self.faults.as_ref().unwrap();
                        let end = f.started_at[ti] + self.busy_of[ti];
                        let gen = f.gen[ti];
                        let pdev = self.placements[ti].expect("hedged task was placed");
                        self.queue.push(
                            end,
                            Ev::TaskDone {
                                task: TaskId(ti),
                                dev: pdev,
                                gen,
                            },
                        );
                    }
                } else if self.placements[ti] == Some(dev)
                    && self.faults.as_ref().is_some_and(|f| f.in_flight[ti])
                {
                    // The kill loop below requeues the primary; the
                    // duplicate's result is discarded with it.
                    self.counters.devices[hd.peer.0].busy += span;
                    self.blame[hd.peer.0].hedge_waste += span;
                    self.free_slots[hd.peer.0] += 1;
                    if let Some(h) = self.health.as_mut() {
                        h.report.time_hedged += span;
                        h.hedge[ti] = None;
                    }
                }
            }
        }

        // With the epoch's barrier already reached (flush in flight), the
        // epoch is committed: its data is home — or racing down the link,
        // which we let win — and nothing needs re-execution.
        let epoch_open = self.epoch_remaining > 0;

        // 1. Queued (bound, not yet started) work dies with its queue.
        let drained: Vec<TaskId> = self.dev_queues[dev.0].drain(..).collect();

        // 2. In-flight work is killed: invalidate its completion event and
        // take back the accounting recorded at dispatch.
        let killed: Vec<TaskId> = (0..self.tasks.len())
            .map(TaskId)
            .filter(|t| {
                self.placements[t.0] == Some(dev)
                    && self.faults.as_ref().is_some_and(|f| f.in_flight[t.0])
            })
            .collect();
        for &t in &killed {
            let task = self.tasks[t.0];
            let (was_recorded, lost, overbooked) = {
                let f = self.faults.as_mut().unwrap();
                f.gen[t.0] += 1;
                f.in_flight[t.0] = false;
                // The dispatch's failed attempts, backoff and transfer
                // retries were already booked at dispatch; charge only the
                // rest of the discarded span. Attempts sampled at dispatch
                // may sit logically *after* the death — that portion was
                // never burned (the dead tail covers it), so it comes back.
                let span = self.now.saturating_sub(f.started_at[t.0]);
                let booked = f.booked_loss[t.0];
                (
                    f.recorded[t.0],
                    span.saturating_sub(booked),
                    booked.saturating_sub(span),
                )
            };
            {
                let tl = &mut self.faults.as_mut().unwrap().counters.time_lost;
                *tl = (*tl + lost).saturating_sub(overbooked);
            }
            let c = &mut self.counters.devices[dev.0];
            c.busy = c.busy.saturating_sub(self.busy_of[t.0]);
            if was_recorded {
                c.tasks -= 1;
                c.items -= task.items;
                let ks = &mut self.per_kernel[task.kernel.0];
                ks.items_per_device[dev.0] -= task.items;
                ks.tasks_per_device[dev.0] -= 1;
            }
            // Blame mirror: the dispatch's categorized charges come back;
            // the slot's net fault charge becomes exactly the span it
            // really burned before the death.
            self.unblame(t, dev);
            let fl = &mut self.blame[dev.0].fault_loss;
            *fl = (*fl + lost).saturating_sub(overbooked);
        }

        // 3. Uncommitted completions of the open epoch that ran here must
        // re-execute: their outputs existed only in the dead memory.
        let resets: Vec<TaskId> = if epoch_open {
            self.epochs[self.cur_epoch]
                .iter()
                .copied()
                .filter(|t| self.completed[t.0] && self.placements[t.0] == Some(dev))
                .collect()
        } else {
            Vec::new()
        };
        for &t in &resets {
            self.completed[t.0] = false;
            self.epoch_remaining += 1;
            let task = self.tasks[t.0];
            let c = &mut self.counters.devices[dev.0];
            c.tasks -= 1;
            c.items -= task.items;
            c.busy = c.busy.saturating_sub(self.busy_of[t.0]);
            let ks = &mut self.per_kernel[task.kernel.0];
            ks.items_per_device[dev.0] -= task.items;
            ks.tasks_per_device[dev.0] -= 1;
            let f = self.faults.as_mut().unwrap();
            f.counters.reexecutions += 1;
            // As with kills, the fault loss inside `busy_of` was already
            // booked at dispatch.
            f.counters.time_lost += self.busy_of[t.0].saturating_sub(f.booked_loss[t.0]);
            // Blame mirror: the whole discarded span becomes fault loss
            // (its fault component was already booked at dispatch).
            self.unblame(t, dev);
            let extra = self.busy_of[t.0].saturating_sub(self.cost_of[t.0].fault);
            self.blame[dev.0].fault_loss += extra;
        }
        // Everything the dropout un-ran loses its placement: from here on
        // "placed" again means queued, in flight, or completed.
        for &t in drained.iter().chain(&killed).chain(&resets) {
            self.placements[t.0] = None;
        }
        // Re-arm the dependences the resets had satisfied. Every consumer
        // regains an unsatisfied dependence — the reset producer's
        // re-completion will decrement it again — but only consumers that
        // have not run yet go back to unready: a successor that already
        // started read the data while it was still valid, so its result
        // stands (the placement guard in `on_task_done` keeps it from
        // being re-bound when the count returns to zero).
        for &t in &resets {
            for s in self.graph.succs[t.0].clone() {
                let ran =
                    self.completed[s.0] || self.faults.as_ref().is_some_and(|f| f.in_flight[s.0]);
                if !ran && self.placements[s.0].is_some() {
                    // A bound-but-unstarted consumer goes back to unready.
                    for q in &mut self.dev_queues {
                        q.retain(|&x| x != s);
                    }
                    self.placements[s.0] = None;
                }
                self.remaining_preds[s.0] += 1;
            }
        }

        // 4. Data that lived only in the dead space is recovered from the
        // host's epoch checkpoint.
        let dead_space = self.platform.device(dev).mem_space;
        self.coherence.drop_space(dead_space);

        // The reversals above made the open epoch's skew window garbage;
        // the detector sits this epoch out rather than acting on it.
        if let Some(a) = &mut self.adapt {
            a.epoch_busy.fill(SimTime::ZERO);
            a.epoch_items.fill(0);
        }

        // Survivor re-planning: re-solve the remaining epochs over the
        // live device set (and rebind other devices' queues) before the
        // dead device's own work is re-bound below, so step 5's
        // `make_ready` already sees the repaired overrides.
        self.plan_repair(dev, false);

        // 5. Re-bind everything that is still dependency-free, in TaskId
        // order (deterministic). Tasks whose dependences the re-arm put
        // back wait for their producers to re-complete.
        let mut requeue: Vec<TaskId> = killed
            .into_iter()
            .chain(drained)
            .chain(resets)
            .filter(|t| self.remaining_preds[t.0] == 0)
            .collect();
        requeue.sort_unstable();
        requeue.dedup();
        for t in requeue {
            self.make_ready(t);
        }
        self.dispatch_all();
    }

    /// Devices no new binding may target: dead, or with an open/half-open
    /// circuit (half-open devices keep their existing bindings as probe
    /// candidates but are not fallback targets).
    fn unavailable(&self) -> Vec<bool> {
        let mut v: Vec<bool> = match &self.faults {
            Some(f) => f.dead.clone(),
            None => vec![false; self.platform.devices.len()],
        };
        if let Some(h) = &self.health {
            for (i, s) in h.state.iter().enumerate() {
                if *s != BreakerState::Closed {
                    v[i] = true;
                }
            }
        }
        v
    }

    /// Fold one good/bad observation of `dev` into its EWMA health score
    /// and the circuit breaker. `task` identifies the observation's source
    /// for half-open probe matching.
    fn observe(&mut self, dev: DeviceId, good: bool, task: Option<TaskId>) {
        enum Action {
            None,
            Trip(SimTime),
            Close,
            Reopen(SimTime),
        }
        let action = {
            let Some(h) = self.health.as_mut() else {
                return;
            };
            let alpha = h.config.ewma_alpha;
            let s = &mut h.report.scores[dev.0];
            *s = (1.0 - alpha) * *s + alpha * if good { 1.0 } else { 0.0 };
            if good {
                h.consecutive_bad[dev.0] = 0;
            } else {
                h.consecutive_bad[dev.0] += 1;
            }
            match (h.config.breaker, h.state[dev.0]) {
                (Some(b), BreakerState::Closed)
                    if !good
                        && h.consecutive_bad[dev.0] >= b.trip_after
                        && dev.0 != 0
                        && !self.faults.as_ref().is_some_and(|f| f.dead[dev.0]) =>
                {
                    Action::Trip(b.cooldown)
                }
                (Some(b), BreakerState::HalfOpen)
                    if task.is_some() && h.probe_task[dev.0] == task =>
                {
                    if good {
                        Action::Close
                    } else {
                        Action::Reopen(b.cooldown)
                    }
                }
                _ => Action::None,
            }
        };
        match action {
            Action::None => {}
            Action::Trip(cooldown) => self.trip_breaker(dev, cooldown),
            Action::Close => {
                let h = self.health.as_mut().unwrap();
                h.state[dev.0] = BreakerState::Closed;
                h.probe_task[dev.0] = None;
                h.consecutive_bad[dev.0] = 0;
                h.report.circuit_closes += 1;
                if let Some(span) = h
                    .report
                    .quarantine
                    .iter_mut()
                    .rev()
                    .find(|q| q.dev == dev && q.until.is_none())
                {
                    span.until = Some(self.now);
                }
                route_event(
                    &mut *self.obs,
                    &TraceEvent::CircuitClose { dev, at: self.now },
                );
                // Healing re-plan: the readmitted device is a survivor
                // again; re-solve and migrate work back onto it (mirrors
                // PR 5's disturbance-aware de-escalation).
                if self
                    .replan
                    .as_ref()
                    .is_some_and(|r| r.config.heal_on_reclose)
                    && self.plan_repair(dev, true)
                {
                    self.dispatch_all();
                }
            }
            Action::Reopen(cooldown) => {
                {
                    let h = self.health.as_mut().unwrap();
                    h.state[dev.0] = BreakerState::Open;
                    h.probe_task[dev.0] = None;
                }
                self.queue
                    .push(self.now + cooldown, Ev::CircuitProbe { dev });
                self.drain_and_rebind(dev);
            }
        }
    }

    /// Open the circuit: quarantine `dev`, schedule its half-open probe,
    /// and redirect its queued (unstarted) work. In-flight work finishes —
    /// quarantine is not a dropout.
    fn trip_breaker(&mut self, dev: DeviceId, cooldown: SimTime) {
        {
            let h = self.health.as_mut().unwrap();
            h.state[dev.0] = BreakerState::Open;
            h.probe_task[dev.0] = None;
            h.report.circuit_opens += 1;
            h.report.quarantine.push(QuarantineSpan {
                dev,
                from: self.now,
                until: None,
            });
        }
        route_event(
            &mut *self.obs,
            &TraceEvent::CircuitOpen { dev, at: self.now },
        );
        self.queue
            .push(self.now + cooldown, Ev::CircuitProbe { dev });
        // Survivor re-planning before the naive drain: a successful repair
        // rebinds every queue (including `dev`'s) under the new overrides,
        // leaving the drain below nothing to redirect.
        self.plan_repair(dev, false);
        self.drain_and_rebind(dev);
    }

    /// Re-bind a quarantined device's queued work; `make_ready` redirects
    /// it to survivors (counted as failovers).
    fn drain_and_rebind(&mut self, dev: DeviceId) {
        let drained: Vec<TaskId> = self.dev_queues[dev.0].drain(..).collect();
        for &t in &drained {
            self.placements[t.0] = None;
        }
        for t in drained {
            self.make_ready(t);
        }
    }

    /// Cool-down elapsed: half-open the circuit and let one probe through.
    fn on_circuit_probe(&mut self, dev: DeviceId) {
        if self.faults.as_ref().is_some_and(|f| f.dead[dev.0]) {
            return; // died while quarantined; the circuit stays open
        }
        let Some(h) = self.health.as_mut() else {
            return;
        };
        if h.state[dev.0] != BreakerState::Open {
            return;
        }
        h.state[dev.0] = BreakerState::HalfOpen;
        h.probe_task[dev.0] = None;
        self.dispatch(dev);
    }

    /// The watchdog's deadline passed with the attempt still running:
    /// record a straggle observation and (if configured) launch a hedged
    /// duplicate on the best other device.
    fn on_watchdog_fire(&mut self, t: TaskId, started: SimTime) {
        let live = self
            .faults
            .as_ref()
            .is_some_and(|f| f.in_flight[t.0] && f.started_at[t.0] == started);
        if !live {
            return;
        }
        let Some(primary) = self.placements[t.0] else {
            return;
        };
        {
            let h = self.health.as_mut().unwrap();
            if h.straggled[t.0] || h.hedge[t.0].is_some() {
                return;
            }
            h.straggled[t.0] = true;
        }
        self.observe(primary, false, Some(t));
        let hedging = self
            .health
            .as_ref()
            .unwrap()
            .config
            .watchdog
            .is_some_and(|w| w.hedging);
        if !hedging {
            return;
        }
        // Best live, closed peer with a free slot: minimum throttled
        // execution estimate. The duplicate re-reads the inputs the
        // primary already staged, so transfers are not re-charged, and it
        // samples no faults of its own (see the module docs).
        let unavail = self.unavailable();
        let task = self.tasks[t.0];
        let profile = &self.program.kernels[task.kernel.0].profile;
        let mut best: Option<(SimTime, DeviceId)> = None;
        for d in &self.platform.devices {
            if d.id == primary || unavail[d.id.0] || self.free_slots[d.id.0] == 0 {
                continue;
            }
            let base = d.exec_time_weighted(profile, task.items, task.cost_scale);
            let cost = self
                .faults
                .as_ref()
                .map_or(base, |f| f.schedule.throttled_exec(d.id, self.now, base));
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, d.id));
            }
        }
        let Some((cost, peer)) = best else {
            return;
        };
        let hedge_end = self.now + cost;
        let primary_end = self.faults.as_ref().unwrap().started_at[t.0] + self.busy_of[t.0];
        self.free_slots[peer.0] -= 1;
        // First finisher wins, and both finish times are known here.
        let winner = hedge_end < primary_end;
        if winner {
            let f = self.faults.as_mut().unwrap();
            f.gen[t.0] += 1; // invalidate the straggling primary's completion
            let gen = f.gen[t.0];
            self.queue.push(
                hedge_end,
                Ev::HedgeDone {
                    task: t,
                    dev: peer,
                    gen,
                },
            );
        }
        let h = self.health.as_mut().unwrap();
        h.report.hedges_issued += 1;
        h.hedge[t.0] = Some(Hedge {
            peer,
            launched: self.now,
            winner,
        });
        route_event(
            &mut *self.obs,
            &TraceEvent::HedgeLaunched {
                task: t,
                from: primary,
                to: peer,
                at: self.now,
            },
        );
    }

    /// A winning hedged duplicate finished: cancel the straggling primary
    /// mid-attempt, commit the result on the peer, and complete the task.
    fn on_hedge_done(&mut self, t: TaskId, peer: DeviceId) {
        let hd = self.health.as_mut().unwrap().hedge[t.0]
            .take()
            .expect("hedge event implies an active hedge");
        let primary = self.placements[t.0].expect("hedged task was placed");
        let task = self.tasks[t.0];
        // Reverse the primary's dispatch accounting; the slot span it
        // actually occupied is charged (net of fault losses already booked
        // to `time_lost`) to `time_hedged`.
        let span_primary;
        {
            let f = self.faults.as_mut().unwrap();
            span_primary = self.now.saturating_sub(f.started_at[t.0]);
            f.in_flight[t.0] = false;
            f.suppress_complete[t.0] = true;
            f.corrupt[t.0] = false; // the primary's result is discarded
            let c = &mut self.counters.devices[primary.0];
            c.busy = c.busy.saturating_sub(self.busy_of[t.0]) + span_primary;
            if f.recorded[t.0] {
                c.tasks -= 1;
                c.items -= task.items;
                let ks = &mut self.per_kernel[task.kernel.0];
                ks.items_per_device[primary.0] -= task.items;
                ks.tasks_per_device[primary.0] -= 1;
            }
        }
        {
            let h = self.health.as_mut().unwrap();
            h.report.hedges_won += 1;
            h.report.time_hedged +=
                span_primary.saturating_sub(self.faults.as_ref().unwrap().booked_loss[t.0]);
        }
        // Blame mirror: reverse the primary's categorized charges; the slot
        // span it actually burned (net of booked fault loss) is hedge
        // waste, matching `time_hedged`.
        self.unblame(t, primary);
        self.blame[primary.0].hedge_waste += span_primary.saturating_sub(self.cost_of[t.0].fault);
        self.free_slots[primary.0] += 1;
        self.dev_last_done[primary.0] = self.dev_last_done[primary.0].max(self.now);
        // Commit the duplicate's result on the peer.
        let hspan = self.now.saturating_sub(hd.launched);
        self.counters.record_task(peer, task.items, hspan);
        let ks = &mut self.per_kernel[task.kernel.0];
        ks.items_per_device[peer.0] += task.items;
        ks.tasks_per_device[peer.0] += 1;
        self.busy_of[t.0] = hspan;
        self.exec_of[t.0] = hspan;
        // The committed dispatch is now the peer's span, all of it useful
        // execution — a later rollback reverses exactly that.
        self.cost_of[t.0] = TaskCost {
            exec: hspan,
            ..TaskCost::default()
        };
        self.blame[peer.0].compute += hspan;
        self.placements[t.0] = Some(peer);
        self.free_slots[peer.0] += 1;
        self.dev_last_done[peer.0] = self.dev_last_done[peer.0].max(self.now);
        self.completed[t.0] = true;
        route_event(
            &mut *self.obs,
            &TraceEvent::Task {
                task: t,
                kernel: task.kernel,
                dev: peer,
                items: task.items,
                start: hd.launched,
                end: self.now,
            },
        );
        route_event(
            &mut *self.obs,
            &TraceEvent::HedgeWon {
                task: t,
                dev: peer,
                at: self.now,
            },
        );
        if self.obs.enabled() {
            self.obs.on_task_done(t, peer, self.now);
        }
        self.observe(peer, true, Some(t));
        self.release_and_advance(t);
    }

    /// All tasks of the open epoch completed. Under `DupCheck` a seeded
    /// sample is re-executed on a peer device first; a mismatch rolls the
    /// epoch back to its checkpoint instead of committing it.
    fn on_epoch_barrier(&mut self) {
        if let Some(sample_rate) = self.dup_check_rate() {
            let (verify_end, detected) = self.verify_epoch(sample_rate);
            self.now = self.now.max(verify_end);
            if detected {
                self.rollback_epoch();
                return;
            }
        }
        // The epoch's results stand: let the adaptive controller observe
        // it and correct the remaining epochs before the flush commits.
        self.adapt_at_barrier();
        self.start_flush();
    }

    fn dup_check_rate(&self) -> Option<f64> {
        match self.health.as_ref().map(|h| h.config.verification) {
            Some(VerificationPolicy::DupCheck { sample_rate }) if sample_rate > 0.0 => {
                Some(sample_rate)
            }
            _ => None,
        }
    }

    /// Re-execute a seeded sample of the epoch's tasks on peer devices and
    /// compare. Verification serialises per peer starting at the barrier;
    /// returns when the last comparison lands and whether any corruption
    /// was detected.
    fn verify_epoch(&mut self, sample_rate: f64) -> (SimTime, bool) {
        let epoch_tasks = self.epochs[self.cur_epoch].clone();
        let mut cursors: Vec<SimTime> = vec![self.now; self.platform.devices.len()];
        let mut any = false;
        let mut bad_obs: Vec<(DeviceId, TaskId)> = Vec::new();
        for t in epoch_tasks {
            let sampled = if sample_rate >= 1.0 {
                true
            } else {
                self.health.as_mut().unwrap().rng.next_f64() < sample_rate
            };
            if !sampled {
                continue;
            }
            let placed = self.placements[t.0].expect("epoch task completed");
            let unavail = self.unavailable();
            let task = self.tasks[t.0];
            let profile = &self.program.kernels[task.kernel.0].profile;
            let mut best: Option<(SimTime, DeviceId)> = None;
            for d in &self.platform.devices {
                if d.id == placed || unavail[d.id.0] {
                    continue;
                }
                let base = d.exec_time_weighted(profile, task.items, task.cost_scale);
                let cost = self.faults.as_ref().map_or(base, |f| {
                    f.schedule.throttled_exec(d.id, cursors[d.id.0], base)
                });
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, d.id));
                }
            }
            let Some((cost, peer)) = best else {
                continue; // no peer left to verify against
            };
            let end = cursors[peer.0] + cost;
            cursors[peer.0] = end;
            self.counters.devices[peer.0].busy += cost;
            self.blame[peer.0].verify += cost;
            let h = self.health.as_mut().unwrap();
            h.report.tasks_verified += 1;
            h.report.time_verifying += cost;
            if self.faults.as_ref().is_some_and(|f| f.corrupt[t.0]) {
                any = true;
                h.report.corruptions_detected += 1;
                route_event(
                    &mut *self.obs,
                    &TraceEvent::CorruptionDetected {
                        task: t,
                        dev: placed,
                        at: end,
                    },
                );
                bad_obs.push((placed, t));
            }
        }
        let verify_end = cursors.into_iter().max().unwrap_or(self.now);
        for (dev, t) in bad_obs {
            self.observe(dev, false, Some(t));
        }
        (verify_end, any)
    }

    /// A detected corruption invalidates the open epoch: reverse its
    /// committed accounting, drop the untrusted device copies (readers
    /// re-fetch from the host checkpoint), and re-run it. After
    /// `max_rollbacks_per_epoch` attempts, corruption injection is
    /// suppressed so the re-run commits clean — the SDC analog of safe
    /// mode, guaranteeing termination.
    fn rollback_epoch(&mut self) {
        {
            let h = self.health.as_mut().unwrap();
            h.report.epoch_rollbacks += 1;
            h.rollbacks_this_epoch += 1;
            if h.rollbacks_this_epoch >= h.config.max_rollbacks_per_epoch {
                if let Some(f) = self.faults.as_mut() {
                    f.suppress_corruption = true;
                }
            }
        }
        let epoch_tasks = self.epochs[self.cur_epoch].clone();
        for &t in &epoch_tasks {
            let dev = self.placements[t.0].expect("epoch task completed");
            let task = self.tasks[t.0];
            self.completed[t.0] = false;
            let c = &mut self.counters.devices[dev.0];
            c.tasks -= 1;
            c.items -= task.items;
            c.busy = c.busy.saturating_sub(self.busy_of[t.0]);
            let ks = &mut self.per_kernel[task.kernel.0];
            ks.items_per_device[dev.0] -= task.items;
            ks.tasks_per_device[dev.0] -= 1;
            // Blame mirror: the reversed dispatch's physical span stays on
            // the device as rollback loss (already-booked fault loss keeps
            // its category).
            self.unblame(t, dev);
            self.blame[dev.0].rollback += self.busy_of[t.0].saturating_sub(self.cost_of[t.0].fault);
            let f = self.faults.as_mut().unwrap();
            f.corrupt[t.0] = false;
            self.placements[t.0] = None;
        }
        // Re-arm every dependence the epoch's completions had satisfied;
        // re-completions will satisfy them again.
        for &t in &epoch_tasks {
            for s in self.graph.succs[t.0].clone() {
                self.remaining_preds[s.0] += 1;
            }
        }
        for d in &self.platform.devices {
            if !d.mem_space.is_host() {
                self.coherence.drop_space(d.mem_space);
            }
        }
        self.epoch_remaining = epoch_tasks.len();
        // The rolled-back accounting invalidates the epoch's observation
        // window; the re-run is observed fresh.
        if let Some(a) = &mut self.adapt {
            a.epoch_busy.fill(SimTime::ZERO);
            a.epoch_items.fill(0);
        }
        for t in epoch_tasks {
            if self.remaining_preds[t.0] == 0 {
                self.make_ready(t);
            }
        }
        self.dispatch_all();
    }

    /// The adaptive-repartitioning controller, run at each taskwait
    /// barrier once the epoch's results are verified (a rolled-back epoch
    /// is re-run, not observed). Detection compares slot-normalised
    /// per-device busy time of the closing epoch; hysteresis demands the
    /// imbalance persist before anything changes; the response is a
    /// re-solve while corrections remain and an escalation once
    /// `max_resolves` consecutive corrections have missed the balance
    /// target.
    fn adapt_at_barrier(&mut self) {
        if self.adapt.is_none() {
            return;
        }
        // Detect: skew = (max − min) / max over busy/slots of the devices
        // that ran work this epoch. One participant (or none) is trivially
        // balanced — there is no peer to be skewed against.
        let (skew, participants) = {
            let a = self.adapt.as_ref().unwrap();
            let mut max_n = 0.0f64;
            let mut min_n = f64::INFINITY;
            let mut participants = 0u32;
            for d in &self.platform.devices {
                let busy = a.epoch_busy[d.id.0];
                if busy == SimTime::ZERO {
                    continue;
                }
                let n = busy.as_secs_f64() / d.spec.kind.slots() as f64;
                max_n = max_n.max(n);
                min_n = min_n.min(n);
                participants += 1;
            }
            if participants >= 2 && max_n > 0.0 {
                ((max_n - min_n) / max_n, participants)
            } else {
                (0.0, participants)
            }
        };
        let imbalanced = {
            let a = self.adapt.as_mut().unwrap();
            a.report.barriers_observed += 1;
            if participants >= 2 {
                a.report.max_skew = a.report.max_skew.max(skew);
                a.report.final_skew = skew;
            }
            if skew <= a.config.balance_target {
                // Balance restored: the correction budget refills.
                a.resolves_since_balance = 0;
            }
            if skew > a.config.skew_threshold {
                a.report.imbalances_detected += 1;
                a.consecutive_imbalanced += 1;
                true
            } else {
                a.consecutive_imbalanced = 0;
                false
            }
        };
        if imbalanced {
            route_event(
                &mut *self.obs,
                &TraceEvent::ImbalanceDetected {
                    epoch: self.cur_epoch,
                    skew,
                    at: self.now,
                },
            );
        }
        // De-escalation: an escalated run watches for calm barriers and
        // hands the remaining epochs back to the static plan once the
        // disturbance has passed (the reversible side of the Table I
        // SP-* → DP-Perf escalation).
        if self
            .adapt
            .as_ref()
            .is_some_and(|a| a.escalated.is_some() && a.config.reinstate_after > 0)
        {
            self.try_reinstate(skew);
        }
        if let Some(a) = self.adapt.as_mut() {
            a.last_barrier_at = self.now;
        }
        // Act only while there are future epochs to correct.
        let a = self.adapt.as_ref().unwrap();
        let triggered = a.consecutive_imbalanced >= a.config.hysteresis
            && a.escalated.is_none()
            && self.cur_epoch + 1 < self.epochs.len();
        if !triggered {
            return;
        }
        let exhausted = {
            let a = self.adapt.as_mut().unwrap();
            a.consecutive_imbalanced = 0; // re-arm the hysteresis window
            a.config.escalation && a.resolves_since_balance >= a.config.max_resolves
        };
        if exhausted {
            self.escalate();
        } else {
            let a = self.adapt.as_mut().unwrap();
            let can_repartition = a.config.repartition && a.plan.is_some();
            a.resolves_since_balance += 1;
            if can_repartition {
                self.repartition();
            }
        }
    }

    /// Re-solve the plan's partition against the observed whole-device
    /// throughputs ([`glinda::resolve_with_observations`], warm-started
    /// from the prior split) and re-pin the remaining epochs' chunks.
    /// Whole chunks move (region splits are baked into the plan), and the
    /// chunk-level assignment minimises a *slot-quantised* predicted epoch
    /// wall at the observed rates rather than chasing the continuous item
    /// target — equal-size chunks run in waves over a device's slots, and
    /// a count-based target can balance busy time without shortening the
    /// critical path. A no-regression guard keeps an epoch's old placement
    /// when the model predicts no improvement.
    fn repartition(&mut self) {
        // A plan carrying per-kernel splits (multi-kernel SP-Varied)
        // re-solves each remaining epoch against its own kernel's problem
        // and observed rates instead of the SP-Single projection.
        if self
            .adapt
            .as_ref()
            .and_then(|a| a.plan.as_ref())
            .is_some_and(|p| p.per_kernel.is_some())
        {
            self.repartition_varied();
            return;
        }
        // A plan carrying an N-way split re-balances over the *full* live
        // device set (the multi-accelerator adaptation path).
        if self
            .adapt
            .as_ref()
            .and_then(|a| a.plan.as_ref())
            .is_some_and(|p| p.multi.is_some())
        {
            self.repartition_multi();
            return;
        }
        let (plan, obs_cpu, obs_gpu) = {
            let a = self.adapt.as_ref().unwrap();
            let plan = a.plan.clone().expect("repartition requires a plan");
            // Effective whole-device throughput: items per second of wall
            // time, busy spread over the device's slots, transfers and
            // overheads folded in. The two-way Glinda model sees the host
            // as the CPU side and the plan's accelerator as the GPU side.
            let rate = |dev: DeviceId| -> Option<f64> {
                let busy = a.epoch_busy[dev.0].as_secs_f64();
                let slots = self.platform.device(dev).spec.kind.slots() as f64;
                let items = a.epoch_items[dev.0] as f64;
                (busy > 0.0 && items > 0.0).then_some(items * slots / busy)
            };
            let gpu = plan.gpu;
            (plan, rate(DeviceId(0)), rate(gpu))
        };
        // One side idle this epoch (or its device dead): nothing observed
        // to correct with — leave the plan alone.
        let (Some(obs_cpu), Some(obs_gpu)) = (obs_cpu, obs_gpu) else {
            return;
        };
        if self.faults.as_ref().is_some_and(|f| f.dead[plan.gpu.0]) {
            return;
        }
        let corrected =
            glinda::resolve_with_observations(&plan.problem, &plan.solution, obs_cpu, obs_gpu);
        if plan.problem.items == 0 {
            return;
        }
        // Per-chunk costs at the observed whole-device rates, and the
        // slot-quantised wall clock of one side: chunks dispatch onto a
        // device's parallel slots, so equal-size CPU chunks run in *waves*
        // (24 vs 17 chunks on 12 threads are both two waves) — an
        // item-count target that ignores this can balance busy time
        // without moving the epoch's critical path. `lpt` mirrors the
        // executor's least-loaded dispatch (longest chunks first).
        let cpu_slots = self.platform.device(DeviceId(0)).spec.kind.slots();
        let gpu_slots = self.platform.device(plan.gpu).spec.kind.slots();
        let lpt = |times: &[f64], slots: usize| -> f64 {
            let mut load = vec![0.0f64; slots.max(1)];
            for &t in times {
                let m = load
                    .iter_mut()
                    .min_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                    .unwrap();
                *m += t;
            }
            load.into_iter().fold(0.0, f64::max)
        };
        // Chunk time on a side: the observed-rate extrapolation captures
        // how the device is *actually* running (throttle windows, flaky
        // retries), but it under-prices small fragments — a rate observed
        // on big chunks amortizes launch overhead a fragment pays in
        // full. Floor it with the device model's own per-chunk prediction
        // (which prices the launch exactly).
        let t_cpu = |t: TaskId, items: u64| -> f64 {
            let task = self.tasks[t.0];
            let profile = &self.program.kernels[task.kernel.0].profile;
            let floor = self
                .platform
                .device(DeviceId(0))
                .exec_time_weighted(profile, items, task.cost_scale)
                .as_secs_f64();
            (items as f64 * cpu_slots as f64 / obs_cpu).max(floor)
        };
        let t_gpu = |t: TaskId, items: u64| -> f64 {
            let task = self.tasks[t.0];
            let profile = &self.program.kernels[task.kernel.0].profile;
            let floor = self
                .platform
                .device(plan.gpu)
                .exec_time_weighted(profile, items, task.cost_scale)
                .as_secs_f64();
            (items as f64 * gpu_slots as f64 / obs_gpu).max(floor)
        };
        // A migrated chunk re-reads its inputs across the link before it
        // can start; the candidate walls must price that hop, or a slow
        // link turns a predicted win into a real loss — the regression
        // the guard exists to prevent.
        let program = self.program;
        let cpu_space = self.platform.device(DeviceId(0)).mem_space;
        let gpu_space = self.platform.device(plan.gpu).mem_space;
        let read_bytes = |t: TaskId| -> u64 {
            self.tasks[t.0]
                .accesses
                .iter()
                .filter(|acc| acc.mode.reads())
                .map(|acc| acc.region.span.len() * program.buffers[acc.region.buffer.0].item_bytes)
                .sum()
        };
        let move_secs = |t: TaskId, cur: DeviceId| -> f64 {
            let (from, to) = if cur == plan.gpu {
                (gpu_space, cpu_space)
            } else {
                (cpu_space, gpu_space)
            };
            transfer_cost(self.platform, from, to, read_bytes(t)).as_secs_f64()
        };
        let mut moved_items = 0u64;
        let mut changed = false;
        let epochs = &self.epochs;
        let tasks = &self.tasks;
        let a = self.adapt.as_mut().unwrap();
        for epoch in epochs.iter().skip(self.cur_epoch + 1) {
            // The epoch's statically placed chunks and their current homes
            // (plus what moving each one across the link would cost).
            let mut chunks: Vec<(TaskId, u64, DeviceId, f64)> = Vec::new();
            let mut total = 0u64;
            for &t in epoch {
                let Some(cur) = a.override_of[t.0].or(tasks[t.0].pinned) else {
                    continue;
                };
                chunks.push((t, tasks[t.0].items, cur, move_secs(t, cur)));
                total += tasks[t.0].items;
            }
            if chunks.len() < 2 || total == 0 {
                continue;
            }
            // Sweep the prefix splits of the size-ordered chunks (the
            // corrected split always offloads a contiguous "biggest
            // chunks" share): GPU takes the first `j`, the CPU the rest;
            // pick the `j` with the smallest predicted wall (a coin from
            // the adaptation stream breaks an exact tie).
            let mut order: Vec<usize> = (0..chunks.len()).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(chunks[i].1), chunks[i].0));
            let mut best_j = 0usize;
            let mut best_wall = f64::INFINITY;
            for j in 0..=order.len() {
                let gpu_times: Vec<f64> = order[..j]
                    .iter()
                    .map(|&i| {
                        let (t, items, cur, mv) = chunks[i];
                        t_gpu(t, items) + if cur == plan.gpu { 0.0 } else { mv }
                    })
                    .collect();
                let cpu_times: Vec<f64> = order[j..]
                    .iter()
                    .map(|&i| {
                        let (t, items, cur, mv) = chunks[i];
                        t_cpu(t, items) + if cur == plan.gpu { mv } else { 0.0 }
                    })
                    .collect();
                let wall = lpt(&gpu_times, gpu_slots).max(lpt(&cpu_times, cpu_slots));
                let better = match wall.partial_cmp(&best_wall) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Equal) => a.rng.next_f64() < 0.5,
                    _ => false,
                };
                if better {
                    best_wall = wall;
                    best_j = j;
                }
            }
            // No-regression guard: apply only if the observed-rate model
            // predicts the new assignment strictly beats the current one.
            let cur_gpu_times: Vec<f64> = chunks
                .iter()
                .filter(|&&(_, _, cur, _)| cur == plan.gpu)
                .map(|&(t, items, _, _)| t_gpu(t, items))
                .collect();
            let cur_cpu_times: Vec<f64> = chunks
                .iter()
                .filter(|&&(_, _, cur, _)| cur != plan.gpu)
                .map(|&(t, items, _, _)| t_cpu(t, items))
                .collect();
            let cur_wall = lpt(&cur_gpu_times, gpu_slots).max(lpt(&cur_cpu_times, cpu_slots));
            if best_wall >= cur_wall {
                continue;
            }
            let mut assign_gpu = vec![false; chunks.len()];
            for &i in &order[..best_j] {
                assign_gpu[i] = true;
            }
            for (i, &(t, items, cur, _)) in chunks.iter().enumerate() {
                let dest = if assign_gpu[i] { plan.gpu } else { DeviceId(0) };
                if dest != cur {
                    a.override_of[t.0] = Some(dest);
                    moved_items += items;
                    changed = true;
                }
            }
        }
        if changed {
            a.report.repartitions += 1;
            a.report.items_moved += moved_items;
            if let Some(p) = a.plan.as_mut() {
                // The applied split becomes the next re-solve's warm start.
                p.solution = corrected;
            }
            route_event(
                &mut *self.obs,
                &TraceEvent::Repartitioned {
                    epoch: self.cur_epoch,
                    gpu_items: corrected.gpu_items,
                    cpu_items: corrected.cpu_items,
                    at: self.now,
                },
            );
        }
    }

    /// The SP-Varied sibling of [`Sim::repartition`]: SP-Varied separates
    /// kernels with taskwaits, so each remaining epoch's statically placed
    /// chunks all belong to one kernel — the controller re-solves *that
    /// kernel's* stored problem against *that kernel's* cumulative
    /// observed rates. The SP-Single approximation (kernel 0's problem,
    /// whole-application aggregate rates) mis-repins as soon as kernels
    /// have opposite device affinities: the aggregate rate says "the GPU
    /// is slow" even when only one kernel is, and every epoch — including
    /// the GPU-friendly ones — gets dragged toward the CPU. Chunk binding,
    /// migration pricing, and the no-regression guard are identical to
    /// [`Sim::repartition`], applied per epoch.
    fn repartition_varied(&mut self) {
        let (plan, mut kernels) = {
            let a = self.adapt.as_ref().unwrap();
            let plan = a.plan.clone().expect("repartition requires a plan");
            let kernels = plan
                .per_kernel
                .clone()
                .expect("varied repartition carries per-kernel plans");
            (plan, kernels)
        };
        if self.faults.as_ref().is_some_and(|f| f.dead[plan.gpu.0]) {
            return;
        }
        let cpu_slots = self.platform.device(DeviceId(0)).spec.kind.slots();
        let gpu_slots = self.platform.device(plan.gpu).spec.kind.slots();
        let lpt = |times: &[f64], slots: usize| -> f64 {
            let mut load = vec![0.0f64; slots.max(1)];
            for &t in times {
                let m = load
                    .iter_mut()
                    .min_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                    .unwrap();
                *m += t;
            }
            load.into_iter().fold(0.0, f64::max)
        };
        let platform = self.platform;
        let program = self.program;
        let cpu_space = self.platform.device(DeviceId(0)).mem_space;
        let gpu_space = self.platform.device(plan.gpu).mem_space;
        let read_bytes = |t: TaskId| -> u64 {
            self.tasks[t.0]
                .accesses
                .iter()
                .filter(|acc| acc.mode.reads())
                .map(|acc| acc.region.span.len() * program.buffers[acc.region.buffer.0].item_bytes)
                .sum()
        };
        let move_secs = |t: TaskId, cur: DeviceId| -> f64 {
            let (from, to) = if cur == plan.gpu {
                (gpu_space, cpu_space)
            } else {
                (cpu_space, gpu_space)
            };
            transfer_cost(self.platform, from, to, read_bytes(t)).as_secs_f64()
        };
        let mut moved_items = 0u64;
        let mut changed = false;
        let epochs = &self.epochs;
        let tasks = &self.tasks;
        let a = self.adapt.as_mut().unwrap();
        for epoch in epochs.iter().skip(self.cur_epoch + 1) {
            let mut chunks: Vec<(TaskId, u64, DeviceId, f64)> = Vec::new();
            let mut total = 0u64;
            for &t in epoch {
                let Some(cur) = a.override_of[t.0].or(tasks[t.0].pinned) else {
                    continue;
                };
                chunks.push((t, tasks[t.0].items, cur, move_secs(t, cur)));
                total += tasks[t.0].items;
            }
            if chunks.len() < 2 || total == 0 {
                continue;
            }
            // One kernel per SP-Varied epoch; a mixed epoch has no single
            // per-kernel problem to re-solve, so it is left alone. A
            // kernel without a stored entry (its decision was Only-CPU or
            // Only-GPU) has no split to correct either.
            let kid = tasks[chunks[0].0 .0].kernel;
            if chunks.iter().any(|&(t, _, _, _)| tasks[t.0].kernel != kid) {
                continue;
            }
            let Some(ki) = kernels.iter().position(|kp| kp.kernel == kid.0) else {
                continue;
            };
            if kernels[ki].problem.items == 0 {
                continue;
            }
            // This kernel's own observed whole-device throughputs, from
            // the run's cumulative (kernel, device) rate table: items ×
            // slots / slot-busy seconds. A side this kernel has never run
            // on gives the model nothing to correct with.
            let (obs_cpu, obs_gpu) = {
                let rate = |dev: DeviceId| -> Option<f64> {
                    let o = a.obs.get(&(kid, dev))?;
                    let slots = platform.device(dev).spec.kind.slots() as f64;
                    (o.secs > 0.0 && o.items > 0.0).then(|| o.items * slots / o.secs)
                };
                (rate(DeviceId(0)), rate(plan.gpu))
            };
            let (Some(obs_cpu), Some(obs_gpu)) = (obs_cpu, obs_gpu) else {
                continue;
            };
            let corrected = glinda::resolve_with_observations(
                &kernels[ki].problem,
                &kernels[ki].solution,
                obs_cpu,
                obs_gpu,
            );
            let t_cpu = |t: TaskId, items: u64| -> f64 {
                let task = tasks[t.0];
                let profile = &program.kernels[task.kernel.0].profile;
                let floor = platform
                    .device(DeviceId(0))
                    .exec_time_weighted(profile, items, task.cost_scale)
                    .as_secs_f64();
                (items as f64 * cpu_slots as f64 / obs_cpu).max(floor)
            };
            let t_gpu = |t: TaskId, items: u64| -> f64 {
                let task = tasks[t.0];
                let profile = &program.kernels[task.kernel.0].profile;
                let floor = platform
                    .device(plan.gpu)
                    .exec_time_weighted(profile, items, task.cost_scale)
                    .as_secs_f64();
                (items as f64 * gpu_slots as f64 / obs_gpu).max(floor)
            };
            let mut order: Vec<usize> = (0..chunks.len()).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(chunks[i].1), chunks[i].0));
            let mut best_j = 0usize;
            let mut best_wall = f64::INFINITY;
            for j in 0..=order.len() {
                let gpu_times: Vec<f64> = order[..j]
                    .iter()
                    .map(|&i| {
                        let (t, items, cur, mv) = chunks[i];
                        t_gpu(t, items) + if cur == plan.gpu { 0.0 } else { mv }
                    })
                    .collect();
                let cpu_times: Vec<f64> = order[j..]
                    .iter()
                    .map(|&i| {
                        let (t, items, cur, mv) = chunks[i];
                        t_cpu(t, items) + if cur == plan.gpu { mv } else { 0.0 }
                    })
                    .collect();
                let wall = lpt(&gpu_times, gpu_slots).max(lpt(&cpu_times, cpu_slots));
                let better = match wall.partial_cmp(&best_wall) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Equal) => a.rng.next_f64() < 0.5,
                    _ => false,
                };
                if better {
                    best_wall = wall;
                    best_j = j;
                }
            }
            let cur_gpu_times: Vec<f64> = chunks
                .iter()
                .filter(|&&(_, _, cur, _)| cur == plan.gpu)
                .map(|&(t, items, _, _)| t_gpu(t, items))
                .collect();
            let cur_cpu_times: Vec<f64> = chunks
                .iter()
                .filter(|&&(_, _, cur, _)| cur != plan.gpu)
                .map(|&(t, items, _, _)| t_cpu(t, items))
                .collect();
            let cur_wall = lpt(&cur_gpu_times, gpu_slots).max(lpt(&cur_cpu_times, cpu_slots));
            if best_wall >= cur_wall {
                continue;
            }
            let mut assign_gpu = vec![false; chunks.len()];
            for &i in &order[..best_j] {
                assign_gpu[i] = true;
            }
            let mut epoch_changed = false;
            for (i, &(t, items, cur, _)) in chunks.iter().enumerate() {
                let dest = if assign_gpu[i] { plan.gpu } else { DeviceId(0) };
                if dest != cur {
                    a.override_of[t.0] = Some(dest);
                    moved_items += items;
                    epoch_changed = true;
                }
            }
            if epoch_changed {
                changed = true;
                // This kernel's applied split warm-starts its next
                // re-solve (later epochs of the same kernel in this very
                // sweep included).
                kernels[ki].solution = corrected;
            }
        }
        if changed {
            a.report.repartitions += 1;
            a.report.items_moved += moved_items;
            let (gpu_items, cpu_items) = kernels.iter().fold((0, 0), |(g, c), kp| {
                (g + kp.solution.gpu_items, c + kp.solution.cpu_items)
            });
            if let Some(p) = a.plan.as_mut() {
                p.per_kernel = Some(kernels);
            }
            route_event(
                &mut *self.obs,
                &TraceEvent::Repartitioned {
                    epoch: self.cur_epoch,
                    gpu_items,
                    cpu_items,
                    at: self.now,
                },
            );
        }
    }

    /// The N-way sibling of [`Sim::repartition`]: re-solve the plan's
    /// stored multi-device split at the observed whole-device rates over
    /// the live device set, then re-pin the remaining epochs' statically
    /// placed chunks wave-aware with migrations priced by the nominal
    /// link. The same strict no-regression guard applies — the baseline is
    /// the current assignment — so a multi-accelerator plan can never be
    /// made worse by adaptation than by leaving it alone.
    fn repartition_multi(&mut self) {
        let unavail = self.unavailable();
        let targets: Vec<DeviceId> = self
            .platform
            .devices
            .iter()
            .filter(|d| !unavail[d.id.0])
            .map(|d| d.id)
            .collect();
        if targets.len() < 2 {
            return;
        }
        self.resolve_surviving_multi(&targets);
        let (moves, moved_items) = self.nway_rebalance(&targets, &unavail, false);
        if moves.is_empty() {
            return;
        }
        let a = self.adapt.as_mut().unwrap();
        for &(t, d) in &moves {
            a.override_of[t.0] = Some(d);
        }
        a.report.repartitions += 1;
        a.report.items_moved += moved_items;
        let (gpu_items, cpu_items) = a
            .plan
            .as_ref()
            .and_then(|p| p.multi.as_ref())
            .map(|m| (m.solution.accel_items.iter().sum(), m.solution.cpu_items))
            .unwrap_or((0, 0));
        route_event(
            &mut *self.obs,
            &TraceEvent::Repartitioned {
                epoch: self.cur_epoch,
                gpu_items,
                cpu_items,
                at: self.now,
            },
        );
    }

    /// Re-solve the plan's stored N-way split over the *surviving*
    /// accelerator subset at the observed whole-device rates
    /// ([`glinda::resolve_multi_with_observations`]), writing the
    /// corrected shares back as the plan's warm start. Dropped (dead or
    /// quarantined) accelerators get a zero share; a readmitted one is a
    /// survivor again and earns its share back. Chunk-level binding is
    /// separate (see [`Sim::nway_rebalance`]) — this keeps the *plan*
    /// honest so later re-solves and reports start from the degraded
    /// split, closing the multi-accelerator `adapt_plan` gap.
    fn resolve_surviving_multi(&mut self, targets: &[DeviceId]) {
        let Some(multi) = self
            .adapt
            .as_ref()
            .and_then(|a| a.plan.as_ref())
            .and_then(|p| p.multi.clone())
        else {
            return;
        };
        let rate = self.whole_device_rates();
        let Some(obs_cpu) = rate[0] else {
            return; // nothing observed on the host yet — keep the plan
        };
        let surviving: Vec<usize> = multi
            .accels
            .iter()
            .enumerate()
            .filter(|(_, d)| targets.contains(d))
            .map(|(i, _)| i)
            .collect();
        if surviving.is_empty() {
            return; // host-only: the N-way plan has nothing left to split
        }
        let sub = MultiDeviceProblem {
            items: multi.problem.items,
            cpu_rate: multi.problem.cpu_rate,
            accelerators: surviving
                .iter()
                .map(|&i| multi.problem.accelerators[i])
                .collect(),
        };
        // The prior split restricted to the survivors (the dead devices'
        // items fall back to the CPU side for the warm-start comparison).
        let mut prior_accel: Vec<u64> = surviving
            .iter()
            .map(|&i| multi.solution.accel_items.get(i).copied().unwrap_or(0))
            .collect();
        let mut assigned: u64 = 0;
        for n in prior_accel.iter_mut() {
            *n = (*n).min(sub.items - assigned);
            assigned += *n;
        }
        let prior = MultiSolution {
            cpu_items: sub.items - assigned,
            predicted_time: sub.predicted_time(sub.items - assigned, &prior_accel),
            accel_items: prior_accel,
        };
        let obs_accels: Vec<Option<f64>> =
            surviving.iter().map(|&i| rate[multi.accels[i].0]).collect();
        let corrected = glinda::resolve_multi_with_observations(&sub, &prior, obs_cpu, &obs_accels);
        if let Some(m) = self
            .adapt
            .as_mut()
            .and_then(|a| a.plan.as_mut())
            .and_then(|p| p.multi.as_mut())
        {
            m.solution.accel_items = vec![0; m.accels.len()];
            for (k, &i) in surviving.iter().enumerate() {
                m.solution.accel_items[i] = corrected.accel_items[k];
            }
            m.solution.cpu_items = corrected.cpu_items;
            m.solution.predicted_time = corrected.predicted_time;
        }
    }

    /// Observed whole-device throughputs (items/s across all slots):
    /// plan-repair's cumulative books when present, else the adaptation
    /// controller's cumulative observations, else `None` (model only).
    fn whole_device_rates(&self) -> Vec<Option<f64>> {
        (0..self.platform.devices.len())
            .map(|d| {
                let slots = self.platform.devices[d].spec.kind.slots() as f64;
                if let Some(r) = &self.replan {
                    if r.obs_secs[d] > 0.0 && r.obs_items[d] > 0.0 {
                        return Some(r.obs_items[d] * slots / r.obs_secs[d]);
                    }
                }
                if let Some(a) = &self.adapt {
                    let (mut items, mut secs) = (0.0f64, 0.0f64);
                    for ((_, dd), o) in a.obs.iter() {
                        if dd.0 == d {
                            items += o.items;
                            secs += o.secs;
                        }
                    }
                    if secs > 0.0 && items > 0.0 {
                        return Some(items * slots / secs);
                    }
                }
                None
            })
            .collect()
    }

    /// Wave-aware N-way re-pin of the not-yet-checkpointed epochs' static
    /// chunks over `targets`: chunks (longest first) go to whichever
    /// survivor's least-loaded slot finishes them earliest, with each
    /// chunk's time the device model scaled by the device's observed ÷
    /// predicted calibration ratio (never below the model — see
    /// [`Sim::cal_model`]) and a migration away from its current home
    /// priced by the nominal link ([`transfer_cost`]). Each epoch is guarded
    /// independently against the *naive* assignment — every chunk stays
    /// home unless its home is unavailable, in which case it redirects to
    /// [`fallback_device`] (exactly what chunk-by-chunk host failover
    /// would do) — and applies only when the model predicts a strictly
    /// smaller wall. Returns the winning moves and their item total; an
    /// exact tie between candidate devices is broken by a coin from the
    /// replan stream (`use_replan_stream`) or the adaptation stream.
    fn nway_rebalance(
        &mut self,
        targets: &[DeviceId],
        unavail: &[bool],
        use_replan_stream: bool,
    ) -> (Vec<(TaskId, DeviceId)>, u64) {
        struct Chunk {
            t: TaskId,
            items: u64,
            cur: DeviceId,
            /// Per target: exec time + migration from the current home.
            cost: Vec<f64>,
            /// Target index the naive host-failover baseline would pick.
            naive: usize,
        }
        // Per-device slowdown of committed work vs the model's prediction.
        // A raw items-per-second extrapolation is *not* usable here: rates
        // observed on launch-overhead-dominated or cheaper-kernel chunks
        // wildly misprice large chunks, and an inflated naive baseline
        // makes a regressive rebind look like a win. The time-over-time
        // ratio cancels launch overhead and kernel mix exactly, and still
        // sees sustained throttling.
        let scale: Vec<f64> = (0..self.platform.devices.len())
            .map(|d| {
                if self.cal_model[d] > 0.0 && self.cal_exec[d] > 0.0 {
                    (self.cal_exec[d] / self.cal_model[d]).max(1.0)
                } else {
                    1.0
                }
            })
            .collect();
        let fallback = fallback_device(self.platform, unavail, None);
        let fb_idx = targets.iter().position(|&d| d == fallback).unwrap_or(0);
        let slots_of: Vec<usize> = targets
            .iter()
            .map(|&d| self.platform.device(d).spec.kind.slots())
            .collect();
        let mut per_epoch: Vec<Vec<Chunk>> = Vec::new();
        for epoch in self.epochs.iter().skip(self.cur_epoch) {
            let mut chunks: Vec<Chunk> = Vec::new();
            for &t in epoch {
                if self.completed[t.0] || self.faults.as_ref().is_some_and(|f| f.in_flight[t.0]) {
                    continue;
                }
                let cur = self.placements[t.0]
                    .or_else(|| self.replan.as_ref().and_then(|r| r.override_of[t.0]))
                    .or_else(|| self.adapt.as_ref().and_then(|a| a.override_of[t.0]))
                    .or(self.tasks[t.0].pinned);
                let Some(cur) = cur else {
                    continue; // dynamically bound: the scheduler re-places it
                };
                let task = self.tasks[t.0];
                let profile = &self.program.kernels[task.kernel.0].profile;
                let (mut read_bytes, mut write_bytes) = (0u64, 0u64);
                for acc in task.accesses.iter() {
                    let bytes = acc.region.span.len()
                        * self.program.buffers[acc.region.buffer.0].item_bytes;
                    if acc.mode.reads() {
                        read_bytes += bytes;
                    }
                    if acc.mode.writes() {
                        write_bytes += bytes;
                    }
                }
                let cur_space = self.platform.device(cur).mem_space;
                let cost: Vec<f64> = targets
                    .iter()
                    .map(|&d| {
                        let device = self.platform.device(d);
                        let exec = device
                            .exec_time_weighted(profile, task.items, task.cost_scale)
                            .as_secs_f64()
                            * scale[d.0];
                        // Epoch data is write-back coherent: an accelerator
                        // placement fetches the chunk's reads from the host
                        // side and flushes its writes back, so every
                        // non-host target is priced for the round trip —
                        // the chunk's current home included (after the
                        // epoch flush, staying put re-fetches like everyone
                        // else).
                        let space = device.mem_space;
                        let round_trip = if space == MemSpaceId::HOST {
                            0.0
                        } else {
                            transfer_cost(self.platform, MemSpaceId::HOST, space, read_bytes)
                                .as_secs_f64()
                                + transfer_cost(self.platform, space, MemSpaceId::HOST, write_bytes)
                                    .as_secs_f64()
                        };
                        // Migrating away from the current home additionally
                        // moves whatever is resident there right now.
                        let mv = if d == cur {
                            0.0
                        } else {
                            transfer_cost(self.platform, cur_space, space, read_bytes).as_secs_f64()
                        };
                        exec + round_trip + mv
                    })
                    .collect();
                let naive = if unavail[cur.0] {
                    fb_idx
                } else {
                    targets.iter().position(|&d| d == cur).unwrap_or(fb_idx)
                };
                chunks.push(Chunk {
                    t,
                    items: task.items,
                    cur,
                    cost,
                    naive,
                });
            }
            per_epoch.push(chunks);
        }
        let rng = if use_replan_stream {
            &mut self.replan.as_mut().unwrap().rng
        } else {
            &mut self.adapt.as_mut().unwrap().rng
        };
        let lpt_push = |load: &mut [f64], t: f64| {
            let m = load
                .iter_mut()
                .min_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                .unwrap();
            *m += t;
        };
        let mut moves: Vec<(TaskId, DeviceId)> = Vec::new();
        let mut moved_items = 0u64;
        for chunks in &per_epoch {
            if chunks.is_empty() {
                continue;
            }
            let mut order: Vec<usize> = (0..chunks.len()).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(chunks[i].items), chunks[i].t));
            // The naive baseline dispatches the same longest-first waves.
            let mut naive_loads: Vec<Vec<f64>> =
                slots_of.iter().map(|&s| vec![0.0; s.max(1)]).collect();
            for &i in &order {
                let c = &chunks[i];
                lpt_push(&mut naive_loads[c.naive], c.cost[c.naive]);
            }
            let naive_wall = naive_loads
                .iter()
                .flat_map(|l| l.iter())
                .fold(0.0f64, |m, &v| m.max(v));
            // Repaired assignment: earliest predicted finish wins.
            let mut loads: Vec<Vec<f64>> = slots_of.iter().map(|&s| vec![0.0; s.max(1)]).collect();
            let mut dest = vec![0usize; chunks.len()];
            for &i in &order {
                let c = &chunks[i];
                let mut best: Option<(f64, usize)> = None;
                for (k, load) in loads.iter().enumerate() {
                    let slack = load.iter().fold(f64::INFINITY, |m, &v| m.min(v));
                    let fin = slack + c.cost[k];
                    let better = match best {
                        None => true,
                        Some((bf, _)) => match fin.partial_cmp(&bf) {
                            Some(std::cmp::Ordering::Less) => true,
                            Some(std::cmp::Ordering::Equal) => rng.next_f64() < 0.5,
                            _ => false,
                        },
                    };
                    if better {
                        best = Some((fin, k));
                    }
                }
                let (_, k) = best.expect("at least one surviving target");
                lpt_push(&mut loads[k], c.cost[k]);
                dest[i] = k;
            }
            let wall = loads
                .iter()
                .flat_map(|l| l.iter())
                .fold(0.0f64, |m, &v| m.max(v));
            // Per-epoch no-regression guard: repair must beat the naive
            // failover at the model's own predictions *with margin* —
            // the model is a per-epoch LPT relaxation that cannot see
            // link serialization, queue interleaving or the scheduling
            // overhead a rebound chunk pays, so a marginal predicted win
            // is not worth the risk of a real loss.
            if wall >= naive_wall * (1.0 - NWAY_GUARD_MARGIN) {
                continue;
            }
            for (i, c) in chunks.iter().enumerate() {
                let d = targets[dest[i]];
                if d != c.cur {
                    moves.push((c.t, d));
                    moved_items += c.items;
                }
            }
        }
        (moves, moved_items)
    }

    /// Degraded-mode plan repair (see [`simulate_repairing`]): re-solve
    /// the not-yet-checkpointed epochs over the surviving device set and
    /// rebind the queued chunks. `heal` marks a healing re-plan after a
    /// breaker reclose (the readmitted `dev` is a survivor again);
    /// otherwise `dev` just died or was quarantined. Returns whether a
    /// repair was applied. Bounded by [`ReplanConfig::max_replans`];
    /// failures are recorded once in [`AdaptReport::replan_error`] and the
    /// executor falls back to chunk-by-chunk host failover.
    fn plan_repair(&mut self, dev: DeviceId, heal: bool) -> bool {
        let Some(r) = self.replan.as_ref() else {
            return false;
        };
        let max = r.config.max_replans;
        if r.replans + r.readmissions >= u64::from(max) {
            let r = self.replan.as_mut().unwrap();
            if r.error.is_none() {
                r.error = Some(ReplanError::BudgetExhausted { max_replans: max });
            }
            return false;
        }
        let unavail = self.unavailable();
        let targets: Vec<DeviceId> = self
            .platform
            .devices
            .iter()
            .filter(|d| !unavail[d.id.0])
            .map(|d| d.id)
            .collect();
        if targets.is_empty() {
            let r = self.replan.as_mut().unwrap();
            if r.error.is_none() {
                r.error = Some(ReplanError::NoSurvivingAccelerator);
            }
            return false;
        }
        // Keep the stored N-way plan honest about the degraded platform.
        self.resolve_surviving_multi(&targets);
        let (moves, _moved_items) = self.nway_rebalance(&targets, &unavail, true);
        if moves.is_empty() {
            // No-regression guard: the naive failover was predicted no
            // worse, so the standing bindings (and the guard's fallback
            // redirects) stay.
            return false;
        }
        {
            let r = self.replan.as_mut().unwrap();
            for &(t, d) in &moves {
                r.override_of[t.0] = Some(d);
            }
            if heal {
                r.readmissions += 1;
            } else {
                r.replans += 1;
            }
        }
        // Mirror the moves into the repartition override map so a later
        // barrier re-solve starts from the applied assignment.
        if let Some(a) = self.adapt.as_mut() {
            for &(t, d) in &moves {
                a.override_of[t.0] = Some(d);
            }
        }
        self.rebind_queued();
        let moved = moves.len() as u64;
        let ev = if heal {
            TraceEvent::DeviceReadmitted {
                dev,
                moved,
                at: self.now,
            }
        } else {
            TraceEvent::PlanRepaired {
                dev,
                moved,
                at: self.now,
            }
        };
        route_event(&mut *self.obs, &ev);
        true
    }

    /// Drain every device queue and re-bind the drained chunks in TaskId
    /// order so freshly written repair overrides take effect immediately.
    /// In-flight work is untouched — a migration never cancels running
    /// work, it only re-homes work that has not started.
    fn rebind_queued(&mut self) {
        let mut requeue: Vec<TaskId> = Vec::new();
        for q in &mut self.dev_queues {
            requeue.extend(q.drain(..));
        }
        requeue.sort_unstable();
        for &t in &requeue {
            self.placements[t.0] = None;
        }
        for t in requeue {
            self.make_ready(t);
        }
    }

    /// Hand the rest of the run to an internal DP-Perf scheduler seeded
    /// with the run's own per-(kernel, device) observations — the Table I
    /// static → dynamic sibling escalation (SP-* → DP-Perf).
    fn escalate(&mut self) {
        let a = self.adapt.as_mut().unwrap();
        a.escalated = Some(PerfScheduler::seeded(self.platform, a.obs.clone()));
        a.calm_barriers = 0; // a fresh escalation starts a fresh calm count
        a.report.escalated = true;
        a.report.escalated_at_epoch = Some(self.cur_epoch);
        route_event(
            &mut *self.obs,
            &TraceEvent::StrategyEscalated {
                epoch: self.cur_epoch,
                at: self.now,
            },
        );
    }

    /// Disturbance-aware de-escalation (ROADMAP: "plan reinstatement").
    /// Each barrier the escalated run closes with skew at or below the
    /// balance target and *no open fault window* — scheduled or
    /// synthesized by a correlated trigger — bumps a calm counter;
    /// anything else resets it. After `reinstate_after` consecutive calm
    /// barriers the remaining epochs are handed back to the static plan,
    /// re-solved at the observed whole-device rates exactly as
    /// [`Sim::repartition`] would. A no-regression guard keeps DP-Perf
    /// when the slot-quantised model predicts the static split would run
    /// the next epoch slower than the dynamic scheduler just ran the
    /// closing one.
    fn try_reinstate(&mut self, skew: f64) {
        let now = self.now;
        let disturbed = self
            .faults
            .as_ref()
            .is_some_and(|f| f.schedule.disturbance_open(now) || f.synth_window_open(now));
        let plan = self.adapt.as_ref().unwrap().plan.clone();
        let gpu_dead = match &plan {
            Some(p) => self.faults.as_ref().is_some_and(|f| f.dead[p.gpu.0]),
            None => true,
        };
        let calm = {
            let a = self.adapt.as_ref().unwrap();
            skew <= a.config.balance_target
                && !disturbed
                && !gpu_dead
                && self.cur_epoch + 1 < self.epochs.len()
        };
        let ready = {
            let a = self.adapt.as_mut().unwrap();
            if !calm {
                a.calm_barriers = 0;
                return;
            }
            a.calm_barriers += 1;
            a.calm_barriers >= a.config.reinstate_after
        };
        if !ready {
            return;
        }
        let plan = plan.expect("calm implies a live plan");
        if plan.problem.items == 0 {
            return;
        }
        // Observed whole-device rates of the closing epoch (same model as
        // `repartition`). DP-Perf may have starved a side entirely this
        // epoch; fall back to the run's cumulative observations so a
        // one-sided dynamic placement can still be un-escalated.
        let (obs_cpu, obs_gpu) = {
            let a = self.adapt.as_ref().unwrap();
            let rate = |dev: DeviceId| -> Option<f64> {
                let slots = self.platform.device(dev).spec.kind.slots() as f64;
                let busy = a.epoch_busy[dev.0].as_secs_f64();
                let items = a.epoch_items[dev.0] as f64;
                if busy > 0.0 && items > 0.0 {
                    return Some(items * slots / busy);
                }
                let (mut items, mut secs) = (0.0f64, 0.0f64);
                for ((_, d), o) in a.obs.iter() {
                    if *d == dev {
                        items += o.items;
                        secs += o.secs;
                    }
                }
                (secs > 0.0 && items > 0.0).then_some(items * slots / secs)
            };
            (rate(DeviceId(0)), rate(plan.gpu))
        };
        // A device with no observations at all would make the static
        // plan blind: keep the dynamic scheduler and keep waiting.
        let (Some(obs_cpu), Some(obs_gpu)) = (obs_cpu, obs_gpu) else {
            return;
        };
        let corrected =
            glinda::resolve_with_observations(&plan.problem, &plan.solution, obs_cpu, obs_gpu);
        let cpu_slots = self.platform.device(DeviceId(0)).spec.kind.slots();
        let gpu_slots = self.platform.device(plan.gpu).spec.kind.slots();
        let lpt = |times: &[f64], slots: usize| -> f64 {
            let mut load = vec![0.0f64; slots.max(1)];
            for &t in times {
                let m = load
                    .iter_mut()
                    .min_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                    .unwrap();
                *m += t;
            }
            load.into_iter().fold(0.0, f64::max)
        };
        let t_cpu = |items: u64| items as f64 * cpu_slots as f64 / obs_cpu;
        let t_gpu = |items: u64| items as f64 * gpu_slots as f64 / obs_gpu;
        let dynamic_wall = {
            let a = self.adapt.as_ref().unwrap();
            now.saturating_sub(a.last_barrier_at).as_secs_f64()
        };
        let epochs = &self.epochs;
        let tasks = &self.tasks;
        let a = self.adapt.as_mut().unwrap();
        let mut guard_checked = false;
        let mut moves: Vec<(TaskId, DeviceId)> = Vec::new();
        for epoch in epochs.iter().skip(self.cur_epoch + 1) {
            let mut chunks: Vec<(TaskId, u64, DeviceId)> = Vec::new();
            for &t in epoch {
                let Some(cur) = a.override_of[t.0].or(tasks[t.0].pinned) else {
                    continue;
                };
                chunks.push((t, tasks[t.0].items, cur));
            }
            if chunks.is_empty() {
                continue;
            }
            let mut order: Vec<usize> = (0..chunks.len()).collect();
            order.sort_by_key(|&i| (std::cmp::Reverse(chunks[i].1), chunks[i].0));
            let mut best_j = 0usize;
            let mut best_wall = f64::INFINITY;
            for j in 0..=order.len() {
                let gpu_times: Vec<f64> = order[..j].iter().map(|&i| t_gpu(chunks[i].1)).collect();
                let cpu_times: Vec<f64> = order[j..].iter().map(|&i| t_cpu(chunks[i].1)).collect();
                let wall = lpt(&gpu_times, gpu_slots).max(lpt(&cpu_times, cpu_slots));
                let better = match wall.partial_cmp(&best_wall) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Equal) => a.rng.next_f64() < 0.5,
                    _ => false,
                };
                if better {
                    best_wall = wall;
                    best_j = j;
                }
            }
            if !guard_checked {
                guard_checked = true;
                // No-regression guard, against the *measured* dynamic
                // wall of the epoch that just closed.
                if best_wall > dynamic_wall {
                    a.calm_barriers = 0;
                    return;
                }
            }
            let mut assign_gpu = vec![false; chunks.len()];
            for &i in &order[..best_j] {
                assign_gpu[i] = true;
            }
            for (i, &(t, _, cur)) in chunks.iter().enumerate() {
                let dest = if assign_gpu[i] { plan.gpu } else { DeviceId(0) };
                if dest != cur {
                    moves.push((t, dest));
                }
            }
        }
        for &(t, dest) in &moves {
            a.override_of[t.0] = Some(dest);
        }
        if let Some(p) = a.plan.as_mut() {
            // The reinstated split becomes the next re-solve's warm start.
            p.solution = corrected;
        }
        a.escalated = None;
        a.calm_barriers = 0;
        a.consecutive_imbalanced = 0;
        a.resolves_since_balance = 0;
        a.report.reinstated = true;
        a.report.reinstated_at_epoch = Some(self.cur_epoch);
        route_event(
            &mut *self.obs,
            &TraceEvent::StrategyReinstated {
                epoch: self.cur_epoch,
                at: now,
            },
        );
    }

    fn on_epoch_flushed(&mut self) {
        // The flush event is the journal's commit point: it fires only
        // after SDC verification passed (a rollback re-runs the epoch
        // *before* the flush starts), so records are final and epoch
        // indices strictly increase.
        if self.journal.is_some() {
            if let Err(e) = self.journal_commit() {
                self.journal_err = Some(e);
                return;
            }
        }
        self.cur_epoch += 1;
        if self.cur_epoch < self.epochs.len() {
            self.activate_epoch();
        }
    }

    /// Build and commit this epoch's [`EpochRecord`]. On a resumed run the
    /// sink byte-compares the record against the journal's stored line
    /// instead of appending — the validated-redo-replay check that makes
    /// the saved RNG cursors and counters load-bearing.
    fn journal_commit(&mut self) -> Result<(), JournalError> {
        let epoch = self.cur_epoch;
        let placements: Vec<(usize, usize)> = self.epochs[epoch]
            .iter()
            .map(|t| {
                let dev = self.placements[t.0].expect("flushed epoch tasks are placed");
                (t.0, dev.0)
            })
            .collect();
        let record = EpochRecord {
            epoch,
            at: self.now,
            completed: self.completed.iter().filter(|&&c| c).count() as u64,
            placements,
            rng: RngCursors {
                fault: self.faults.as_ref().map(|f| f.rng.cursor()),
                correlated: self
                    .faults
                    .as_ref()
                    .and_then(|f| f.corr_rng.as_ref())
                    .map(FaultRng::cursor),
                health: self.health.as_ref().map(|h| h.rng.cursor()),
                adapt: self.adapt.as_ref().map(|a| a.rng.cursor()),
                replan: self.replan.as_ref().map(|r| r.rng.cursor()),
            },
            faults: self
                .faults
                .as_ref()
                .map(|f| f.counters.clone())
                .unwrap_or_default(),
            blame: self.blame.clone(),
            counters: self.counters.clone(),
        };
        let journal = self
            .journal
            .as_mut()
            .expect("journal_commit runs only with a sink");
        journal.append_epoch(&record)?;
        Ok(())
    }

    /// [`transfer_cost`] priced on the links *as they stand at `at`*: each
    /// host↔accelerator hop is scaled by the accelerator's open
    /// [`FaultEvent::LinkDegrade`] windows (`FaultSchedule::link_factors`).
    /// With no degradation anywhere in the schedule this takes the nominal
    /// path and is bit-identical to [`transfer_cost`].
    fn degraded_transfer_cost(
        &self,
        from: MemSpaceId,
        to: MemSpaceId,
        bytes: u64,
        at: SimTime,
    ) -> SimTime {
        let Some(f) = self
            .faults
            .as_ref()
            .filter(|f| f.schedule.has_link_degrade())
        else {
            return transfer_cost(self.platform, from, to, bytes);
        };
        if from == to {
            return SimTime::ZERO;
        }
        let hop = |a: MemSpaceId, b: MemSpaceId, at: SimTime| -> SimTime {
            let accel = if a.is_host() { b } else { a };
            let (bw, lat) =
                self.space_dev[accel.0].map_or((1.0, 1.0), |dev| f.schedule.link_factors(dev, at));
            let l = self
                .platform
                .link(a, b)
                .expect("distinct memory spaces are linked");
            l.transfer_time_scaled(bytes, bw, lat)
        };
        // Device-to-device moves route through the host (two hops); the
        // second hop is priced at the time the first one lands.
        if !from.is_host() && !to.is_host() {
            let first = hop(from, MemSpaceId::HOST, at);
            return first + hop(MemSpaceId::HOST, to, at + first);
        }
        hop(from, to, at)
    }

    /// Flush device data home at a taskwait / end of program.
    ///
    /// Each device's write-back begins when *that device* finished its last
    /// task of the epoch — the runtime drains a device's dirty data
    /// asynchronously while other devices are still computing — and the
    /// links drain in parallel. The barrier completes when every write-back
    /// has landed.
    fn start_flush(&mut self) {
        let transfers = self.coherence.flush_and_invalidate();
        // Serialise per source space; spaces drain in parallel. Each
        // device's write-back starts when that device finished its last
        // task of the epoch.
        let mut cursors: std::collections::BTreeMap<usize, SimTime> =
            std::collections::BTreeMap::new();
        let mut flush_start = self.now;
        let mut flush_end = self.now;
        for tr in transfers {
            let start_at = self
                .platform
                .devices
                .iter()
                .filter(|d| d.mem_space == tr.from)
                .map(|d| self.dev_last_done[d.id.0])
                .max()
                .unwrap_or(self.now);
            let t0 = *cursors.entry(tr.from.0).or_insert(start_at);
            // Checkpoint write-backs ride the same wire as reads: an open
            // LinkDegrade window stretches the flush.
            let dt = self.degraded_transfer_cost(tr.from, tr.to, tr.bytes, t0);
            self.counters.record_transfer(tr.bytes, dt);
            let cursor = cursors.get_mut(&tr.from.0).expect("cursor just inserted");
            *cursor = t0 + dt;
            flush_start = flush_start.min(t0);
            flush_end = flush_end.max(*cursor);
            route_event(
                &mut *self.obs,
                &TraceEvent::Transfer {
                    from: tr.from,
                    to: tr.to,
                    bytes: tr.bytes,
                    start: t0,
                    end: t0 + dt,
                },
            );
        }
        route_event(
            &mut *self.obs,
            &TraceEvent::Flush {
                epoch: self.flushes_done,
                start: flush_start.min(self.now),
                end: flush_end,
            },
        );
        self.flushes_done += 1;
        self.queue.push(flush_end, Ev::EpochFlushed);
    }
}

fn transfer_cost(platform: &Platform, from: MemSpaceId, to: MemSpaceId, bytes: u64) -> SimTime {
    if from == to {
        return SimTime::ZERO;
    }
    // Device-to-device moves route through the host: two link hops.
    if !from.is_host() && !to.is_host() {
        return platform.transfer_time(from, MemSpaceId::HOST, bytes)
            + platform.transfer_time(MemSpaceId::HOST, to, bytes);
    }
    platform.transfer_time(from, to, bytes)
}
