//! The virtual-time executor.
//!
//! Drives a [`Program`] over a [`Platform`] under a [`Scheduler`], producing
//! a [`RunReport`]. The execution model mirrors the OmpSs runtime the paper
//! uses:
//!
//! * task instances become *ready* when their data dependences are
//!   satisfied and their taskwait epoch is active;
//! * ready instances are *bound* to a device by the scheduler and wait in
//!   that device's FIFO queue for a free slot (a CPU hardware thread, or
//!   the GPU);
//! * dispatching an instance first satisfies coherence (host↔device
//!   transfers for its read regions — serialised with the device's work,
//!   as in a single-command-queue OpenCL device), then executes under the
//!   device's roofline model;
//! * dynamic policies pay the platform's per-decision scheduling overhead
//!   per instance; pinned (static) plans do not;
//! * each `taskwait` waits for all prior instances, flushes device-resident
//!   data to the host and invalidates device copies;
//! * a final implicit flush returns all results to the host — the paper's
//!   "one device-to-host data transfer after the last kernel finishes".
//!
//! # Resilient execution
//!
//! [`simulate_faulty`] runs the same model under a seeded
//! [`FaultSchedule`]:
//!
//! * **throttle ramps** multiply an attempt's execution time;
//! * **transfer faults** re-issue the transfer at full wire cost;
//! * a **transient task fault** wastes the attempt, then the
//!   [`RetryPolicy`] retries on the same device with exponential backoff
//!   charged as simulated time; when retries are exhausted the task *fails
//!   over* to the surviving device with the most slots (ultimately the
//!   host, mirroring the paper's Only-CPU baseline), and a task that
//!   exhausts retries with nowhere left to go finishes in *safe mode*
//!   (fault sampling disabled) so every run terminates;
//! * a **device dropout** kills the device's queued and in-flight work and
//!   re-binds it to survivors; uncommitted completions of the *current*
//!   epoch that ran on the dead device are re-executed, because their
//!   results lived in the dead memory and the host only holds the previous
//!   taskwait's checkpoint. Epochs whose barrier was already reached are
//!   committed checkpoints and are never re-executed.
//!
//! The fault path is strictly additive: with no schedule the executor takes
//! the exact event sequence of the healthy simulator, byte for byte.

use crate::coherence::CoherenceDir;
use crate::graph::TaskGraph;
use crate::program::{Program, TaskDesc, TaskId};
use crate::scheduler::{BindCtx, Scheduler};
use crate::stats::{KernelStats, RunReport};
use crate::trace::{Trace, TraceEvent};
use hetero_platform::{
    DeviceId, EventQueue, FaultCounters, FaultRng, FaultSchedule, MemSpaceId, Platform,
    PlatformCounters, RetryPolicy, SimTime,
};
use std::collections::VecDeque;

enum Ev {
    TaskDone {
        task: TaskId,
        dev: DeviceId,
        gen: u32,
    },
    TaskAborted {
        task: TaskId,
        dev: DeviceId,
        gen: u32,
    },
    EpochFlushed,
    DeviceDropout {
        dev: DeviceId,
    },
}

/// Simulate `program` on `platform` under `scheduler`.
pub fn simulate(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
) -> RunReport {
    Sim::new(program, platform, scheduler, false, None).run().0
}

/// [`simulate`], additionally recording an execution [`Trace`].
pub fn simulate_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
) -> (RunReport, Trace) {
    let (report, trace) = Sim::new(program, platform, scheduler, true, None).run();
    (report, trace.expect("tracing was enabled"))
}

/// [`simulate`] under a seeded [`FaultSchedule`]: injects the scheduled
/// faults and executes resiliently under `policy` (see the module docs).
/// Identical schedules (same seed, same events) replay identical runs.
pub fn simulate_faulty(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
) -> RunReport {
    Sim::new(
        program,
        platform,
        scheduler,
        false,
        Some((schedule, policy)),
    )
    .run()
    .0
}

/// [`simulate_faulty`], additionally recording an execution [`Trace`] with
/// the fault events ([`TraceEvent::TaskFault`], [`TraceEvent::Failover`],
/// ...).
pub fn simulate_faulty_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
    schedule: &FaultSchedule,
    policy: RetryPolicy,
) -> (RunReport, Trace) {
    let (report, trace) =
        Sim::new(program, platform, scheduler, true, Some((schedule, policy))).run();
    (report, trace.expect("tracing was enabled"))
}

/// Mutable fault-injection state, present only on the faulty path.
struct FaultCtx<'a> {
    schedule: &'a FaultSchedule,
    policy: RetryPolicy,
    rng: FaultRng,
    counters: FaultCounters,
    /// Per device: permanently dropped out.
    dead: Vec<bool>,
    /// Per task: attempt generation; completion events carry the
    /// generation they were issued under, so a dropout can invalidate the
    /// in-flight event of a task it kills by bumping this.
    gen: Vec<u32>,
    /// Per task: already failed over once (next exhaustion → safe mode).
    failed_over: Vec<bool>,
    /// Per task: placement was forced (scheduler bypassed), so the
    /// scheduler must not be told about its completion — its own books
    /// still name the device *it* chose.
    suppress_complete: Vec<bool>,
    /// Per task: currently occupying a slot (dispatched, not done).
    in_flight: Vec<bool>,
    /// Per task: dispatch time of the current attempt batch.
    started_at: Vec<SimTime>,
    /// Per task: `record_task` was applied for the current dispatch (false
    /// while an aborting dispatch only charged raw busy time).
    recorded: Vec<bool>,
    /// Per task: fault loss (failed attempts, backoff, transfer retries)
    /// already booked into `time_lost` for the current dispatch, so a
    /// dropout that discards the dispatch charges only the remainder.
    booked_loss: Vec<SimTime>,
}

fn scale_time(t: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        t
    } else {
        SimTime::from_secs_f64(t.as_secs_f64() * factor)
    }
}

/// The surviving device with the most slots (ties → lowest id), excluding
/// `exclude`; the host (device 0, never dead) is the target of last resort.
fn fallback_device(platform: &Platform, dead: &[bool], exclude: Option<DeviceId>) -> DeviceId {
    platform
        .devices
        .iter()
        .filter(|d| !dead[d.id.0] && Some(d.id) != exclude)
        .max_by_key(|d| (d.spec.kind.slots(), std::cmp::Reverse(d.id.0)))
        .map(|d| d.id)
        .unwrap_or(DeviceId(0))
}

struct Sim<'a> {
    program: &'a Program,
    platform: &'a Platform,
    scheduler: &'a mut dyn Scheduler,
    graph: TaskGraph,
    tasks: Vec<&'a TaskDesc>,
    epochs: Vec<Vec<TaskId>>,

    now: SimTime,
    queue: EventQueue<Ev>,
    coherence: CoherenceDir,
    counters: PlatformCounters,
    per_kernel: Vec<KernelStats>,

    remaining_preds: Vec<usize>,
    completed: Vec<bool>,
    busy_of: Vec<SimTime>,
    exec_of: Vec<SimTime>,
    placements: Vec<Option<DeviceId>>,
    dev_queues: Vec<VecDeque<TaskId>>,
    free_slots: Vec<usize>,
    /// Completion time of the last task finished on each device, used to
    /// start the taskwait flush of a device's data as soon as that device
    /// is done (overlapping with other devices still computing, as the
    /// runtime's asynchronous write-back does).
    dev_last_done: Vec<SimTime>,

    cur_epoch: usize,
    epoch_remaining: usize,
    flushes_done: usize,
    trace: Option<Trace>,
    faults: Option<FaultCtx<'a>>,
}

impl<'a> Sim<'a> {
    fn new(
        program: &'a Program,
        platform: &'a Platform,
        scheduler: &'a mut dyn Scheduler,
        traced: bool,
        faults: Option<(&'a FaultSchedule, RetryPolicy)>,
    ) -> Self {
        let graph = TaskGraph::build(program);
        let tasks: Vec<&TaskDesc> = program.tasks().into_iter().map(|(_, t)| t).collect();
        let epochs = program.epochs();
        let n = tasks.len();
        let per_kernel = program
            .kernels
            .iter()
            .map(|k| KernelStats {
                name: k.name.clone(),
                items_per_device: vec![0; platform.devices.len()],
                tasks_per_device: vec![0; platform.devices.len()],
            })
            .collect();
        let faults = faults.map(|(schedule, policy)| {
            schedule
                .validate()
                .unwrap_or_else(|e| panic!("invalid fault schedule: {e}"));
            FaultCtx {
                schedule,
                policy,
                rng: schedule.rng(),
                counters: FaultCounters::default(),
                dead: vec![false; platform.devices.len()],
                gen: vec![0; n],
                failed_over: vec![false; n],
                suppress_complete: vec![false; n],
                in_flight: vec![false; n],
                started_at: vec![SimTime::ZERO; n],
                recorded: vec![false; n],
                booked_loss: vec![SimTime::ZERO; n],
            }
        });
        Sim {
            remaining_preds: graph.preds.iter().map(Vec::len).collect(),
            graph,
            tasks,
            epochs,
            program,
            platform,
            scheduler,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            coherence: CoherenceDir::new(platform.mem_spaces, &program.buffers),
            counters: PlatformCounters::new(platform.devices.len()),
            per_kernel,
            completed: vec![false; n],
            busy_of: vec![SimTime::ZERO; n],
            exec_of: vec![SimTime::ZERO; n],
            placements: vec![None; n],
            dev_queues: platform.devices.iter().map(|_| VecDeque::new()).collect(),
            free_slots: platform
                .devices
                .iter()
                .map(|d| d.spec.kind.slots())
                .collect(),
            dev_last_done: vec![SimTime::ZERO; platform.devices.len()],
            cur_epoch: 0,
            epoch_remaining: 0,
            flushes_done: 0,
            trace: traced.then(Trace::default),
            faults,
        }
    }

    fn run(mut self) -> (RunReport, Option<Trace>) {
        if self.epochs.is_empty() || self.tasks.is_empty() {
            return self.finish();
        }
        // Dropouts are scheduled up front: their events carry the lowest
        // sequence numbers, so at a time tie the failure wins — a task
        // finishing exactly when its device dies is killed.
        if let Some(f) = &self.faults {
            let dropouts = f.schedule.dropouts();
            for (dev, at) in dropouts {
                self.queue.push(at, Ev::DeviceDropout { dev });
            }
        }
        self.activate_epoch();
        while let Some((t, ev)) = self.queue.pop() {
            match ev {
                Ev::TaskDone { task, dev, gen } => {
                    if self.stale(task, gen) {
                        continue;
                    }
                    self.now = t;
                    self.on_task_done(task, dev);
                }
                Ev::TaskAborted { task, dev, gen } => {
                    if self.stale(task, gen) {
                        continue;
                    }
                    self.now = t;
                    self.on_task_aborted(task, dev);
                }
                Ev::EpochFlushed => {
                    self.now = t;
                    self.on_epoch_flushed();
                }
                Ev::DeviceDropout { dev } => {
                    // A dropout after the program finished is a non-event;
                    // skipping it keeps the makespan untouched.
                    if self.cur_epoch >= self.epochs.len() {
                        continue;
                    }
                    self.now = t;
                    self.on_device_dropout(dev);
                }
            }
        }
        assert!(
            self.completed.iter().all(|&c| c),
            "deadlock: not all tasks completed (cyclic program or lost event)"
        );
        self.finish()
    }

    fn finish(self) -> (RunReport, Option<Trace>) {
        let report = RunReport {
            scheduler: self.scheduler.name().to_string(),
            makespan: self.now,
            counters: self.counters,
            per_kernel: self.per_kernel,
            device_is_gpu: self
                .platform
                .devices
                .iter()
                .map(|d| d.spec.kind.is_gpu())
                .collect(),
            faults: self.faults.map(|f| f.counters).unwrap_or_default(),
        };
        (report, self.trace)
    }

    /// `true` when a completion event belongs to a dispatch that a dropout
    /// has since invalidated.
    fn stale(&self, t: TaskId, gen: u32) -> bool {
        self.faults.as_ref().is_some_and(|f| f.gen[t.0] != gen)
    }

    fn cur_gen(&self, t: TaskId) -> u32 {
        self.faults.as_ref().map_or(0, |f| f.gen[t.0])
    }

    /// Begin the current epoch: bind its dependency-free tasks.
    fn activate_epoch(&mut self) {
        let tasks: Vec<TaskId> = self.epochs[self.cur_epoch].clone();
        self.epoch_remaining = tasks.len();
        if tasks.is_empty() {
            // An empty epoch is just a flush point.
            self.start_flush();
            return;
        }
        for t in tasks {
            if self.remaining_preds[t.0] == 0 {
                self.make_ready(t);
            }
        }
        self.dispatch_all();
    }

    /// Bind a ready task to a device and enqueue it there.
    fn make_ready(&mut self, t: TaskId) {
        let pred_placements: Vec<DeviceId> = self.graph.preds[t.0]
            .iter()
            .map(|p| {
                self.placements[p.0].expect("predecessor completed, so it must have been placed")
            })
            .collect();
        let task = self.tasks[t.0];
        let coherence = &self.coherence;
        let platform = self.platform;
        let buffers = &self.program.buffers;
        let transfer_estimate = move |dev: DeviceId| -> SimTime {
            let space = platform.device(dev).mem_space;
            let mut total = SimTime::ZERO;
            for acc in &task.accesses {
                if acc.mode.reads() {
                    let bytes =
                        coherence.missing_read_bytes(acc.region.buffer, acc.region.span, space);
                    if bytes > 0 {
                        // Approximation: data arrives from the host.
                        total += platform.transfer_time(MemSpaceId::HOST, space, bytes);
                    }
                }
                if acc.mode.writes() && !space.is_host() {
                    // Data produced off-host must eventually be written
                    // back; charge it to the placement (conservative, as in
                    // a descriptor-based data-movement estimate).
                    let bytes = acc.region.len() * buffers[acc.region.buffer.0].item_bytes;
                    total += platform.transfer_time(space, MemSpaceId::HOST, bytes);
                }
            }
            total
        };
        let mut dev = self.scheduler.bind(&BindCtx {
            now: self.now,
            platform: self.platform,
            task,
            task_id: t,
            pred_placements: &pred_placements,
            transfer_estimate: &transfer_estimate,
        });
        // A binding that names a dead device is redirected to the fallback
        // survivor (a pinned plan keeps naming its dead device; redirecting
        // here is what "falls back to Only-CPU completion").
        if let Some(f) = &mut self.faults {
            if f.dead[dev.0] {
                let target = fallback_device(self.platform, &f.dead, None);
                f.counters.failovers += 1;
                f.suppress_complete[t.0] = true;
                if let Some(trace) = &mut self.trace {
                    trace.events.push(TraceEvent::Failover {
                        task: t,
                        from: dev,
                        to: target,
                        at: self.now,
                    });
                }
                dev = target;
            }
        }
        self.placements[t.0] = Some(dev);
        self.dev_queues[dev.0].push_back(t);
    }

    fn dispatch_all(&mut self) {
        for d in 0..self.dev_queues.len() {
            self.dispatch(DeviceId(d));
        }
    }

    /// Start as many queued tasks on `dev` as free slots allow.
    fn dispatch(&mut self, dev: DeviceId) {
        if self.faults.as_ref().is_some_and(|f| f.dead[dev.0]) {
            return;
        }
        while self.free_slots[dev.0] > 0 {
            let Some(t) = self.dev_queues[dev.0].pop_front() else {
                break;
            };
            self.free_slots[dev.0] -= 1;
            let (busy, aborted) = self.start_task(t, dev);
            let gen = self.cur_gen(t);
            if let Some(f) = &mut self.faults {
                f.in_flight[t.0] = true;
                f.started_at[t.0] = self.now;
            }
            let ev = if aborted {
                Ev::TaskAborted { task: t, dev, gen }
            } else {
                Ev::TaskDone { task: t, dev, gen }
            };
            self.queue.push(self.now + busy, ev);
        }
    }

    /// Account one task's slot occupancy: scheduling overhead + coherence
    /// transfers + roofline execution (+ fault attempts, under a schedule).
    /// Mutates the coherence directory. Returns the slot occupancy and
    /// whether the task aborted (exhausted its retries and must fail over).
    fn start_task(&mut self, t: TaskId, dev: DeviceId) -> (SimTime, bool) {
        let task = self.tasks[t.0];
        let device = self.platform.device(dev);
        let space = device.mem_space;
        let mut busy = SimTime::ZERO;

        if let Some(f) = &mut self.faults {
            f.booked_loss[t.0] = SimTime::ZERO;
        }

        if self.scheduler.is_dynamic() {
            busy += self.platform.sched_overhead;
            self.counters.record_sched(self.platform.sched_overhead);
        }

        for acc in &task.accesses {
            if acc.mode.reads() {
                for tr in self
                    .coherence
                    .acquire_for_read(acc.region.buffer, acc.region.span, space)
                {
                    let dt = transfer_cost(self.platform, tr.from, tr.to, tr.bytes);
                    // A faulty link re-issues the transfer at full cost;
                    // after max_attempts failed tries it goes through
                    // regardless (the retry storm has been paid for).
                    if let Some(f) = &mut self.faults {
                        let mut attempts = 0;
                        while attempts < f.policy.max_attempts {
                            let p = f.schedule.transfer_fault_prob(self.now + busy);
                            if p <= 0.0 || f.rng.next_f64() >= p {
                                break;
                            }
                            f.counters.transfer_faults += 1;
                            f.counters.transfer_retries += 1;
                            f.counters.time_lost += dt;
                            f.booked_loss[t.0] += dt;
                            self.counters.record_transfer(tr.bytes, dt);
                            if let Some(trace) = &mut self.trace {
                                trace.events.push(TraceEvent::TransferRetry {
                                    from: tr.from,
                                    to: tr.to,
                                    bytes: tr.bytes,
                                    start: self.now + busy,
                                    end: self.now + busy + dt,
                                });
                            }
                            busy += dt;
                            attempts += 1;
                        }
                    }
                    if let Some(trace) = &mut self.trace {
                        trace.events.push(TraceEvent::Transfer {
                            from: tr.from,
                            to: tr.to,
                            bytes: tr.bytes,
                            start: self.now + busy,
                            end: self.now + busy + dt,
                        });
                    }
                    busy += dt;
                    self.counters.record_transfer(tr.bytes, dt);
                }
            }
        }

        let profile = &self.program.kernels[task.kernel.0].profile;
        let base_exec = device.exec_time_weighted(profile, task.items, task.cost_scale);
        let mut exec = base_exec;
        let mut aborted = false;
        if let Some(f) = &mut self.faults {
            let max = f.policy.max_attempts.max(1);
            let mut attempt: u32 = 1;
            loop {
                let at = self.now + busy;
                let this_exec = scale_time(base_exec, f.schedule.throttle_factor(dev, at));
                let p = f.schedule.task_fault_prob(dev, at);
                let failed = p > 0.0 && f.rng.next_f64() < p;
                if !failed {
                    exec = this_exec;
                    busy += this_exec;
                    break;
                }
                // The attempt runs to completion, then is detected failed.
                f.counters.task_faults += 1;
                f.counters.time_lost += this_exec;
                f.booked_loss[t.0] += this_exec;
                busy += this_exec;
                if let Some(trace) = &mut self.trace {
                    trace.events.push(TraceEvent::TaskFault {
                        task: t,
                        dev,
                        attempt,
                        at: self.now + busy,
                    });
                }
                if attempt >= max {
                    let has_failover_target = !f.failed_over[t.0]
                        && self
                            .platform
                            .devices
                            .iter()
                            .any(|d| !f.dead[d.id.0] && d.id != dev);
                    if has_failover_target {
                        aborted = true;
                    } else {
                        // Safe mode: one final fault-free attempt
                        // guarantees termination on the last resort.
                        let final_exec =
                            scale_time(base_exec, f.schedule.throttle_factor(dev, self.now + busy));
                        exec = final_exec;
                        busy += final_exec;
                        f.counters.safe_mode_tasks += 1;
                    }
                    break;
                }
                let bo = f.policy.backoff_for(attempt);
                f.counters.task_retries += 1;
                f.counters.backoff_time += bo;
                f.counters.time_lost += bo;
                f.booked_loss[t.0] += bo;
                busy += bo;
                attempt += 1;
            }
        } else {
            busy += exec;
        }

        if aborted {
            // Nothing was produced: no writes land, no work is recorded —
            // the slot was simply held for the wasted attempts.
            self.counters.devices[dev.0].busy += busy;
            self.busy_of[t.0] = busy;
            if let Some(f) = &mut self.faults {
                f.recorded[t.0] = false;
            }
            return (busy, true);
        }

        for acc in &task.accesses {
            if acc.mode.writes() {
                self.coherence
                    .record_write(acc.region.buffer, acc.region.span, space);
            }
        }

        self.counters.record_task(dev, task.items, busy);
        let ks = &mut self.per_kernel[task.kernel.0];
        ks.items_per_device[dev.0] += task.items;
        ks.tasks_per_device[dev.0] += 1;
        self.busy_of[t.0] = busy;
        self.exec_of[t.0] = exec;
        if let Some(f) = &mut self.faults {
            f.recorded[t.0] = true;
        }
        if let Some(trace) = &mut self.trace {
            trace.events.push(TraceEvent::Task {
                task: t,
                kernel: task.kernel,
                dev,
                items: task.items,
                start: self.now,
                end: self.now + busy,
            });
        }
        (busy, false)
    }

    fn on_task_done(&mut self, t: TaskId, dev: DeviceId) {
        self.completed[t.0] = true;
        self.free_slots[dev.0] += 1;
        self.dev_last_done[dev.0] = self.dev_last_done[dev.0].max(self.now);
        let task = self.tasks[t.0];
        let suppress = if let Some(f) = &mut self.faults {
            f.in_flight[t.0] = false;
            f.suppress_complete[t.0]
        } else {
            false
        };
        if !suppress {
            self.scheduler.on_complete(
                t,
                task.kernel,
                dev,
                task.items,
                self.busy_of[t.0],
                self.exec_of[t.0],
                self.now,
            );
        }

        // Release successors whose dependences are now satisfied. Only
        // successors in the *active* epoch become ready (later epochs wait
        // for their taskwait barrier; `activate_epoch` re-scans them). A
        // successor that is already placed (queued, in flight, or completed
        // — possible only when a dropout re-armed this dependence while the
        // consumer's standing result was left alone) must not be re-bound.
        let succs = self.graph.succs[t.0].clone();
        for s in succs {
            self.remaining_preds[s.0] -= 1;
            if self.remaining_preds[s.0] == 0
                && self.graph.epoch_of[s.0] == self.cur_epoch
                && self.placements[s.0].is_none()
            {
                self.make_ready(s);
            }
        }

        self.epoch_remaining -= 1;
        if self.epoch_remaining == 0 {
            self.start_flush();
        }
        self.dispatch_all();
    }

    /// Retry exhaustion on a live device: free the slot and fail the task
    /// over to the fallback survivor (forced placement — the scheduler is
    /// bypassed and will not be told about the eventual completion).
    fn on_task_aborted(&mut self, t: TaskId, dev: DeviceId) {
        self.free_slots[dev.0] += 1;
        self.dev_last_done[dev.0] = self.dev_last_done[dev.0].max(self.now);
        let target = {
            let f = self
                .faults
                .as_mut()
                .expect("aborts only occur under faults");
            f.in_flight[t.0] = false;
            f.failed_over[t.0] = true;
            f.suppress_complete[t.0] = true;
            f.counters.failovers += 1;
            fallback_device(self.platform, &f.dead, Some(dev))
        };
        if let Some(trace) = &mut self.trace {
            trace.events.push(TraceEvent::Failover {
                task: t,
                from: dev,
                to: target,
                at: self.now,
            });
        }
        self.placements[t.0] = Some(target);
        self.dev_queues[target.0].push_back(t);
        self.dispatch_all();
    }

    /// Permanent device failure. Kills the device's queued and in-flight
    /// work, re-executes its uncommitted completions of the open epoch
    /// (their results lived in the dead memory space), restores lost data
    /// from the host's epoch checkpoint, and re-binds everything to the
    /// survivors. Committed epochs (barrier reached) are never touched.
    fn on_device_dropout(&mut self, dev: DeviceId) {
        if dev.0 == 0 {
            return; // the host is the last resort and cannot die
        }
        {
            let f = self
                .faults
                .as_mut()
                .expect("dropouts only occur under faults");
            if f.dead[dev.0] {
                return;
            }
            f.dead[dev.0] = true;
            f.counters.device_dropouts += 1;
        }
        self.free_slots[dev.0] = 0;
        if let Some(trace) = &mut self.trace {
            trace
                .events
                .push(TraceEvent::DeviceDropout { dev, at: self.now });
        }

        // With the epoch's barrier already reached (flush in flight), the
        // epoch is committed: its data is home — or racing down the link,
        // which we let win — and nothing needs re-execution.
        let epoch_open = self.epoch_remaining > 0;

        // 1. Queued (bound, not yet started) work dies with its queue.
        let drained: Vec<TaskId> = self.dev_queues[dev.0].drain(..).collect();

        // 2. In-flight work is killed: invalidate its completion event and
        // take back the accounting recorded at dispatch.
        let killed: Vec<TaskId> = (0..self.tasks.len())
            .map(TaskId)
            .filter(|t| {
                self.placements[t.0] == Some(dev)
                    && self.faults.as_ref().is_some_and(|f| f.in_flight[t.0])
            })
            .collect();
        for &t in &killed {
            let task = self.tasks[t.0];
            let (was_recorded, lost) = {
                let f = self.faults.as_mut().unwrap();
                f.gen[t.0] += 1;
                f.in_flight[t.0] = false;
                // The dispatch's failed attempts, backoff and transfer
                // retries were already booked at dispatch; charge only the
                // rest of the discarded span.
                let span = self.now.saturating_sub(f.started_at[t.0]);
                (f.recorded[t.0], span.saturating_sub(f.booked_loss[t.0]))
            };
            self.faults.as_mut().unwrap().counters.time_lost += lost;
            let c = &mut self.counters.devices[dev.0];
            c.busy = c.busy.saturating_sub(self.busy_of[t.0]);
            if was_recorded {
                c.tasks -= 1;
                c.items -= task.items;
                let ks = &mut self.per_kernel[task.kernel.0];
                ks.items_per_device[dev.0] -= task.items;
                ks.tasks_per_device[dev.0] -= 1;
            }
        }

        // 3. Uncommitted completions of the open epoch that ran here must
        // re-execute: their outputs existed only in the dead memory.
        let resets: Vec<TaskId> = if epoch_open {
            self.epochs[self.cur_epoch]
                .iter()
                .copied()
                .filter(|t| self.completed[t.0] && self.placements[t.0] == Some(dev))
                .collect()
        } else {
            Vec::new()
        };
        for &t in &resets {
            self.completed[t.0] = false;
            self.epoch_remaining += 1;
            let task = self.tasks[t.0];
            let c = &mut self.counters.devices[dev.0];
            c.tasks -= 1;
            c.items -= task.items;
            c.busy = c.busy.saturating_sub(self.busy_of[t.0]);
            let ks = &mut self.per_kernel[task.kernel.0];
            ks.items_per_device[dev.0] -= task.items;
            ks.tasks_per_device[dev.0] -= 1;
            let f = self.faults.as_mut().unwrap();
            f.counters.reexecutions += 1;
            // As with kills, the fault loss inside `busy_of` was already
            // booked at dispatch.
            f.counters.time_lost += self.busy_of[t.0].saturating_sub(f.booked_loss[t.0]);
        }
        // Everything the dropout un-ran loses its placement: from here on
        // "placed" again means queued, in flight, or completed.
        for &t in drained.iter().chain(&killed).chain(&resets) {
            self.placements[t.0] = None;
        }
        // Re-arm the dependences the resets had satisfied. Every consumer
        // regains an unsatisfied dependence — the reset producer's
        // re-completion will decrement it again — but only consumers that
        // have not run yet go back to unready: a successor that already
        // started read the data while it was still valid, so its result
        // stands (the placement guard in `on_task_done` keeps it from
        // being re-bound when the count returns to zero).
        for &t in &resets {
            for s in self.graph.succs[t.0].clone() {
                let ran =
                    self.completed[s.0] || self.faults.as_ref().is_some_and(|f| f.in_flight[s.0]);
                if !ran && self.placements[s.0].is_some() {
                    // A bound-but-unstarted consumer goes back to unready.
                    for q in &mut self.dev_queues {
                        q.retain(|&x| x != s);
                    }
                    self.placements[s.0] = None;
                }
                self.remaining_preds[s.0] += 1;
            }
        }

        // 4. Data that lived only in the dead space is recovered from the
        // host's epoch checkpoint.
        let dead_space = self.platform.device(dev).mem_space;
        self.coherence.drop_space(dead_space);

        // 5. Re-bind everything that is still dependency-free, in TaskId
        // order (deterministic). Tasks whose dependences the re-arm put
        // back wait for their producers to re-complete.
        let mut requeue: Vec<TaskId> = killed
            .into_iter()
            .chain(drained)
            .chain(resets)
            .filter(|t| self.remaining_preds[t.0] == 0)
            .collect();
        requeue.sort_unstable();
        requeue.dedup();
        for t in requeue {
            self.make_ready(t);
        }
        self.dispatch_all();
    }

    fn on_epoch_flushed(&mut self) {
        self.cur_epoch += 1;
        if self.cur_epoch < self.epochs.len() {
            self.activate_epoch();
        }
    }

    /// Flush device data home at a taskwait / end of program.
    ///
    /// Each device's write-back begins when *that device* finished its last
    /// task of the epoch — the runtime drains a device's dirty data
    /// asynchronously while other devices are still computing — and the
    /// links drain in parallel. The barrier completes when every write-back
    /// has landed.
    fn start_flush(&mut self) {
        let transfers = self.coherence.flush_and_invalidate();
        // Serialise per source space; spaces drain in parallel. Each
        // device's write-back starts when that device finished its last
        // task of the epoch.
        let mut cursors: std::collections::BTreeMap<usize, SimTime> =
            std::collections::BTreeMap::new();
        let mut flush_start = self.now;
        let mut flush_end = self.now;
        for tr in transfers {
            let dt = transfer_cost(self.platform, tr.from, tr.to, tr.bytes);
            self.counters.record_transfer(tr.bytes, dt);
            let start_at = self
                .platform
                .devices
                .iter()
                .filter(|d| d.mem_space == tr.from)
                .map(|d| self.dev_last_done[d.id.0])
                .max()
                .unwrap_or(self.now);
            let cursor = cursors.entry(tr.from.0).or_insert(start_at);
            let t0 = *cursor;
            *cursor = t0 + dt;
            flush_start = flush_start.min(t0);
            flush_end = flush_end.max(*cursor);
            if let Some(trace) = &mut self.trace {
                trace.events.push(TraceEvent::Transfer {
                    from: tr.from,
                    to: tr.to,
                    bytes: tr.bytes,
                    start: t0,
                    end: t0 + dt,
                });
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.events.push(TraceEvent::Flush {
                epoch: self.flushes_done,
                start: flush_start.min(self.now),
                end: flush_end,
            });
        }
        self.flushes_done += 1;
        self.queue.push(flush_end, Ev::EpochFlushed);
    }
}

fn transfer_cost(platform: &Platform, from: MemSpaceId, to: MemSpaceId, bytes: u64) -> SimTime {
    if from == to {
        return SimTime::ZERO;
    }
    // Device-to-device moves route through the host: two link hops.
    if !from.is_host() && !to.is_host() {
        return platform.transfer_time(from, MemSpaceId::HOST, bytes)
            + platform.transfer_time(MemSpaceId::HOST, to, bytes);
    }
    platform.transfer_time(from, to, bytes)
}
