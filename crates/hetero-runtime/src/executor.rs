//! The virtual-time executor.
//!
//! Drives a [`Program`] over a [`Platform`] under a [`Scheduler`], producing
//! a [`RunReport`]. The execution model mirrors the OmpSs runtime the paper
//! uses:
//!
//! * task instances become *ready* when their data dependences are
//!   satisfied and their taskwait epoch is active;
//! * ready instances are *bound* to a device by the scheduler and wait in
//!   that device's FIFO queue for a free slot (a CPU hardware thread, or
//!   the GPU);
//! * dispatching an instance first satisfies coherence (host↔device
//!   transfers for its read regions — serialised with the device's work,
//!   as in a single-command-queue OpenCL device), then executes under the
//!   device's roofline model;
//! * dynamic policies pay the platform's per-decision scheduling overhead
//!   per instance; pinned (static) plans do not;
//! * each `taskwait` waits for all prior instances, flushes device-resident
//!   data to the host and invalidates device copies;
//! * a final implicit flush returns all results to the host — the paper's
//!   "one device-to-host data transfer after the last kernel finishes".

use crate::coherence::CoherenceDir;
use crate::graph::TaskGraph;
use crate::program::{Program, TaskDesc, TaskId};
use crate::scheduler::{BindCtx, Scheduler};
use crate::stats::{KernelStats, RunReport};
use crate::trace::{Trace, TraceEvent};
use hetero_platform::{
    DeviceId, EventQueue, MemSpaceId, Platform, PlatformCounters, SimTime,
};
use std::collections::VecDeque;

enum Ev {
    TaskDone { task: TaskId, dev: DeviceId },
    EpochFlushed,
}

/// Simulate `program` on `platform` under `scheduler`.
pub fn simulate(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
) -> RunReport {
    Sim::new(program, platform, scheduler, false).run().0
}

/// [`simulate`], additionally recording an execution [`Trace`].
pub fn simulate_traced(
    program: &Program,
    platform: &Platform,
    scheduler: &mut dyn Scheduler,
) -> (RunReport, Trace) {
    let (report, trace) = Sim::new(program, platform, scheduler, true).run();
    (report, trace.expect("tracing was enabled"))
}

struct Sim<'a> {
    program: &'a Program,
    platform: &'a Platform,
    scheduler: &'a mut dyn Scheduler,
    graph: TaskGraph,
    tasks: Vec<&'a TaskDesc>,
    epochs: Vec<Vec<TaskId>>,

    now: SimTime,
    queue: EventQueue<Ev>,
    coherence: CoherenceDir,
    counters: PlatformCounters,
    per_kernel: Vec<KernelStats>,

    remaining_preds: Vec<usize>,
    completed: Vec<bool>,
    busy_of: Vec<SimTime>,
    exec_of: Vec<SimTime>,
    placements: Vec<Option<DeviceId>>,
    dev_queues: Vec<VecDeque<TaskId>>,
    free_slots: Vec<usize>,
    /// Completion time of the last task finished on each device, used to
    /// start the taskwait flush of a device's data as soon as that device
    /// is done (overlapping with other devices still computing, as the
    /// runtime's asynchronous write-back does).
    dev_last_done: Vec<SimTime>,

    cur_epoch: usize,
    epoch_remaining: usize,
    flushes_done: usize,
    trace: Option<Trace>,
}

impl<'a> Sim<'a> {
    fn new(
        program: &'a Program,
        platform: &'a Platform,
        scheduler: &'a mut dyn Scheduler,
        traced: bool,
    ) -> Self {
        let graph = TaskGraph::build(program);
        let tasks: Vec<&TaskDesc> = program
            .tasks()
            .into_iter()
            .map(|(_, t)| t)
            .collect();
        let epochs = program.epochs();
        let n = tasks.len();
        let per_kernel = program
            .kernels
            .iter()
            .map(|k| KernelStats {
                name: k.name.clone(),
                items_per_device: vec![0; platform.devices.len()],
                tasks_per_device: vec![0; platform.devices.len()],
            })
            .collect();
        Sim {
            remaining_preds: graph.preds.iter().map(Vec::len).collect(),
            graph,
            tasks,
            epochs,
            program,
            platform,
            scheduler,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            coherence: CoherenceDir::new(platform.mem_spaces, &program.buffers),
            counters: PlatformCounters::new(platform.devices.len()),
            per_kernel,
            completed: vec![false; n],
            busy_of: vec![SimTime::ZERO; n],
            exec_of: vec![SimTime::ZERO; n],
            placements: vec![None; n],
            dev_queues: platform.devices.iter().map(|_| VecDeque::new()).collect(),
            free_slots: platform
                .devices
                .iter()
                .map(|d| d.spec.kind.slots())
                .collect(),
            dev_last_done: vec![SimTime::ZERO; platform.devices.len()],
            cur_epoch: 0,
            epoch_remaining: 0,
            flushes_done: 0,
            trace: traced.then(Trace::default),
        }
    }

    fn run(mut self) -> (RunReport, Option<Trace>) {
        if self.epochs.is_empty() || self.tasks.is_empty() {
            return self.finish();
        }
        self.activate_epoch();
        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            match ev {
                Ev::TaskDone { task, dev } => self.on_task_done(task, dev),
                Ev::EpochFlushed => self.on_epoch_flushed(),
            }
        }
        assert!(
            self.completed.iter().all(|&c| c),
            "deadlock: not all tasks completed (cyclic program or lost event)"
        );
        self.finish()
    }

    fn finish(self) -> (RunReport, Option<Trace>) {
        let report = RunReport {
            scheduler: self.scheduler.name().to_string(),
            makespan: self.now,
            counters: self.counters,
            per_kernel: self.per_kernel,
            device_is_gpu: self
                .platform
                .devices
                .iter()
                .map(|d| d.spec.kind.is_gpu())
                .collect(),
        };
        (report, self.trace)
    }

    /// Begin the current epoch: bind its dependency-free tasks.
    fn activate_epoch(&mut self) {
        let tasks: Vec<TaskId> = self.epochs[self.cur_epoch].clone();
        self.epoch_remaining = tasks.len();
        if tasks.is_empty() {
            // An empty epoch is just a flush point.
            self.start_flush();
            return;
        }
        for t in tasks {
            if self.remaining_preds[t.0] == 0 {
                self.make_ready(t);
            }
        }
        self.dispatch_all();
    }

    /// Bind a ready task to a device and enqueue it there.
    fn make_ready(&mut self, t: TaskId) {
        let pred_placements: Vec<DeviceId> = self.graph.preds[t.0]
            .iter()
            .map(|p| {
                self.placements[p.0]
                    .expect("predecessor completed, so it must have been placed")
            })
            .collect();
        let task = self.tasks[t.0];
        let coherence = &self.coherence;
        let platform = self.platform;
        let buffers = &self.program.buffers;
        let transfer_estimate = move |dev: DeviceId| -> SimTime {
            let space = platform.device(dev).mem_space;
            let mut total = SimTime::ZERO;
            for acc in &task.accesses {
                if acc.mode.reads() {
                    let bytes =
                        coherence.missing_read_bytes(acc.region.buffer, acc.region.span, space);
                    if bytes > 0 {
                        // Approximation: data arrives from the host.
                        total += platform.transfer_time(MemSpaceId::HOST, space, bytes);
                    }
                }
                if acc.mode.writes() && !space.is_host() {
                    // Data produced off-host must eventually be written
                    // back; charge it to the placement (conservative, as in
                    // a descriptor-based data-movement estimate).
                    let bytes =
                        acc.region.len() * buffers[acc.region.buffer.0].item_bytes;
                    total += platform.transfer_time(space, MemSpaceId::HOST, bytes);
                }
            }
            total
        };
        let dev = self.scheduler.bind(&BindCtx {
            now: self.now,
            platform: self.platform,
            task,
            task_id: t,
            pred_placements: &pred_placements,
            transfer_estimate: &transfer_estimate,
        });
        self.placements[t.0] = Some(dev);
        self.dev_queues[dev.0].push_back(t);
    }

    fn dispatch_all(&mut self) {
        for d in 0..self.dev_queues.len() {
            self.dispatch(DeviceId(d));
        }
    }

    /// Start as many queued tasks on `dev` as free slots allow.
    fn dispatch(&mut self, dev: DeviceId) {
        while self.free_slots[dev.0] > 0 {
            let Some(t) = self.dev_queues[dev.0].pop_front() else {
                break;
            };
            self.free_slots[dev.0] -= 1;
            let busy = self.start_task(t, dev);
            self.queue.push(self.now + busy, Ev::TaskDone { task: t, dev });
        }
    }

    /// Account one task's slot occupancy: scheduling overhead + coherence
    /// transfers + roofline execution. Mutates the coherence directory.
    fn start_task(&mut self, t: TaskId, dev: DeviceId) -> SimTime {
        let task = self.tasks[t.0];
        let device = self.platform.device(dev);
        let space = device.mem_space;
        let mut busy = SimTime::ZERO;

        if self.scheduler.is_dynamic() {
            busy += self.platform.sched_overhead;
            self.counters.record_sched(self.platform.sched_overhead);
        }

        for acc in &task.accesses {
            if acc.mode.reads() {
                for tr in self
                    .coherence
                    .acquire_for_read(acc.region.buffer, acc.region.span, space)
                {
                    let dt = transfer_cost(self.platform, tr.from, tr.to, tr.bytes);
                    if let Some(trace) = &mut self.trace {
                        trace.events.push(TraceEvent::Transfer {
                            from: tr.from,
                            to: tr.to,
                            bytes: tr.bytes,
                            start: self.now + busy,
                            end: self.now + busy + dt,
                        });
                    }
                    busy += dt;
                    self.counters.record_transfer(tr.bytes, dt);
                }
            }
        }
        for acc in &task.accesses {
            if acc.mode.writes() {
                self.coherence
                    .record_write(acc.region.buffer, acc.region.span, space);
            }
        }

        let profile = &self.program.kernels[task.kernel.0].profile;
        let exec = device.exec_time_weighted(profile, task.items, task.cost_scale);
        busy += exec;

        self.counters.record_task(dev, task.items, busy);
        let ks = &mut self.per_kernel[task.kernel.0];
        ks.items_per_device[dev.0] += task.items;
        ks.tasks_per_device[dev.0] += 1;
        self.busy_of[t.0] = busy;
        self.exec_of[t.0] = exec;
        if let Some(trace) = &mut self.trace {
            trace.events.push(TraceEvent::Task {
                task: t,
                kernel: task.kernel,
                dev,
                items: task.items,
                start: self.now,
                end: self.now + busy,
            });
        }
        busy
    }

    fn on_task_done(&mut self, t: TaskId, dev: DeviceId) {
        self.completed[t.0] = true;
        self.free_slots[dev.0] += 1;
        self.dev_last_done[dev.0] = self.dev_last_done[dev.0].max(self.now);
        let task = self.tasks[t.0];
        self.scheduler.on_complete(
            t,
            task.kernel,
            dev,
            task.items,
            self.busy_of[t.0],
            self.exec_of[t.0],
            self.now,
        );

        // Release successors whose dependences are now satisfied. Only
        // successors in the *active* epoch become ready (later epochs wait
        // for their taskwait barrier; `activate_epoch` re-scans them).
        let succs = self.graph.succs[t.0].clone();
        for s in succs {
            self.remaining_preds[s.0] -= 1;
            if self.remaining_preds[s.0] == 0 && self.graph.epoch_of[s.0] == self.cur_epoch {
                self.make_ready(s);
            }
        }

        self.epoch_remaining -= 1;
        if self.epoch_remaining == 0 {
            self.start_flush();
        }
        self.dispatch_all();
    }

    fn on_epoch_flushed(&mut self) {
        self.cur_epoch += 1;
        if self.cur_epoch < self.epochs.len() {
            self.activate_epoch();
        }
    }

    /// Flush device data home at a taskwait / end of program.
    ///
    /// Each device's write-back begins when *that device* finished its last
    /// task of the epoch — the runtime drains a device's dirty data
    /// asynchronously while other devices are still computing — and the
    /// links drain in parallel. The barrier completes when every write-back
    /// has landed.
    fn start_flush(&mut self) {
        let transfers = self.coherence.flush_and_invalidate();
        // Serialise per source space; spaces drain in parallel. Each
        // device's write-back starts when that device finished its last
        // task of the epoch.
        let mut cursors: std::collections::BTreeMap<usize, SimTime> =
            std::collections::BTreeMap::new();
        let mut flush_start = self.now;
        let mut flush_end = self.now;
        for tr in transfers {
            let dt = transfer_cost(self.platform, tr.from, tr.to, tr.bytes);
            self.counters.record_transfer(tr.bytes, dt);
            let start_at = self
                .platform
                .devices
                .iter()
                .filter(|d| d.mem_space == tr.from)
                .map(|d| self.dev_last_done[d.id.0])
                .max()
                .unwrap_or(self.now);
            let cursor = cursors.entry(tr.from.0).or_insert(start_at);
            let t0 = *cursor;
            *cursor = t0 + dt;
            flush_start = flush_start.min(t0);
            flush_end = flush_end.max(*cursor);
            if let Some(trace) = &mut self.trace {
                trace.events.push(TraceEvent::Transfer {
                    from: tr.from,
                    to: tr.to,
                    bytes: tr.bytes,
                    start: t0,
                    end: t0 + dt,
                });
            }
        }
        if let Some(trace) = &mut self.trace {
            trace.events.push(TraceEvent::Flush {
                epoch: self.flushes_done,
                start: flush_start.min(self.now),
                end: flush_end,
            });
        }
        self.flushes_done += 1;
        self.queue.push(flush_end, Ev::EpochFlushed);
    }
}

fn transfer_cost(platform: &Platform, from: MemSpaceId, to: MemSpaceId, bytes: u64) -> SimTime {
    if from == to {
        return SimTime::ZERO;
    }
    // Device-to-device moves route through the host: two link hops.
    if !from.is_host() && !to.is_host() {
        return platform.transfer_time(from, MemSpaceId::HOST, bytes)
            + platform.transfer_time(MemSpaceId::HOST, to, bytes);
    }
    platform.transfer_time(from, to, bytes)
}
