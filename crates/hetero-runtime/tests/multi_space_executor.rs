//! Executor semantics on a three-memory-space platform (CPU + two
//! accelerators): per-link transfer accounting, device-to-device routing
//! through the host, and parallel flush draining.

use hetero_platform::{
    DeviceId, DeviceKind, DeviceSpec, KernelProfile, LinkSpec, Platform, SimTime,
};
use hetero_runtime::{simulate, Access, PinnedScheduler, Program, Region};

fn two_gpu_platform() -> Platform {
    let gpu = |name: &str| DeviceSpec {
        name: name.into(),
        kind: DeviceKind::Gpu {
            sms: 4,
            warp_size: 32,
        },
        frequency_ghz: 1.0,
        peak_gflops_sp: 400.0,
        peak_gflops_dp: 200.0,
        mem_bandwidth_gbs: 200.0,
        mem_capacity_gb: 4.0,
        launch_overhead: SimTime::ZERO,
    };
    Platform::builder()
        .cpu(DeviceSpec {
            name: "cpu".into(),
            kind: DeviceKind::Cpu {
                cores: 4,
                threads: 4,
            },
            frequency_ghz: 1.0,
            peak_gflops_sp: 100.0,
            peak_gflops_dp: 50.0,
            mem_bandwidth_gbs: 50.0,
            mem_capacity_gb: 16.0,
            launch_overhead: SimTime::ZERO,
        })
        .accelerator(gpu("gpu-a"), LinkSpec::new(10.0, SimTime::ZERO))
        .accelerator(gpu("gpu-b"), LinkSpec::new(5.0, SimTime::ZERO))
        .sched_overhead(SimTime::ZERO)
        .build()
}

const GPU_A: DeviceId = DeviceId(1);
const GPU_B: DeviceId = DeviceId(2);

#[test]
fn device_to_device_read_routes_through_host() {
    // gpu-a writes x; gpu-b reads it without any intervening taskwait:
    // the data must hop gpu-a -> host -> gpu-b (two transfers of 4000 B),
    // plus the final flush of y (gpu-b's output) and of x (still dirty on
    // gpu-a, since a d2d read leaves the host stale for... no — routing
    // through the host validates the host copy, so only y flushes).
    let mut b = Program::builder();
    let x = b.buffer("x", 1000, 4);
    let y = b.buffer("y", 1000, 4);
    let k = b.kernel("k", KernelProfile::compute_only(1e6));
    b.submit_pinned(k, 1000, vec![Access::write(Region::new(x, 0, 1000))], GPU_A);
    b.submit_pinned(
        k,
        1000,
        vec![
            Access::read(Region::new(x, 0, 1000)),
            Access::write(Region::new(y, 0, 1000)),
        ],
        GPU_B,
    );
    let p = b.build();
    let platform = two_gpu_platform();
    let r = simulate(&p, &platform, &mut PinnedScheduler);
    // Transfers: x gpu-a->gpu-b counted as one logical transfer (routed via
    // the host, costed as two hops), then the final flush brings y home.
    // x became host-valid through the routed read... the coherence layer
    // keeps the host copy stale on a pure d2d route, so x also flushes.
    assert!(
        r.counters.transfers.count >= 2,
        "transfers: {:?}",
        r.counters.transfers
    );
    // The d2d hop is costed over both links: 4000B at 10GB/s + 4000B at
    // 5 GB/s = 0.4us + 0.8us = 1.2us of transfer time at minimum.
    assert!(r.counters.transfers.time >= SimTime::from_nanos(1200));
}

#[test]
fn flushes_from_two_devices_drain_in_parallel() {
    // Both GPUs hold dirty halves; the taskwait flush uses both links
    // concurrently, so the flush window is max(t_a, t_b), not the sum.
    let mut b = Program::builder();
    let x = b.buffer("x", 2_000_000, 4); // 4 MB halves
    let k = b.kernel("k", KernelProfile::compute_only(1.0));
    b.submit_pinned(
        k,
        1_000_000,
        vec![Access::write(Region::new(x, 0, 1_000_000))],
        GPU_A,
    );
    b.submit_pinned(
        k,
        1_000_000,
        vec![Access::write(Region::new(x, 1_000_000, 2_000_000))],
        GPU_B,
    );
    let p = b.build();
    let platform = two_gpu_platform();
    let r = simulate(&p, &platform, &mut PinnedScheduler);
    // Exec: 1e6 items x 1 flop / 400 GF = 2.5 us each (parallel devices).
    // Flush: 4 MB at 10 GB/s = 400 us (gpu-a) and at 5 GB/s = 800 us
    // (gpu-b), drained in parallel -> makespan ~= 2.5us + 800us, NOT
    // 2.5 + 1200.
    let ms = r.makespan.as_micros_f64();
    assert!(
        (800.0..1000.0).contains(&ms),
        "makespan {ms}us suggests serialised flush"
    );
    assert_eq!(r.counters.transfers.count, 2);
}

#[test]
fn three_way_pinned_split_uses_all_devices() {
    let mut b = Program::builder();
    let x = b.buffer("x", 3000, 4);
    let k = b.kernel("k", KernelProfile::compute_only(1e6));
    b.submit_pinned(
        k,
        1000,
        vec![Access::read_write(Region::new(x, 0, 1000))],
        DeviceId(0),
    );
    b.submit_pinned(
        k,
        1000,
        vec![Access::read_write(Region::new(x, 1000, 2000))],
        GPU_A,
    );
    b.submit_pinned(
        k,
        1000,
        vec![Access::read_write(Region::new(x, 2000, 3000))],
        GPU_B,
    );
    let p = b.build();
    let platform = two_gpu_platform();
    let r = simulate(&p, &platform, &mut PinnedScheduler);
    for d in 0..3 {
        assert_eq!(r.counters.devices[d].tasks, 1, "device {d}");
        assert_eq!(r.counters.devices[d].items, 1000);
    }
    // Each accelerator pays an upload of its third and a flush download.
    assert_eq!(r.counters.transfers.count, 4);
}
