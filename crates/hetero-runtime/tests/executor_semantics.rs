//! Virtual-time executor semantics, validated on the round-number
//! `Platform::test_small()` (CPU: 4 slots, 100 GFLOPS, 50 GB/s aggregate;
//! GPU: 1 slot, 400 GFLOPS, 200 GB/s; link 10 GB/s, zero latencies/overheads).

use hetero_platform::{DeviceId, KernelProfile, Platform, SimTime};
use hetero_runtime::{
    simulate, Access, DepScheduler, PerfScheduler, PinnedScheduler, Program, Region,
};

const CPU: DeviceId = DeviceId(0);
const GPU: DeviceId = DeviceId(1);

/// 1e9 flops/item => 1 item = 1s on a 1 GFLOPS slot. On test_small:
/// CPU slot = 25 GFLOPS => 40ms/item; GPU = 400 GFLOPS => 2.5ms/item.
fn compute_kernel() -> KernelProfile {
    KernelProfile::compute_only(1e9)
}

#[test]
fn single_cpu_task_runs_for_roofline_time() {
    let mut b = Program::builder();
    let x = b.buffer("x", 10, 4);
    let k = b.kernel("k", compute_kernel());
    b.submit_pinned(k, 10, vec![Access::read_write(Region::new(x, 0, 10))], CPU);
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    // 10 items * 40ms = 400ms; no transfers (host data), no flush needed.
    assert_eq!(r.makespan, SimTime::from_millis(400));
    assert_eq!(r.counters.transfers.count, 0);
    assert_eq!(r.counters.sched_decisions, 0);
}

#[test]
fn gpu_task_pays_transfers_in_and_flush_out() {
    let mut b = Program::builder();
    // 10 items x 4 bytes = 40 B in; out buffer 10 items x 4 B = 40 B.
    let x = b.buffer("x", 10, 4);
    let y = b.buffer("y", 10, 4);
    let k = b.kernel("k", compute_kernel());
    b.submit_pinned(
        k,
        10,
        vec![
            Access::read(Region::new(x, 0, 10)),
            Access::write(Region::new(y, 0, 10)),
        ],
        GPU,
    );
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    // Upload 40B at 10GB/s = 4ns; exec 10 * 2.5ms; flush 40B down = 4ns.
    let expect = SimTime::from_nanos(4) + SimTime::from_millis(25) + SimTime::from_nanos(4);
    assert_eq!(r.makespan, expect);
    assert_eq!(r.counters.transfers.count, 2);
    assert_eq!(r.counters.transfers.bytes, 80);
}

#[test]
fn independent_cpu_tasks_run_concurrently_on_slots() {
    let mut b = Program::builder();
    let x = b.buffer("x", 40, 4);
    let k = b.kernel("k", compute_kernel());
    for i in 0..4u64 {
        b.submit_pinned(
            k,
            10,
            vec![Access::read_write(Region::new(x, i * 10, (i + 1) * 10))],
            CPU,
        );
    }
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    // 4 slots, 4 tasks of 400ms each => 400ms, not 1600ms.
    assert_eq!(r.makespan, SimTime::from_millis(400));
}

#[test]
fn fifth_task_waits_for_a_free_slot() {
    let mut b = Program::builder();
    let x = b.buffer("x", 50, 4);
    let k = b.kernel("k", compute_kernel());
    for i in 0..5u64 {
        b.submit_pinned(
            k,
            10,
            vec![Access::read_write(Region::new(x, i * 10, (i + 1) * 10))],
            CPU,
        );
    }
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    assert_eq!(r.makespan, SimTime::from_millis(800));
}

#[test]
fn dependent_tasks_serialize() {
    let mut b = Program::builder();
    let x = b.buffer("x", 10, 4);
    let k = b.kernel("k", compute_kernel());
    for _ in 0..3 {
        b.submit_pinned(k, 10, vec![Access::read_write(Region::new(x, 0, 10))], CPU);
    }
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    assert_eq!(r.makespan, SimTime::from_millis(1200));
}

#[test]
fn taskwait_flush_forces_reupload_each_iteration() {
    // SK-Loop shape: the same GPU task iterated with a taskwait per
    // iteration re-uploads its data every time (flush invalidates).
    let iters = 4;
    let mut b = Program::builder();
    let x = b.buffer("x", 1000, 4);
    let k = b.kernel("k", compute_kernel());
    for _ in 0..iters {
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 0, 1000))],
            GPU,
        );
        b.taskwait();
    }
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    // Each iteration: 4000B up + 4000B down.
    assert_eq!(r.counters.transfers.count, 2 * iters);
    assert_eq!(r.counters.transfers.bytes, 2 * iters * 4000);
}

#[test]
fn no_sync_keeps_data_on_device_single_round_trip() {
    // SP-Unified shape: chained kernels on the GPU with no taskwait incur
    // exactly one upload and one final flush download.
    let mut b = Program::builder();
    let x = b.buffer("x", 1000, 4);
    let y = b.buffer("y", 1000, 4);
    let k1 = b.kernel("k1", compute_kernel());
    let k2 = b.kernel("k2", compute_kernel());
    b.submit_pinned(
        k1,
        1000,
        vec![
            Access::read(Region::new(x, 0, 1000)),
            Access::write(Region::new(y, 0, 1000)),
        ],
        GPU,
    );
    b.submit_pinned(
        k2,
        1000,
        vec![Access::read_write(Region::new(y, 0, 1000))],
        GPU,
    );
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    // One upload of x (4000B), no movement of y between kernels, one
    // download of y (4000B) at the final flush. x was never dirtied.
    assert_eq!(r.counters.transfers.count, 2);
    assert_eq!(r.counters.transfers.bytes, 8000);
}

#[test]
fn dynamic_scheduling_charges_overhead() {
    let mut spec = Platform::test_small();
    spec.sched_overhead = SimTime::from_micros(10);
    let mut b = Program::builder();
    let x = b.buffer("x", 40, 4);
    let k = b.kernel("k", compute_kernel());
    for i in 0..4u64 {
        b.submit_dynamic(
            k,
            10,
            vec![Access::read_write(Region::new(x, i * 10, (i + 1) * 10))],
        );
    }
    let p = b.build();
    let mut sched = DepScheduler::new(&spec);
    let r = simulate(&p, &spec, &mut sched);
    assert_eq!(r.counters.sched_decisions, 4);
    assert_eq!(r.counters.sched_overhead, SimTime::from_micros(40));
    // DP-Dep round-robin over 5 slots: first 4 instances land on CPU slots.
    assert_eq!(r.counters.devices[GPU.0].tasks, 0);
}

#[test]
fn dep_scheduler_chain_affinity_avoids_transfers() {
    // Partition a buffer in two; iterate a dependent kernel over each half
    // without sync. DP-Dep keeps each chain on its first device.
    let mut b = Program::builder();
    let x = b.buffer("x", 2000, 4);
    let k = b.kernel("k", compute_kernel());
    for _ in 0..3 {
        for (s, e) in [(0u64, 1000u64), (1000, 2000)] {
            b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(x, s, e))]);
        }
    }
    let p = b.build();
    let platform = Platform::test_small();
    let mut sched = DepScheduler::new(&platform);
    let r = simulate(&p, &platform, &mut sched);
    // Round-robin puts both chains on CPU slots 0 and 1; chains never move,
    // so zero transfers happen at all.
    assert_eq!(r.counters.transfers.count, 0);
}

#[test]
fn perf_scheduler_finds_the_faster_device() {
    // A compute-heavy kernel with many instances: after warm-up DP-Perf
    // should route the bulk of instances to the 16x-faster GPU.
    let mut b = Program::builder();
    let n = 32_000u64;
    let x = b.buffer("x", n, 4);
    let k = b.kernel("k", compute_kernel());
    for (s, e) in hetero_runtime::split_even(n, 32) {
        b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(x, s, e))]);
    }
    let p = b.build();
    let platform = Platform::test_small();
    let r = hetero_runtime::simulate_dp_perf_warmed(&p, &platform);
    assert!(
        r.gpu_item_share() > 0.7,
        "expected GPU-dominant placement, got {}",
        r.gpu_item_share()
    );
    // And DP-Perf beats DP-Dep on this workload (Proposition 1).
    let mut dep = DepScheduler::new(&platform);
    let r_dep = simulate(&p, &platform, &mut dep);
    assert!(r.makespan < r_dep.makespan);
}

#[test]
fn perf_scheduler_plain_run_profiles_each_device() {
    let mut b = Program::builder();
    let n = 6400u64;
    let x = b.buffer("x", n, 4);
    let k = b.kernel("k", compute_kernel());
    for (s, e) in hetero_runtime::split_even(n, 8) {
        b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(x, s, e))]);
    }
    let p = b.build();
    let platform = Platform::test_small();
    let mut sched = PerfScheduler::new(&platform);
    let r = simulate(&p, &platform, &mut sched);
    // Warm-up guarantees both devices saw at least 3 instances.
    assert!(r.counters.devices[CPU.0].tasks >= 3);
    assert!(r.counters.devices[GPU.0].tasks >= 3);
}

#[test]
fn makespan_at_least_critical_path_and_at_most_serial() {
    let mut b = Program::builder();
    let x = b.buffer("x", 100, 4);
    let k = b.kernel("k", compute_kernel());
    for (s, e) in hetero_runtime::split_even(100, 10) {
        b.submit_pinned(
            k,
            e - s,
            vec![Access::read_write(Region::new(x, s, e))],
            CPU,
        );
    }
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    let per_task = SimTime::from_millis(400);
    assert!(r.makespan >= per_task);
    assert!(r.makespan <= per_task * 10);
    // 10 tasks over 4 slots => ceil(10/4) = 3 waves.
    assert_eq!(r.makespan, per_task * 3);
}

#[test]
fn empty_program_is_instant() {
    let p = Program::builder().build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    assert_eq!(r.makespan, SimTime::ZERO);
}

#[test]
fn report_partitioning_ratio_matches_pinning() {
    let mut b = Program::builder();
    let x = b.buffer("x", 100, 4);
    let k = b.kernel("k", compute_kernel());
    b.submit_pinned(k, 30, vec![Access::read_write(Region::new(x, 0, 30))], GPU);
    b.submit_pinned(
        k,
        70,
        vec![Access::read_write(Region::new(x, 30, 100))],
        CPU,
    );
    let p = b.build();
    let r = simulate(&p, &Platform::test_small(), &mut PinnedScheduler);
    assert!((r.gpu_item_share() - 0.3).abs() < 1e-12);
    assert!((r.cpu_item_share() - 0.7).abs() < 1e-12);
}

#[test]
fn determinism_same_inputs_same_report() {
    let build = || {
        let mut b = Program::builder();
        let x = b.buffer("x", 5000, 4);
        let k = b.kernel("k", compute_kernel());
        for (s, e) in hetero_runtime::split_even(5000, 16) {
            b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(x, s, e))]);
        }
        b.build()
    };
    let platform = Platform::test_small();
    let r1 = simulate(&build(), &platform, &mut DepScheduler::new(&platform));
    let r2 = simulate(&build(), &platform, &mut DepScheduler::new(&platform));
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.counters, r2.counters);
}

#[test]
fn traced_run_matches_untraced_report() {
    let mut b = Program::builder();
    let x = b.buffer("x", 4000, 4);
    let k = b.kernel("k", compute_kernel());
    for (s, e) in hetero_runtime::split_even(4000, 8) {
        b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(x, s, e))]);
    }
    b.taskwait();
    for (s, e) in hetero_runtime::split_even(4000, 8) {
        b.submit_dynamic(k, e - s, vec![Access::read_write(Region::new(x, s, e))]);
    }
    let p = b.build();
    let platform = Platform::test_small();

    let plain = {
        let mut s = hetero_runtime::DepScheduler::new(&platform);
        hetero_runtime::simulate(&p, &platform, &mut s)
    };
    let (traced, trace) = {
        let mut s = hetero_runtime::DepScheduler::new(&platform);
        hetero_runtime::simulate_traced(&p, &platform, &mut s)
    };
    assert_eq!(plain.makespan, traced.makespan);
    assert_eq!(plain.counters, traced.counters);

    // Trace consistency: one task event per instance, spans within the
    // makespan, per-device busy matches the counters.
    let task_events = trace.tasks().count();
    assert_eq!(task_events, p.task_count());
    for (_, _, start, end) in trace.tasks() {
        assert!(start <= end);
        assert!(*end <= traced.makespan);
    }
    for d in 0..platform.devices.len() {
        assert_eq!(
            trace.device_busy(DeviceId(d)),
            traced.counters.devices[d].busy,
            "device {d}"
        );
    }

    // A flush event per taskwait plus the final implicit one.
    let flushes = trace
        .events
        .iter()
        .filter(|e| matches!(e, hetero_runtime::TraceEvent::Flush { .. }))
        .count();
    assert_eq!(flushes, 2);

    // The gantt renders one row per device plus an axis.
    let g = trace.gantt(&platform, 40);
    assert_eq!(g.lines().count(), platform.devices.len() + 1);
}
