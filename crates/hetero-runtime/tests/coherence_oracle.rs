//! Model-checking the coherence directory against a naive per-item oracle.
//!
//! The interval-based [`hetero_runtime::CoherenceDir`] must behave exactly
//! like the obvious (but slow) model that tracks, for every single item,
//! the set of memory spaces holding a valid copy. Random operation
//! sequences are replayed against both and every observable compared:
//! validity queries, transfer volumes, and flush outputs.

use hetero_platform::MemSpaceId;
use hetero_runtime::{BufferDesc, BufferId, CoherenceDir, Interval};
use proptest::prelude::*;

const ITEMS: u64 = 64;
const SPACES: usize = 3;

/// The per-item oracle.
struct Oracle {
    /// valid[space][item]
    valid: Vec<Vec<bool>>,
}

impl Oracle {
    fn new() -> Self {
        let mut valid = vec![vec![false; ITEMS as usize]; SPACES];
        valid[0] = vec![true; ITEMS as usize];
        Oracle { valid }
    }

    /// Items of `[s, e)` missing in `space` (for read), then mark valid.
    fn acquire_for_read(&mut self, s: u64, e: u64, space: usize) -> u64 {
        let mut missing = 0;
        for i in s..e {
            if !self.valid[space][i as usize] {
                missing += 1;
                self.valid[space][i as usize] = true;
            }
        }
        missing
    }

    fn record_write(&mut self, s: u64, e: u64, space: usize) {
        for i in s..e {
            for sp in 0..SPACES {
                self.valid[sp][i as usize] = sp == space;
            }
        }
    }

    /// Items that must move home at a flush, then invalidate devices.
    fn flush(&mut self) -> u64 {
        let mut moved = 0;
        for i in 0..ITEMS as usize {
            if !self.valid[0][i] {
                moved += 1;
                self.valid[0][i] = true;
            }
            for sp in 1..SPACES {
                self.valid[sp][i] = false;
            }
        }
        moved
    }

    fn covers(&self, s: u64, e: u64, space: usize) -> bool {
        (s..e).all(|i| self.valid[space][i as usize])
    }
}

#[derive(Clone, Debug)]
enum Op {
    Read { s: u64, len: u64, space: usize },
    Write { s: u64, len: u64, space: usize },
    Flush,
    Check { s: u64, len: u64, space: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..ITEMS, 1..24u64, 0..SPACES).prop_map(|(s, len, space)| Op::Read { s, len, space }),
        (0..ITEMS, 1..24u64, 0..SPACES).prop_map(|(s, len, space)| Op::Write { s, len, space }),
        Just(Op::Flush),
        (0..ITEMS, 1..24u64, 0..SPACES).prop_map(|(s, len, space)| Op::Check { s, len, space }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn coherence_matches_per_item_oracle(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let buffers = vec![BufferDesc {
            name: "x".into(),
            items: ITEMS,
            item_bytes: 4,
        }];
        let mut dir = CoherenceDir::new(SPACES, &buffers);
        let mut oracle = Oracle::new();
        let buf = BufferId(0);

        for op in ops {
            match op {
                Op::Read { s, len, space } => {
                    let e = (s + len).min(ITEMS);
                    let transfers =
                        dir.acquire_for_read(buf, Interval::new(s, e), MemSpaceId(space));
                    let got: u64 = transfers.iter().map(|t| t.span.len()).sum();
                    let want = oracle.acquire_for_read(s, e, space);
                    prop_assert_eq!(got, want, "read [{}, {}) on space {}", s, e, space);
                    // Transfer sources must have held valid copies.
                    for t in &transfers {
                        prop_assert!(t.from != MemSpaceId(space));
                    }
                }
                Op::Write { s, len, space } => {
                    let e = (s + len).min(ITEMS);
                    dir.record_write(buf, Interval::new(s, e), MemSpaceId(space));
                    oracle.record_write(s, e, space);
                }
                Op::Flush => {
                    let transfers = dir.flush_and_invalidate();
                    let got: u64 = transfers.iter().map(|t| t.span.len()).sum();
                    let want = oracle.flush();
                    prop_assert_eq!(got, want, "flush volume");
                    for t in &transfers {
                        prop_assert_eq!(t.to, MemSpaceId::HOST);
                    }
                }
                Op::Check { s, len, space } => {
                    let e = (s + len).min(ITEMS);
                    prop_assert_eq!(
                        dir.is_valid(buf, Interval::new(s, e), MemSpaceId(space)),
                        oracle.covers(s, e, space),
                        "validity of [{}, {}) in space {}", s, e, space
                    );
                    let missing = dir.missing_read_bytes(buf, Interval::new(s, e), MemSpaceId(space));
                    let oracle_missing: u64 = (s..e)
                        .filter(|&i| !oracle.valid[space][i as usize])
                        .count() as u64 * 4;
                    prop_assert_eq!(missing, oracle_missing);
                }
            }
        }
    }
}
