//! Property tests for the multi-accelerator and imbalanced solvers.

use glinda::imbalanced::ImbalancedProblem;
use glinda::{solve_imbalanced, solve_multi, AcceleratorSide, MultiDeviceProblem, TransferModel};
use proptest::prelude::*;

fn arb_accel() -> impl Strategy<Value = AcceleratorSide> {
    (
        1e3f64..1e9,
        0.0f64..64.0,
        0.0f64..1e6,
        1e6f64..1e10,
        prop_oneof![Just(1u64), Just(32)],
    )
        .prop_map(|(rate, bpi, fixed, bw, gran)| AcceleratorSide {
            rate,
            transfer: TransferModel {
                h2d_bytes_per_item: bpi,
                d2h_bytes_per_item: bpi / 2.0,
                fixed_bytes: fixed,
            },
            link_bandwidth: bw,
            granularity: gran,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn multi_solver_conserves_items(
        items in 0u64..5_000_000,
        cpu_rate in 1e3f64..1e9,
        accels in proptest::collection::vec(arb_accel(), 0..5),
    ) {
        let p = MultiDeviceProblem { items, cpu_rate, accelerators: accels };
        let s = solve_multi(&p);
        prop_assert_eq!(s.cpu_items + s.accel_items.iter().sum::<u64>(), items);
        prop_assert!(s.predicted_time.is_finite() && s.predicted_time >= 0.0);
        // Granularity respected.
        for (a, &n) in p.accelerators.iter().zip(&s.accel_items) {
            prop_assert_eq!(n % a.granularity.max(1), 0);
        }
    }

    #[test]
    fn multi_solver_never_worse_than_cpu_only(
        items in 1u64..5_000_000,
        cpu_rate in 1e3f64..1e9,
        accels in proptest::collection::vec(arb_accel(), 1..4),
    ) {
        let p = MultiDeviceProblem { items, cpu_rate, accelerators: accels };
        let s = solve_multi(&p);
        let cpu_only = items as f64 / cpu_rate;
        // Small slack for granularity rounding pushing items to the CPU.
        prop_assert!(
            s.predicted_time <= cpu_only * 1.01 + 1e-9,
            "{} vs cpu-only {}", s.predicted_time, cpu_only
        );
    }

    #[test]
    fn multi_solver_monotone_in_extra_accelerator(
        items in 1_000u64..5_000_000,
        cpu_rate in 1e3f64..1e8,
        base in arb_accel(),
        extra in arb_accel(),
    ) {
        let one = solve_multi(&MultiDeviceProblem {
            items,
            cpu_rate,
            accelerators: vec![base],
        });
        let two = solve_multi(&MultiDeviceProblem {
            items,
            cpu_rate,
            accelerators: vec![base, extra],
        });
        // Adding a device never hurts the predicted optimum (it can be
        // dropped if useless); granularity rounding gets 1% slack.
        prop_assert!(
            two.predicted_time <= one.predicted_time * 1.01 + 1e-9,
            "two {} vs one {}", two.predicted_time, one.predicted_time
        );
    }

    #[test]
    fn imbalanced_solver_is_optimal_among_splits(
        weights in proptest::collection::vec(0.0f32..100.0, 1..400),
        cpu_rate in 1e2f64..1e6,
        gpu_rate in 1e2f64..1e6,
    ) {
        let p = ImbalancedProblem {
            weights: weights.clone(),
            cpu_rate,
            gpu_rate,
            transfer: TransferModel::NONE,
            link_bandwidth: 1.0,
            gpu_granularity: 1,
        };
        let s = solve_imbalanced(&p);
        // Exhaustive check.
        let mut prefix = vec![0.0f64];
        for &w in &weights {
            prefix.push(prefix.last().unwrap() + w as f64);
        }
        let total = *prefix.last().unwrap();
        let best = (0..=weights.len())
            .map(|i| (prefix[i] / gpu_rate).max((total - prefix[i]) / cpu_rate))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            s.predicted_time <= best * (1.0 + 1e-9) + 1e-12,
            "solver {} vs sweep {}", s.predicted_time, best
        );
    }
}
