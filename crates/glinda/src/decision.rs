//! The hardware-configuration decision.
//!
//! Glinda's final step (§II-A): given the predicted optimal partitioning,
//! decide whether to actually co-execute, "by checking if the obtained
//! partitioning is able to efficiently use a certain amount of hardware
//! cores of each processor". A sliver of work cannot keep a device busy
//! past its fixed costs, so tiny partitions fold into the other device.

use crate::problem::PartitionProblem;
use crate::solve::{solve, PartitionSolution};
use serde::{Deserialize, Serialize};

/// Utilisation thresholds for the decision step.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DecisionConfig {
    /// The CPU partition must provide at least this many items *per
    /// hardware thread*, or the CPU is dropped.
    pub min_items_per_cpu_thread: u64,
    /// The GPU partition must be at least this many granules (warps), or
    /// the GPU is dropped.
    pub min_gpu_granules: u64,
    /// Number of CPU hardware threads (for the per-thread check).
    pub cpu_threads: u64,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            min_items_per_cpu_thread: 1,
            min_gpu_granules: 4,
            cpu_threads: 1,
        }
    }
}

/// The chosen hardware configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum HardwareConfig {
    /// Run everything on the CPU.
    OnlyCpu,
    /// Run everything on the GPU.
    OnlyGpu,
    /// Co-execute with the given partitioning.
    Hybrid(PartitionSolution),
}

impl HardwareConfig {
    /// GPU items under this configuration (total items needed for OnlyGpu).
    pub fn gpu_items(&self, total: u64) -> u64 {
        match self {
            HardwareConfig::OnlyCpu => 0,
            HardwareConfig::OnlyGpu => total,
            HardwareConfig::Hybrid(s) => s.gpu_items,
        }
    }
}

/// Run the decision procedure: solve, then apply the utilisation checks,
/// falling back to whichever single device the model predicts faster when a
/// partition is too small to be worth keeping.
pub fn decide(problem: &PartitionProblem, config: &DecisionConfig) -> HardwareConfig {
    let solution = solve(problem);
    let n = problem.items;
    let gpu_floor = config.min_gpu_granules * problem.gpu_granularity.max(1);
    let cpu_floor = config.min_items_per_cpu_thread * config.cpu_threads.max(1);

    let gpu_ok = solution.gpu_items >= gpu_floor;
    let cpu_ok = solution.cpu_items >= cpu_floor;

    match (gpu_ok, cpu_ok) {
        (true, true) => HardwareConfig::Hybrid(solution),
        (true, false) => HardwareConfig::OnlyGpu,
        (false, true) => HardwareConfig::OnlyCpu,
        (false, false) => {
            // Degenerate (tiny problem): pick the faster single device.
            if problem.gpu_time(n) <= problem.cpu_time(n) {
                HardwareConfig::OnlyGpu
            } else {
                HardwareConfig::OnlyCpu
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TransferModel;

    fn prob(items: u64, cpu: f64, gpu: f64, bpi: f64) -> PartitionProblem {
        PartitionProblem {
            items,
            cpu_rate: cpu,
            gpu_rate: gpu,
            transfer: TransferModel {
                h2d_bytes_per_item: bpi,
                d2h_bytes_per_item: 0.0,
                fixed_bytes: 0.0,
            },
            link_bandwidth: 1000.0,
            gpu_granularity: 32,
        }
    }

    fn cfg() -> DecisionConfig {
        DecisionConfig {
            min_items_per_cpu_thread: 16,
            min_gpu_granules: 4,
            cpu_threads: 12,
        }
    }

    #[test]
    fn balanced_problem_co_executes() {
        let d = decide(&prob(100_000, 100.0, 400.0, 0.0), &cfg());
        match d {
            HardwareConfig::Hybrid(s) => {
                assert!(s.gpu_items > 0 && s.cpu_items > 0);
            }
            other => panic!("expected hybrid, got {other:?}"),
        }
    }

    #[test]
    fn overwhelming_gpu_drops_cpu() {
        // GPU 10000x faster: the CPU partition would be < 16*12 items.
        let d = decide(&prob(100_000, 1.0, 10_000.0, 0.0), &cfg());
        assert_eq!(d, HardwareConfig::OnlyGpu);
    }

    #[test]
    fn transfer_wall_drops_gpu() {
        // Transfers so expensive the GPU share rounds to zero granules.
        let d = decide(&prob(100_000, 100.0, 400.0, 1e7), &cfg());
        assert_eq!(d, HardwareConfig::OnlyCpu);
    }

    #[test]
    fn tiny_problem_picks_faster_single_device() {
        // 64 items can satisfy neither floor (gpu needs 128, cpu needs 192).
        let fast_gpu = decide(&prob(64, 10.0, 1000.0, 0.0), &cfg());
        assert_eq!(fast_gpu, HardwareConfig::OnlyGpu);
        let fast_cpu = decide(&prob(64, 1000.0, 10.0, 0.0), &cfg());
        assert_eq!(fast_cpu, HardwareConfig::OnlyCpu);
    }

    #[test]
    fn gpu_items_accessor() {
        assert_eq!(HardwareConfig::OnlyCpu.gpu_items(100), 0);
        assert_eq!(HardwareConfig::OnlyGpu.gpu_items(100), 100);
        let d = decide(&prob(100_000, 100.0, 400.0, 0.0), &cfg());
        assert_eq!(d.gpu_items(100_000), 80_000);
    }
}
