//! Partitioning for imbalanced workloads (the ICS'14 extension).
//!
//! When the per-item cost varies (triangular loops, adaptive mesh cells,
//! variable-depth options...), splitting by item *count* misloads the
//! devices. Glinda instead splits by *work*: the GPU takes the prefix
//! `[0, s)` and the split index is found on the workload's prefix sums so
//! that predicted completion times equalise.
//!
//! Device rates are expressed in *work units per second*, where an item of
//! weight `w` costs `w` work units; a uniform workload with unit weights
//! reduces exactly to the balanced solver.

use crate::problem::TransferModel;
use serde::{Deserialize, Serialize};

/// An imbalanced partitioning problem: per-item weights plus device rates
/// in work-units/second.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ImbalancedProblem {
    /// Per-item relative cost (work units); length = number of items.
    pub weights: Vec<f32>,
    /// Whole-CPU sustained throughput, work-units/s.
    pub cpu_rate: f64,
    /// Whole-GPU sustained kernel throughput, work-units/s.
    pub gpu_rate: f64,
    /// Transfer volume model (per *item*, since bytes follow data size, not
    /// computational weight).
    pub transfer: TransferModel,
    /// Interconnect bandwidth, bytes/s.
    pub link_bandwidth: f64,
    /// GPU granularity in items.
    pub gpu_granularity: u64,
}

/// Result of the imbalanced solver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImbalancedSolution {
    /// The GPU takes items `[0, split)`.
    pub split: u64,
    /// Fraction of total *work* assigned to the GPU.
    pub gpu_work_fraction: f64,
    /// Predicted co-execution time, seconds.
    pub predicted_time: f64,
}

/// Solve by bisection on the prefix-sum of weights. `O(n)` to build the
/// prefix sums, `O(log n)` to locate the crossing, then a local scan over
/// one granule to respect `gpu_granularity`.
pub fn solve_imbalanced(problem: &ImbalancedProblem) -> ImbalancedSolution {
    assert!(problem.cpu_rate > 0.0 && problem.gpu_rate > 0.0);
    assert!(problem.link_bandwidth > 0.0);
    let n = problem.weights.len() as u64;
    if n == 0 {
        return ImbalancedSolution {
            split: 0,
            gpu_work_fraction: 0.0,
            predicted_time: 0.0,
        };
    }
    // prefix[i] = total work of items [0, i).
    let mut prefix = Vec::with_capacity(problem.weights.len() + 1);
    prefix.push(0.0f64);
    for &w in &problem.weights {
        assert!(w >= 0.0, "negative weight");
        prefix.push(prefix.last().unwrap() + w as f64);
    }
    let total = *prefix.last().unwrap();

    let gpu_time = |s: u64| -> f64 {
        if s == 0 {
            return 0.0;
        }
        prefix[s as usize] / problem.gpu_rate + problem.transfer.bytes(s) / problem.link_bandwidth
    };
    let cpu_time = |s: u64| -> f64 { (total - prefix[s as usize]) / problem.cpu_rate };
    let hybrid = |s: u64| -> f64 { gpu_time(s).max(cpu_time(s)) };

    // gpu_time is nondecreasing in s, cpu_time nonincreasing: bisect for
    // the first s where gpu_time >= cpu_time; optimum is there or one left.
    let (mut lo, mut hi) = (0u64, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if gpu_time(mid) >= cpu_time(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // The optimum sits at the crossing: either the last CPU-dominated
    // split (`lo - 1`) or the first GPU-dominated one (`lo`). Evaluate the
    // granularity-rounded neighbourhood of both and keep the best.
    let g = problem.gpu_granularity.max(1);
    let lo_clamped = lo.min(n);
    let prev = lo_clamped.saturating_sub(1);
    let candidates = [
        prev / g * g,
        prev.div_ceil(g) * g,
        lo_clamped / g * g,
        lo_clamped.div_ceil(g) * g,
    ];
    let split = candidates
        .into_iter()
        .map(|s| s.min(n))
        .min_by(|&a, &b| hybrid(a).partial_cmp(&hybrid(b)).unwrap().then(a.cmp(&b)))
        .unwrap();

    ImbalancedSolution {
        split,
        gpu_work_fraction: if total > 0.0 {
            prefix[split as usize] / total
        } else {
            0.0
        },
        predicted_time: hybrid(split),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prob(weights: Vec<f32>, cpu: f64, gpu: f64) -> ImbalancedProblem {
        ImbalancedProblem {
            weights,
            cpu_rate: cpu,
            gpu_rate: gpu,
            transfer: TransferModel::NONE,
            link_bandwidth: 1.0,
            gpu_granularity: 1,
        }
    }

    #[test]
    fn uniform_weights_match_balanced_solver() {
        let p = prob(vec![1.0; 1000], 100.0, 400.0);
        let s = solve_imbalanced(&p);
        // Balanced equivalent: beta = 0.8.
        assert_eq!(s.split, 800);
        assert!((s.gpu_work_fraction - 0.8).abs() < 1e-9);
    }

    #[test]
    fn triangular_weights_split_by_work_not_count() {
        // Weights 1..=n (a triangular loop): the GPU (4x faster) should get
        // 80% of the WORK, which is fewer than 80% of the items because
        // later items are heavier... here the prefix holds the LIGHT items,
        // so the split index moves right of 80%.
        let n = 1000usize;
        let p = prob((1..=n).map(|i| i as f32).collect(), 100.0, 400.0);
        let s = solve_imbalanced(&p);
        assert!((s.gpu_work_fraction - 0.8).abs() < 0.01);
        assert!(
            s.split > 850,
            "split {} should exceed the item-count split",
            s.split
        );
    }

    #[test]
    fn equalizes_times() {
        let n = 5000usize;
        let p = prob(
            (0..n).map(|i| 1.0 + (i % 17) as f32).collect(),
            123.0,
            777.0,
        );
        let s = solve_imbalanced(&p);
        let prefix: f64 = p.weights[..s.split as usize]
            .iter()
            .map(|&w| w as f64)
            .sum();
        let total: f64 = p.weights.iter().map(|&w| w as f64).sum();
        let tg = prefix / p.gpu_rate;
        let tc = (total - prefix) / p.cpu_rate;
        assert!((tg - tc).abs() / tg.max(tc) < 0.01, "tg={tg} tc={tc}");
    }

    #[test]
    fn transfers_pull_split_left() {
        let weights: Vec<f32> = vec![1.0; 1000];
        let free = solve_imbalanced(&prob(weights.clone(), 100.0, 400.0));
        let mut heavy = prob(weights, 100.0, 400.0);
        heavy.transfer.h2d_bytes_per_item = 8.0;
        heavy.link_bandwidth = 800.0;
        let s = solve_imbalanced(&heavy);
        assert!(s.split < free.split);
    }

    #[test]
    fn granularity_respected() {
        let mut p = prob(vec![1.0; 1000], 100.0, 300.0);
        p.gpu_granularity = 64;
        let s = solve_imbalanced(&p);
        assert_eq!(s.split % 64, 0);
    }

    #[test]
    fn empty_and_all_zero_weights() {
        let s = solve_imbalanced(&prob(vec![], 1.0, 1.0));
        assert_eq!(s.split, 0);
        let z = solve_imbalanced(&prob(vec![0.0; 10], 1.0, 1.0));
        assert_eq!(z.predicted_time, 0.0);
    }

    #[test]
    fn solution_is_optimal_over_full_sweep() {
        let n = 300usize;
        let p = prob(
            (0..n).map(|i| ((i * 31) % 7 + 1) as f32).collect(),
            11.0,
            37.0,
        );
        let s = solve_imbalanced(&p);
        let prefix = {
            let mut v = vec![0.0f64];
            for &w in &p.weights {
                v.push(v.last().unwrap() + w as f64);
            }
            v
        };
        let total = *prefix.last().unwrap();
        let best = (0..=n)
            .map(|i| (prefix[i] / p.gpu_rate).max((total - prefix[i]) / p.cpu_rate))
            .fold(f64::INFINITY, f64::min);
        assert!((s.predicted_time - best).abs() / best.max(1e-12) < 1e-9);
    }
}
