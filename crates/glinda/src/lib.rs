#![warn(missing_docs)]

//! # glinda
//!
//! A from-scratch implementation of the **Glinda** static workload
//! partitioning approach (Shen et al., HPCC 2014 "Look Before You Leap",
//! extended for imbalanced workloads in ICS 2014), which the ICPP'15
//! *matchmaking* paper uses as its static-partitioning engine (§II-A).
//!
//! Glinda answers, for a single data-parallel kernel on a heterogeneous
//! platform: *how should the `n` data items be split between the CPU and
//! the GPU so that both finish at the same moment?* It proceeds in three
//! steps, mirrored by this crate's modules:
//!
//! 1. **Modeling** ([`problem`], [`solve`]) — the execution of a partition
//!    is modelled per device; the optimal split equalises CPU and GPU
//!    completion times. The model is expressed through two derived metrics
//!    ([`metrics`]): the *relative hardware capability* `R` (ratio of GPU
//!    to CPU throughput) and the *GPU computation to data-transfer gap* `G`
//!    (ratio of GPU throughput to interconnect throughput).
//! 2. **Profiling** ([`profiling`]) — a low-cost probe estimates the two
//!    metrics on the actual platform/application/dataset combination.
//! 3. **Decision** ([`decision`]) — given the predicted split, choose the
//!    hardware configuration: Only-CPU, Only-GPU, or CPU+GPU with the
//!    predicted partitioning, based on whether each partition can use its
//!    processor efficiently.
//!
//! The [`imbalanced`] module extends the solver to non-uniform per-item
//! workloads (the ICS'14 contribution): the split point is found on the
//! workload's prefix sums instead of assuming cost ∝ item count;
//! [`multi`] generalises to several (non-identical) accelerators.
//!
//! ```
//! use glinda::{decide, DecisionConfig, HardwareConfig, PartitionProblem, TransferModel};
//! use glinda::profiling::estimate_rates;
//! use hetero_platform::{KernelProfile, Platform};
//!
//! let platform = Platform::icpp15();
//! let kernel = KernelProfile::compute_only(1e5);
//! let rates = estimate_rates(&platform, &kernel, 1 << 16);   // low-cost profiling
//! let problem = PartitionProblem {
//!     items: 1 << 22,
//!     cpu_rate: rates.cpu_rate,
//!     gpu_rate: rates.gpu_rate,
//!     transfer: TransferModel { h2d_bytes_per_item: 4.0, d2h_bytes_per_item: 4.0, fixed_bytes: 0.0 },
//!     link_bandwidth: 6e9,
//!     gpu_granularity: 32,
//! };
//! let config = decide(&problem, &DecisionConfig::default());  // the decision step
//! let HardwareConfig::Hybrid(split) = config else { panic!("co-execution expected") };
//! assert!(split.gpu_items > split.cpu_items); // compute-bound: GPU-heavy
//! ```

pub mod decision;
pub mod imbalanced;
pub mod metrics;
pub mod multi;
pub mod problem;
pub mod profiling;
pub mod solve;

pub use decision::{decide, DecisionConfig, HardwareConfig};
pub use imbalanced::solve_imbalanced;
pub use metrics::PartitionMetrics;
pub use multi::{
    resolve_multi_with_observations, solve_multi, AcceleratorSide, MultiDeviceProblem,
    MultiSolution,
};
pub use problem::{PartitionProblem, TransferModel};
pub use profiling::{estimate_rates, RateEstimates};
pub use solve::{resolve_with_observations, solve, PartitionSolution};
