//! The partitioning solver for uniform (balanced) workloads.
//!
//! With per-item costs constant, the optimal split equalises device
//! completion times:
//!
//! ```text
//! ng·tg + F/B = nc·tc          with  n = ng + nc,
//! tg = 1/gpu_rate + bpi/B      (compute + transfer per offloaded item)
//! tc = 1/cpu_rate
//! F  = fixed transfer bytes, B = link bandwidth
//! ```
//!
//! which gives `ng = (n·tc − F/B) / (tg + tc)`. Expressed through the two
//! derived metrics `R = gpu_rate/cpu_rate` and `G = gpu_rate·bpi/B`, the
//! fixed-cost-free GPU fraction is `β = R / (1 + R + G·R/R)`… i.e. the
//! familiar `β = R/(R + 1 + G)` normalised form; the code keeps the
//! time-per-item formulation, which is numerically direct.

use crate::metrics::PartitionMetrics;
use crate::problem::PartitionProblem;
use serde::{Deserialize, Serialize};

/// The solver's output: an item split plus the model's predictions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionSolution {
    /// Items assigned to the GPU (rounded to the problem's granularity).
    pub gpu_items: u64,
    /// Items assigned to the CPU (`items - gpu_items`).
    pub cpu_items: u64,
    /// GPU fraction before rounding, in `[0, 1]`.
    pub beta: f64,
    /// Predicted co-execution time in seconds for the rounded split.
    pub predicted_time: f64,
    /// The derived metrics behind the prediction.
    pub metrics: PartitionMetrics,
}

/// Solve a uniform-workload partitioning problem.
///
/// The paper's footnote 5 rounds the GPU share up to a warp multiple; this
/// solver evaluates both the rounded-up and rounded-down candidates and
/// keeps whichever the model predicts faster (they differ by at most one
/// granule).
pub fn solve(problem: &PartitionProblem) -> PartitionSolution {
    problem
        .validate()
        .unwrap_or_else(|e| panic!("invalid partitioning problem: {e}"));
    let n = problem.items;
    let metrics = PartitionMetrics::of(problem);

    let tc = 1.0 / problem.cpu_rate;
    let tg = 1.0 / problem.gpu_rate + problem.transfer.bytes_per_item() / problem.link_bandwidth;
    let fixed = problem.transfer.fixed_bytes / problem.link_bandwidth;

    let ideal = ((n as f64 * tc - fixed) / (tg + tc)).clamp(0.0, n as f64);
    let beta = if n == 0 { 0.0 } else { ideal / n as f64 };

    let g = problem.gpu_granularity.max(1);
    let down = (ideal as u64) / g * g;
    let up = (down + g).min(n);
    let candidates = [down.min(n), up];
    let gpu_items = candidates
        .into_iter()
        .min_by(|&a, &b| {
            problem
                .hybrid_time(a)
                .partial_cmp(&problem.hybrid_time(b))
                .unwrap()
                .then(a.cmp(&b))
        })
        .unwrap();

    PartitionSolution {
        gpu_items,
        cpu_items: n - gpu_items,
        beta,
        predicted_time: problem.hybrid_time(gpu_items),
        metrics,
    }
}

/// Re-solve a partitioning problem with *observed* device rates, warm-started
/// from a prior solution.
///
/// This is the re-entrant entry point the adaptive runtime uses at epoch
/// barriers: the original `problem` carries the transfer model and
/// granularity, the observed rates replace the (possibly mispredicted)
/// profile rates, and the prior split is kept as a candidate so that when the
/// corrected model says the old split is already optimal the controller does
/// not churn. The result is the fastest split under the *corrected* model
/// among the closed-form optimum's granule neighbours and the prior split.
pub fn resolve_with_observations(
    problem: &PartitionProblem,
    prior: &PartitionSolution,
    observed_cpu_rate: f64,
    observed_gpu_rate: f64,
) -> PartitionSolution {
    assert!(
        observed_cpu_rate.is_finite() && observed_cpu_rate > 0.0,
        "observed CPU rate must be positive and finite, got {observed_cpu_rate}"
    );
    assert!(
        observed_gpu_rate.is_finite() && observed_gpu_rate > 0.0,
        "observed GPU rate must be positive and finite, got {observed_gpu_rate}"
    );
    let corrected = PartitionProblem {
        cpu_rate: observed_cpu_rate,
        gpu_rate: observed_gpu_rate,
        ..*problem
    };
    let fresh = solve(&corrected);
    // Warm start: the prior split competes on the corrected model's terms.
    let prior_items = prior.gpu_items.min(corrected.items);
    if corrected.hybrid_time(prior_items) < fresh.predicted_time {
        PartitionSolution {
            gpu_items: prior_items,
            cpu_items: corrected.items - prior_items,
            beta: fresh.beta,
            predicted_time: corrected.hybrid_time(prior_items),
            metrics: fresh.metrics,
        }
    } else {
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TransferModel;

    fn prob(items: u64, cpu: f64, gpu: f64, bpi: f64, bw: f64, gran: u64) -> PartitionProblem {
        PartitionProblem {
            items,
            cpu_rate: cpu,
            gpu_rate: gpu,
            transfer: TransferModel {
                h2d_bytes_per_item: bpi,
                d2h_bytes_per_item: 0.0,
                fixed_bytes: 0.0,
            },
            link_bandwidth: bw,
            gpu_granularity: gran,
        }
    }

    #[test]
    fn no_transfers_split_matches_capability_ratio() {
        // GPU 4x faster, no transfers => beta = 4/5.
        let p = prob(1000, 100.0, 400.0, 0.0, 1.0, 1);
        let s = solve(&p);
        assert!((s.beta - 0.8).abs() < 1e-9, "beta={}", s.beta);
        assert_eq!(s.gpu_items + s.cpu_items, 1000);
        assert_eq!(s.gpu_items, 800);
    }

    #[test]
    fn transfers_shift_work_to_cpu() {
        let free = solve(&prob(1000, 100.0, 400.0, 0.0, 1.0, 1));
        // Transfer per item as expensive as CPU compute: tg = 1/400 + 8/800
        // = 0.0125, tc = 0.01 => beta = 0.01/0.0225 = 0.444.
        let heavy = solve(&prob(1000, 100.0, 400.0, 8.0, 800.0, 1));
        assert!(heavy.beta < free.beta);
        assert!((heavy.beta - 0.4444).abs() < 1e-3);
        assert!(heavy.metrics.transfer_dominated());
    }

    #[test]
    fn fixed_transfer_cost_reduces_gpu_share() {
        let no_fixed = solve(&prob(1000, 100.0, 400.0, 0.0, 1.0, 1));
        let mut p = prob(1000, 100.0, 400.0, 0.0, 1.0, 1);
        p.transfer.fixed_bytes = 2.0; // 2 seconds at bw=1
        let with_fixed = solve(&p);
        assert!(with_fixed.gpu_items < no_fixed.gpu_items);
    }

    #[test]
    fn extreme_transfer_cost_gives_cpu_everything() {
        let p = prob(1000, 100.0, 400.0, 1e9, 1.0, 32);
        let s = solve(&p);
        assert_eq!(s.gpu_items, 0);
        assert_eq!(s.cpu_items, 1000);
        assert!(s.beta < 1e-6);
    }

    #[test]
    fn granularity_rounding_preserves_total_and_stays_near_ideal() {
        let p = prob(1000, 100.0, 300.0, 0.0, 1.0, 32);
        let s = solve(&p);
        assert_eq!(s.gpu_items % 32, 0);
        assert_eq!(s.gpu_items + s.cpu_items, 1000);
        let ideal = 0.75 * 1000.0;
        assert!((s.gpu_items as f64 - ideal).abs() <= 32.0);
    }

    #[test]
    fn rounded_split_is_optimal_among_granules() {
        let p = prob(10_000, 123.0, 777.0, 3.0, 500.0, 64);
        let s = solve(&p);
        // No multiple of 64 predicts a faster hybrid time.
        let mut best = f64::INFINITY;
        let mut arg = 0;
        let mut ng = 0;
        while ng <= p.items {
            let t = p.hybrid_time(ng);
            if t < best {
                best = t;
                arg = ng;
            }
            ng += 64;
        }
        assert!(
            (s.predicted_time - best) / best < 1e-9,
            "solver {} vs sweep {} (ng {})",
            s.predicted_time,
            best,
            arg
        );
    }

    #[test]
    fn equalizes_device_times_at_the_ideal_split() {
        let p = prob(100_000, 250.0, 1000.0, 2.0, 1000.0, 1);
        let s = solve(&p);
        let tg = p.gpu_time(s.gpu_items);
        let tc = p.cpu_time(s.cpu_items);
        assert!(
            (tg - tc).abs() / tg.max(tc) < 0.01,
            "gpu {tg}s vs cpu {tc}s"
        );
    }

    #[test]
    fn beta_monotone_in_relative_capability() {
        let mut last = -1.0;
        for gpu_rate in [50.0, 100.0, 200.0, 400.0, 800.0] {
            let s = solve(&prob(1000, 100.0, gpu_rate, 0.0, 1.0, 1));
            assert!(s.beta > last);
            last = s.beta;
        }
    }

    #[test]
    fn beta_monotone_decreasing_in_transfer_gap() {
        let mut last = 2.0;
        for bpi in [0.0, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let s = solve(&prob(1000, 100.0, 400.0, bpi, 400.0, 1));
            assert!(s.beta < last, "bpi={bpi} beta={}", s.beta);
            last = s.beta;
        }
    }

    #[test]
    fn zero_items() {
        let s = solve(&prob(0, 100.0, 400.0, 0.0, 1.0, 32));
        assert_eq!(s.gpu_items, 0);
        assert_eq!(s.cpu_items, 0);
        assert_eq!(s.predicted_time, 0.0);
    }

    #[test]
    fn resolve_with_observations_corrects_a_mispredicted_split() {
        // The profile claimed the GPU does 200 items/s; it really does 400.
        let p = prob(1000, 100.0, 200.0, 0.0, 1.0, 1);
        let mispredicted = solve(&p);
        let corrected = resolve_with_observations(&p, &mispredicted, 100.0, 400.0);
        let oracle = solve(&prob(1000, 100.0, 400.0, 0.0, 1.0, 1));
        assert_eq!(corrected.gpu_items, oracle.gpu_items);
        assert!(corrected.gpu_items > mispredicted.gpu_items);
    }

    #[test]
    fn resolve_with_observations_keeps_an_already_optimal_split() {
        let p = prob(1024, 100.0, 400.0, 0.0, 1.0, 32);
        let s = solve(&p);
        // Observations match the profile: the prior split must stand.
        let again = resolve_with_observations(&p, &s, 100.0, 400.0);
        assert_eq!(again.gpu_items, s.gpu_items);
        assert_eq!(again.cpu_items, s.cpu_items);
    }

    #[test]
    fn resolve_with_observations_is_idempotent_under_fixed_rates() {
        // Repeated re-solves with the same observations reach a fixed point
        // after the first step — the controller cannot oscillate.
        let p = prob(10_000, 123.0, 777.0, 3.0, 500.0, 64);
        let mut s = solve(&prob(10_000, 123.0, 300.0, 3.0, 500.0, 64));
        let first = resolve_with_observations(&p, &s, 123.0, 777.0);
        s = first;
        for _ in 0..5 {
            let next = resolve_with_observations(&p, &s, 123.0, 777.0);
            assert_eq!(next.gpu_items, s.gpu_items);
            s = next;
        }
    }

    #[test]
    #[should_panic(expected = "observed GPU rate must be positive")]
    fn resolve_rejects_bad_observed_rates() {
        let p = prob(10, 1.0, 1.0, 0.0, 1.0, 1);
        let s = solve(&p);
        let _ = resolve_with_observations(&p, &s, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid partitioning problem")]
    fn rejects_bad_rates() {
        let mut p = prob(10, 1.0, 1.0, 0.0, 1.0, 1);
        p.gpu_rate = f64::NAN;
        let _ = solve(&p);
    }
}
