//! Multi-accelerator partitioning.
//!
//! Glinda "supports various platforms, with one or more accelerators,
//! identical or non-identical" (§II-A). This module generalises the
//! two-way solver to a CPU plus `k` accelerators: the optimal split makes
//! every *used* device finish at the same moment.
//!
//! With per-item time `t_d` on device `d` (compute + its own link
//! transfers) and fixed offload cost `F_d`, equal finish time `T` gives
//! `n_d = (T − F_d) / t_d` and `Σ n_d = n`, hence
//!
//! ```text
//! T = (n + Σ_d F_d/t_d) / (Σ_d 1/t_d)
//! ```
//!
//! A device whose share comes out negative (its fixed cost exceeds the
//! common finish time) cannot pay for itself; it is dropped and the system
//! re-solved over the remaining devices — the multi-device analogue of the
//! paper's hardware-configuration decision.

use crate::problem::TransferModel;
use serde::{Deserialize, Serialize};

/// One accelerator's side of a multi-device problem.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorSide {
    /// Sustained kernel throughput, items/s.
    pub rate: f64,
    /// Transfer volume model for this accelerator's offload.
    pub transfer: TransferModel,
    /// Its host link bandwidth, bytes/s.
    pub link_bandwidth: f64,
    /// Partition granularity (warp size etc.).
    pub granularity: u64,
}

impl AcceleratorSide {
    /// Effective seconds per offloaded item (compute + variable transfer).
    pub fn time_per_item(&self) -> f64 {
        1.0 / self.rate + self.transfer.bytes_per_item() / self.link_bandwidth
    }

    /// Fixed seconds per offload decision.
    pub fn fixed_seconds(&self) -> f64 {
        self.transfer.fixed_bytes / self.link_bandwidth
    }
}

/// A CPU + k accelerators partitioning problem.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiDeviceProblem {
    /// Total items.
    pub items: u64,
    /// Whole-CPU sustained throughput, items/s.
    pub cpu_rate: f64,
    /// The accelerators.
    pub accelerators: Vec<AcceleratorSide>,
}

/// The multi-device split: `cpu_items + Σ accel_items = items`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MultiSolution {
    /// Items on the CPU.
    pub cpu_items: u64,
    /// Items per accelerator (same order as the problem's list; zero means
    /// the device was dropped by the decision).
    pub accel_items: Vec<u64>,
    /// Predicted co-execution time, seconds.
    pub predicted_time: f64,
}

impl MultiSolution {
    /// Fraction of items offloaded to any accelerator.
    pub fn offload_fraction(&self, items: u64) -> f64 {
        if items == 0 {
            return 0.0;
        }
        self.accel_items.iter().sum::<u64>() as f64 / items as f64
    }
}

impl MultiDeviceProblem {
    /// The model's co-execution time for an arbitrary split: the slowest
    /// device finishing its share (accelerators pay their fixed offload
    /// cost only when used).
    pub fn predicted_time(&self, cpu_items: u64, accel_items: &[u64]) -> f64 {
        let mut t = cpu_items as f64 / self.cpu_rate;
        for (i, a) in self.accelerators.iter().enumerate() {
            let n = accel_items.get(i).copied().unwrap_or(0);
            if n > 0 {
                t = t.max(n as f64 * a.time_per_item() + a.fixed_seconds());
            }
        }
        t
    }
}

/// Solve the equal-finish-time system, iteratively dropping accelerators
/// that cannot amortise their fixed costs, then round accelerator shares
/// to their granularities (remainder goes to the CPU).
pub fn solve_multi(problem: &MultiDeviceProblem) -> MultiSolution {
    assert!(problem.cpu_rate > 0.0 && problem.cpu_rate.is_finite());
    for a in &problem.accelerators {
        assert!(a.rate > 0.0 && a.link_bandwidth > 0.0);
    }
    let n = problem.items as f64;
    let tc = 1.0 / problem.cpu_rate;
    let k = problem.accelerators.len();
    let mut active: Vec<bool> = vec![true; k];

    // Iteratively solve; drop any active accelerator with negative share.
    let (t_star, shares) = loop {
        let mut inv_sum = 1.0 / tc; // CPU always participates
        let mut fixed_sum = 0.0;
        for (i, a) in problem.accelerators.iter().enumerate() {
            if active[i] {
                let t = a.time_per_item();
                inv_sum += 1.0 / t;
                fixed_sum += a.fixed_seconds() / t;
            }
        }
        let t_star = (n + fixed_sum) / inv_sum;
        let mut dropped = false;
        let mut shares = vec![0.0f64; k];
        for (i, a) in problem.accelerators.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let share = (t_star - a.fixed_seconds()) / a.time_per_item();
            if share <= 0.0 {
                active[i] = false;
                dropped = true;
            } else {
                shares[i] = share;
            }
        }
        if !dropped {
            break (t_star, shares);
        }
    };

    // Round accelerator shares down to granularity; CPU takes the rest.
    let mut accel_items = vec![0u64; k];
    let mut assigned = 0u64;
    for (i, a) in problem.accelerators.iter().enumerate() {
        let g = a.granularity.max(1);
        let raw = shares[i].min(n) as u64;
        let rounded = (raw / g * g).min(problem.items - assigned);
        accel_items[i] = rounded;
        assigned += rounded;
    }
    let mut cpu_items = problem.items - assigned;

    let predict = |cpu_items: u64, accel_items: &[u64]| -> f64 {
        let mut t = cpu_items as f64 * tc;
        for (i, a) in problem.accelerators.iter().enumerate() {
            if accel_items[i] > 0 {
                t = t.max(accel_items[i] as f64 * a.time_per_item() + a.fixed_seconds());
            }
        }
        t
    };

    // Repair the rounding: the floor remainder landed on the CPU, which
    // may be far slower than the accelerators. Greedily move granules from
    // the CPU pool to accelerators (only onto already-used devices, so the
    // drop decision is preserved) while the predicted time improves.
    let mut predicted = predict(cpu_items, &accel_items);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (i, a) in problem.accelerators.iter().enumerate() {
            if accel_items[i] == 0 {
                continue;
            }
            let g = a.granularity.max(1);
            if cpu_items < g {
                // A partial granule stays on the CPU so accelerator shares
                // remain granularity-aligned.
                continue;
            }
            accel_items[i] += g;
            let t = predict(cpu_items - g, &accel_items);
            accel_items[i] -= g;
            if t < predicted && best.is_none_or(|(_, bt)| t < bt) {
                best = Some((i, t));
            }
        }
        match best {
            Some((i, t)) => {
                let g = problem.accelerators[i].granularity.max(1);
                accel_items[i] += g;
                cpu_items -= g;
                predicted = t;
            }
            None => break,
        }
    }

    let _ = t_star;
    MultiSolution {
        cpu_items,
        accel_items,
        predicted_time: predicted,
    }
}

/// Re-solve an N-way problem with *observed* device rates, warm-started
/// from a prior split — the multi-accelerator analogue of
/// [`crate::solve::resolve_with_observations`], and the re-solve the
/// degraded-mode plan repair feeds with the executor's measured
/// throughputs.
///
/// The original `problem` carries the transfer models and granularities;
/// the observed rates replace the (possibly mispredicted, possibly stale)
/// profile rates. `observed_accel_rates` is indexed like
/// `problem.accelerators`; a `None` entry keeps that accelerator's model
/// rate (no observation yet). The prior split competes on the corrected
/// model's terms so a repair that cannot beat the standing assignment does
/// not churn.
pub fn resolve_multi_with_observations(
    problem: &MultiDeviceProblem,
    prior: &MultiSolution,
    observed_cpu_rate: f64,
    observed_accel_rates: &[Option<f64>],
) -> MultiSolution {
    assert!(
        observed_cpu_rate.is_finite() && observed_cpu_rate > 0.0,
        "observed CPU rate must be positive and finite, got {observed_cpu_rate}"
    );
    let mut corrected = problem.clone();
    corrected.cpu_rate = observed_cpu_rate;
    for (i, a) in corrected.accelerators.iter_mut().enumerate() {
        if let Some(Some(r)) = observed_accel_rates.get(i) {
            assert!(
                r.is_finite() && *r > 0.0,
                "observed accelerator rate must be positive and finite, got {r}"
            );
            a.rate = *r;
        }
    }
    let fresh = solve_multi(&corrected);
    // Warm start: clamp the prior split to the item total, then keep it if
    // the corrected model says it already beats the fresh solve.
    let mut prior_accel: Vec<u64> = prior.accel_items.clone();
    prior_accel.resize(corrected.accelerators.len(), 0);
    let mut assigned: u64 = 0;
    for n in prior_accel.iter_mut() {
        *n = (*n).min(corrected.items - assigned);
        assigned += *n;
    }
    let prior_cpu = corrected.items - assigned;
    let prior_time = corrected.predicted_time(prior_cpu, &prior_accel);
    if prior_time < fresh.predicted_time {
        MultiSolution {
            cpu_items: prior_cpu,
            accel_items: prior_accel,
            predicted_time: prior_time,
        }
    } else {
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accel(rate: f64) -> AcceleratorSide {
        AcceleratorSide {
            rate,
            transfer: TransferModel::NONE,
            link_bandwidth: 1e9,
            granularity: 1,
        }
    }

    #[test]
    fn degenerates_to_two_way_solution() {
        // CPU 100/s, one GPU 400/s, no transfers: 80/20 like solve().
        let p = MultiDeviceProblem {
            items: 1000,
            cpu_rate: 100.0,
            accelerators: vec![accel(400.0)],
        };
        let s = solve_multi(&p);
        assert_eq!(s.cpu_items + s.accel_items[0], 1000);
        assert_eq!(s.accel_items[0], 800);
    }

    #[test]
    fn splits_proportionally_to_rates_across_three_devices() {
        let p = MultiDeviceProblem {
            items: 7000,
            cpu_rate: 100.0,
            accelerators: vec![accel(200.0), accel(400.0)],
        };
        let s = solve_multi(&p);
        assert_eq!(s.cpu_items + s.accel_items[0] + s.accel_items[1], 7000);
        // Shares proportional to 1:2:4.
        assert!((s.cpu_items as f64 - 1000.0).abs() <= 2.0, "{s:?}");
        assert!((s.accel_items[0] as f64 - 2000.0).abs() <= 2.0);
        assert!((s.accel_items[1] as f64 - 4000.0).abs() <= 2.0);
    }

    #[test]
    fn equalizes_finish_times() {
        let p = MultiDeviceProblem {
            items: 100_000,
            cpu_rate: 321.0,
            accelerators: vec![
                AcceleratorSide {
                    rate: 1234.0,
                    transfer: TransferModel {
                        h2d_bytes_per_item: 4.0,
                        d2h_bytes_per_item: 4.0,
                        fixed_bytes: 0.0,
                    },
                    link_bandwidth: 1e5,
                    granularity: 1,
                },
                accel(777.0),
            ],
        };
        let s = solve_multi(&p);
        let tc = s.cpu_items as f64 / p.cpu_rate;
        let t0 = s.accel_items[0] as f64 * p.accelerators[0].time_per_item();
        let t1 = s.accel_items[1] as f64 * p.accelerators[1].time_per_item();
        for t in [t0, t1] {
            assert!((t - tc).abs() / tc < 0.01, "tc={tc} t={t}");
        }
    }

    #[test]
    fn drops_accelerator_with_unamortisable_fixed_cost() {
        // Accelerator 1 has a huge fixed transfer (e.g. a large model
        // upload) on a tiny problem: it must be dropped.
        let p = MultiDeviceProblem {
            items: 100,
            cpu_rate: 100.0,
            accelerators: vec![
                accel(400.0),
                AcceleratorSide {
                    rate: 1e6,
                    transfer: TransferModel {
                        h2d_bytes_per_item: 0.0,
                        d2h_bytes_per_item: 0.0,
                        fixed_bytes: 1e12,
                    },
                    link_bandwidth: 1e9,
                    granularity: 1,
                },
            ],
        };
        let s = solve_multi(&p);
        assert_eq!(s.accel_items[1], 0);
        assert!(s.accel_items[0] > 0);
        assert_eq!(s.cpu_items + s.accel_items[0], 100);
    }

    #[test]
    fn granularity_rounding_conserves_total() {
        let p = MultiDeviceProblem {
            items: 10_000,
            cpu_rate: 100.0,
            accelerators: vec![
                AcceleratorSide {
                    rate: 300.0,
                    transfer: TransferModel::NONE,
                    link_bandwidth: 1e9,
                    granularity: 32,
                },
                AcceleratorSide {
                    rate: 500.0,
                    transfer: TransferModel::NONE,
                    link_bandwidth: 1e9,
                    granularity: 64,
                },
            ],
        };
        let s = solve_multi(&p);
        assert_eq!(s.accel_items[0] % 32, 0);
        assert_eq!(s.accel_items[1] % 64, 0);
        assert_eq!(s.cpu_items + s.accel_items.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn empty_accelerator_list_gives_cpu_everything() {
        let p = MultiDeviceProblem {
            items: 500,
            cpu_rate: 10.0,
            accelerators: vec![],
        };
        let s = solve_multi(&p);
        assert_eq!(s.cpu_items, 500);
        assert!((s.predicted_time - 50.0).abs() < 1e-9);
    }

    #[test]
    fn observed_resolve_shifts_load_to_the_truly_faster_device() {
        // The model thought both accelerators ran at 400/s; in truth the
        // first runs at 100/s. The corrected split must shrink its share.
        let p = MultiDeviceProblem {
            items: 9_000,
            cpu_rate: 100.0,
            accelerators: vec![accel(400.0), accel(400.0)],
        };
        let prior = solve_multi(&p);
        let re = resolve_multi_with_observations(&p, &prior, 100.0, &[Some(100.0), None]);
        assert_eq!(re.cpu_items + re.accel_items.iter().sum::<u64>(), 9_000);
        assert!(
            re.accel_items[0] < re.accel_items[1],
            "slow device must get less: {re:?}"
        );
        assert!(re.accel_items[0] < prior.accel_items[0]);
    }

    #[test]
    fn observed_resolve_keeps_a_prior_the_corrected_model_prefers() {
        let p = MultiDeviceProblem {
            items: 1_000,
            cpu_rate: 100.0,
            accelerators: vec![accel(400.0)],
        };
        let prior = solve_multi(&p);
        // Observations match the model exactly: the prior must survive
        // (predicted times tie at worst; the prior wins only strictly, so
        // either way the split is unchanged).
        let re = resolve_multi_with_observations(&p, &prior, 100.0, &[Some(400.0)]);
        assert_eq!(re.cpu_items, prior.cpu_items);
        assert_eq!(re.accel_items, prior.accel_items);
    }

    #[test]
    fn predicted_time_matches_solver_prediction() {
        let p = MultiDeviceProblem {
            items: 7_000,
            cpu_rate: 100.0,
            accelerators: vec![accel(200.0), accel(400.0)],
        };
        let s = solve_multi(&p);
        let t = p.predicted_time(s.cpu_items, &s.accel_items);
        assert!((t - s.predicted_time).abs() < 1e-12);
    }

    #[test]
    fn identical_accelerators_get_identical_shares() {
        let p = MultiDeviceProblem {
            items: 9_000,
            cpu_rate: 100.0,
            accelerators: vec![accel(400.0), accel(400.0)],
        };
        let s = solve_multi(&p);
        assert_eq!(s.accel_items[0], s.accel_items[1]);
    }
}
