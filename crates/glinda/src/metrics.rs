//! The two derived metrics of the Glinda partitioning model.
//!
//! The ICPP'15 paper (§II-A) describes the partitioning model as "an
//! equation with two derived metrics — (1) the relative hardware capability
//! (the ratio of GPU throughput to CPU throughput), and (2) the GPU
//! computation to data transfer gap (the ratio of GPU throughput to
//! data-transfer bandwidth)". Both vary with platform, application and
//! dataset, which is why they are estimated by profiling rather than read
//! from spec sheets.

use crate::problem::PartitionProblem;
use serde::{Deserialize, Serialize};

/// The derived metrics for one (platform, kernel, dataset) combination.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionMetrics {
    /// Relative hardware capability `R = gpu_rate / cpu_rate` (>1 means the
    /// GPU is faster on this kernel).
    pub relative_capability: f64,
    /// GPU computation to data-transfer gap `G`: GPU kernel throughput
    /// divided by the interconnect's throughput *in items* (bytes/s over
    /// bytes-per-item). `G ≫ 1` means the kernel is transfer-dominated —
    /// moving an item costs far more than computing it (BlackScholes: the
    /// paper reports transfers 37.5× the kernel time).
    pub compute_transfer_gap: f64,
}

impl PartitionMetrics {
    /// Derive the metrics from a problem description.
    pub fn of(problem: &PartitionProblem) -> Self {
        let bpi = problem.transfer.bytes_per_item();
        let transfer_items_per_sec = if bpi > 0.0 {
            problem.link_bandwidth / bpi
        } else {
            f64::INFINITY
        };
        PartitionMetrics {
            relative_capability: problem.gpu_rate / problem.cpu_rate,
            compute_transfer_gap: if transfer_items_per_sec.is_infinite() {
                0.0
            } else {
                problem.gpu_rate / transfer_items_per_sec
            },
        }
    }

    /// `true` when offloading an item costs more in transfer than it saves
    /// in compute — the regime where static partitioning assigns the larger
    /// share to the CPU even against a faster GPU.
    pub fn transfer_dominated(&self) -> bool {
        self.compute_transfer_gap > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::TransferModel;

    #[test]
    fn metrics_from_problem() {
        let p = PartitionProblem {
            items: 1000,
            cpu_rate: 100.0,
            gpu_rate: 400.0,
            transfer: TransferModel {
                h2d_bytes_per_item: 4.0,
                d2h_bytes_per_item: 4.0,
                fixed_bytes: 0.0,
            },
            link_bandwidth: 800.0,
            gpu_granularity: 1,
        };
        let m = PartitionMetrics::of(&p);
        assert!((m.relative_capability - 4.0).abs() < 1e-12);
        // Link moves 800/8 = 100 items/s; GPU computes 400 items/s => G = 4.
        assert!((m.compute_transfer_gap - 4.0).abs() < 1e-12);
        assert!(m.transfer_dominated());
    }

    #[test]
    fn no_transfer_means_zero_gap() {
        let p = PartitionProblem {
            items: 10,
            cpu_rate: 1.0,
            gpu_rate: 10.0,
            transfer: TransferModel::NONE,
            link_bandwidth: 1.0,
            gpu_granularity: 1,
        };
        let m = PartitionMetrics::of(&p);
        assert_eq!(m.compute_transfer_gap, 0.0);
        assert!(!m.transfer_dominated());
    }
}
