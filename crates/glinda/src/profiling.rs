//! Low-cost profiling: estimating device throughputs.
//!
//! Glinda does not trust spec sheets — it runs a small probe of the actual
//! kernel on each device and derives sustained application throughputs from
//! the measured times ("a low-cost profiling to estimate the values of the
//! two metrics, ensuring a realistic estimation adaptive to any changes of
//! platforms, applications, and datasets", §II-A).
//!
//! In this reproduction, "running a probe" means timing the kernel on the
//! simulated devices. The probe *includes* each device's launch overhead —
//! exactly the estimation noise a real profiling run has — so estimates
//! converge to the true sustained rate as the probe grows, and tests verify
//! that convergence.

use hetero_platform::{KernelProfile, Platform};
use serde::{Deserialize, Serialize};

/// Profiled sustained throughputs for one kernel on one platform.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RateEstimates {
    /// Whole-CPU throughput, items/s.
    pub cpu_rate: f64,
    /// Whole-GPU kernel throughput (no transfers), items/s.
    pub gpu_rate: f64,
    /// Probe size used, items per device.
    pub probe_items: u64,
}

/// Profile `profile` on `platform` with a probe of `probe_items` items per
/// device. Panics if the platform has no GPU.
pub fn estimate_rates(
    platform: &Platform,
    profile: &KernelProfile,
    probe_items: u64,
) -> RateEstimates {
    assert!(probe_items > 0, "probe must be non-empty");
    let cpu = platform.cpu();
    let gpu = platform.gpu().expect("platform has no GPU to profile");
    let t_cpu = cpu
        .exec_time_whole_device(profile, probe_items)
        .as_secs_f64();
    let t_gpu = gpu
        .exec_time_whole_device(profile, probe_items)
        .as_secs_f64();
    RateEstimates {
        cpu_rate: probe_items as f64 / t_cpu,
        gpu_rate: probe_items as f64 / t_gpu,
        probe_items,
    }
}

/// A sensible default probe: 1/32 of the problem, but at least 4 GPU
/// granules, at most the whole problem. Mirrors the "low-cost" constraint —
/// profiling must stay a small fraction of the real run.
pub fn default_probe_items(items: u64, gpu_granularity: u64) -> u64 {
    let candidate = (items / 32).max(4 * gpu_granularity.max(1));
    candidate.min(items.max(1))
}

/// Profile one specific device (used on multi-accelerator platforms, where
/// each accelerator is probed independently — "identical or non-identical").
pub fn estimate_device_rate(
    device: &hetero_platform::Device,
    profile: &KernelProfile,
    probe_items: u64,
) -> f64 {
    assert!(probe_items > 0, "probe must be non-empty");
    let t = device
        .exec_time_whole_device(profile, probe_items)
        .as_secs_f64();
    probe_items as f64 / t
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_platform::Platform;

    #[test]
    fn estimates_converge_to_sustained_rate_as_probe_grows() {
        let platform = Platform::icpp15();
        let profile = KernelProfile::compute_only(1e6);
        let truth_gpu = platform.gpu().unwrap().throughput_items_per_sec(&profile);
        let small = estimate_rates(&platform, &profile, 64);
        let large = estimate_rates(&platform, &profile, 1 << 20);
        let err_small = (small.gpu_rate - truth_gpu).abs() / truth_gpu;
        let err_large = (large.gpu_rate - truth_gpu).abs() / truth_gpu;
        assert!(err_large < err_small);
        assert!(err_large < 1e-3, "large-probe error {err_large}");
    }

    #[test]
    fn launch_overhead_biases_small_probes_downward() {
        let platform = Platform::icpp15();
        let profile = KernelProfile::compute_only(1e6);
        let truth = platform.gpu().unwrap().throughput_items_per_sec(&profile);
        let est = estimate_rates(&platform, &profile, 32);
        assert!(est.gpu_rate < truth);
    }

    #[test]
    fn relative_capability_estimate_is_realistic() {
        // A pure-compute SP kernel on the ICPP'15 platform: capability ratio
        // should approach the peak ratio 3519.3/384 ≈ 9.2 for equal
        // efficiencies.
        let platform = Platform::icpp15();
        let profile = KernelProfile::compute_only(1e5);
        let est = estimate_rates(&platform, &profile, 1 << 22);
        let r = est.gpu_rate / est.cpu_rate;
        assert!(
            (r - 3519.3 / 384.0).abs() / (3519.3 / 384.0) < 0.01,
            "R={r}"
        );
    }

    #[test]
    fn default_probe_bounds() {
        assert_eq!(default_probe_items(32_000, 32), 1000);
        assert_eq!(default_probe_items(100, 32), 100); // capped at n
        assert_eq!(default_probe_items(1 << 20, 1), (1 << 20) / 32);
    }

    #[test]
    #[should_panic(expected = "probe must be non-empty")]
    fn rejects_zero_probe() {
        let _ = estimate_rates(&Platform::icpp15(), &KernelProfile::compute_only(1.0), 0);
    }
}
