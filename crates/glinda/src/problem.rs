//! The inputs to the partitioning model.

use serde::{Deserialize, Serialize};

/// Host↔device transfer volume incurred by offloading `ng` items of a
/// kernel to the GPU: `h2d_per_item·ng + d2h_per_item·ng + fixed` bytes.
///
/// `fixed` captures whole-buffer transfers that every GPU partition pays
/// regardless of its size (e.g. MatrixMul uploads all of `B` no matter how
/// few rows of `A` the GPU computes). A zero model describes kernels whose
/// data is already device-resident (interior kernels under SP-Unified, or
/// loop iterations without synchronisation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Host→device bytes per offloaded item.
    pub h2d_bytes_per_item: f64,
    /// Device→host bytes per offloaded item.
    pub d2h_bytes_per_item: f64,
    /// Fixed bytes per offload decision (size-independent).
    pub fixed_bytes: f64,
}

impl TransferModel {
    /// No transfers (device-resident data).
    pub const NONE: TransferModel = TransferModel {
        h2d_bytes_per_item: 0.0,
        d2h_bytes_per_item: 0.0,
        fixed_bytes: 0.0,
    };

    /// Total bytes for offloading `items` items.
    pub fn bytes(&self, items: u64) -> f64 {
        self.fixed_bytes + (self.h2d_bytes_per_item + self.d2h_bytes_per_item) * items as f64
    }

    /// Variable bytes per item (both directions).
    pub fn bytes_per_item(&self) -> f64 {
        self.h2d_bytes_per_item + self.d2h_bytes_per_item
    }
}

/// One partitioning problem: a single kernel (or kernel fusion) of `items`
/// items to split across CPU and GPU.
///
/// Rates are *sustained application throughputs* in items/second — the
/// quantities Glinda estimates by profiling (not hardware peaks). The
/// transfer side carries the interconnect's bandwidth and the volume model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PartitionProblem {
    /// Total data items.
    pub items: u64,
    /// Whole-CPU sustained throughput, items/s.
    pub cpu_rate: f64,
    /// Whole-GPU sustained kernel throughput (excluding transfers), items/s.
    pub gpu_rate: f64,
    /// Transfer volume model for the GPU partition.
    pub transfer: TransferModel,
    /// Interconnect bandwidth, bytes/s.
    pub link_bandwidth: f64,
    /// Granularity the GPU partition is rounded up to (warp size × SMs is
    /// typical; 1 disables rounding).
    pub gpu_granularity: u64,
}

impl PartitionProblem {
    /// Seconds the GPU needs for `ng` offloaded items (kernel + transfers).
    pub fn gpu_time(&self, ng: u64) -> f64 {
        if ng == 0 {
            return 0.0;
        }
        ng as f64 / self.gpu_rate + self.transfer.bytes(ng) / self.link_bandwidth
    }

    /// Seconds the CPU needs for `nc` items.
    pub fn cpu_time(&self, nc: u64) -> f64 {
        if nc == 0 {
            return 0.0;
        }
        nc as f64 / self.cpu_rate
    }

    /// Predicted co-execution time for a split of `ng` GPU items (the rest
    /// on the CPU): the slower side dominates.
    pub fn hybrid_time(&self, ng: u64) -> f64 {
        self.gpu_time(ng).max(self.cpu_time(self.items - ng))
    }

    /// Validate rates/bandwidth are positive and finite.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("cpu_rate", self.cpu_rate),
            ("gpu_rate", self.gpu_rate),
            ("link_bandwidth", self.link_bandwidth),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.gpu_granularity == 0 {
            return Err("gpu_granularity must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prob() -> PartitionProblem {
        PartitionProblem {
            items: 1000,
            cpu_rate: 100.0,
            gpu_rate: 400.0,
            transfer: TransferModel {
                h2d_bytes_per_item: 4.0,
                d2h_bytes_per_item: 4.0,
                fixed_bytes: 800.0,
            },
            link_bandwidth: 800.0,
            gpu_granularity: 32,
        }
    }

    #[test]
    fn transfer_volume() {
        let t = prob().transfer;
        assert_eq!(t.bytes(100), 800.0 + 8.0 * 100.0);
        assert_eq!(t.bytes_per_item(), 8.0);
        assert_eq!(TransferModel::NONE.bytes(1000), 0.0);
    }

    #[test]
    fn device_times() {
        let p = prob();
        // GPU: 400 items/s kernel; 100 items => 0.25s + (800+800)/800 = 2.25s.
        assert!((p.gpu_time(100) - 2.25).abs() < 1e-12);
        // CPU: 100 items/s => 900 items = 9s.
        assert!((p.cpu_time(900) - 9.0).abs() < 1e-12);
        assert_eq!(p.gpu_time(0), 0.0);
        assert_eq!(p.cpu_time(0), 0.0);
    }

    #[test]
    fn hybrid_takes_max() {
        let p = prob();
        let t = p.hybrid_time(100);
        assert!((t - 9.0).abs() < 1e-12); // CPU side dominates
    }

    #[test]
    fn validation() {
        assert!(prob().validate().is_ok());
        let mut bad = prob();
        bad.cpu_rate = 0.0;
        assert!(bad.validate().is_err());
        let mut bad2 = prob();
        bad2.gpu_granularity = 0;
        assert!(bad2.validate().is_err());
    }
}
