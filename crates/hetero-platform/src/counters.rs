//! Execution counters collected during a simulated run.
//!
//! These feed the paper's figures directly: per-device item counts become
//! the *partitioning ratios* of Figures 6, 8 and 10; transfer counters
//! explain the transfer-dominated behaviours discussed in the text.

use crate::device::DeviceId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Per-device accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCounters {
    /// Total busy time summed over the device's slots.
    pub busy: SimTime,
    /// Task instances executed.
    pub tasks: u64,
    /// Data items processed (sum of instance partition sizes).
    pub items: u64,
}

impl DeviceCounters {
    /// Slot utilisation over a window: `busy / (window × slots)`, clamped
    /// to `[0, 1]`. Zero for an empty window.
    pub fn utilization(&self, window: SimTime, slots: usize) -> f64 {
        let cap = window.as_secs_f64() * slots.max(1) as f64;
        if cap <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / cap).clamp(0.0, 1.0)
        }
    }
}

/// Transfer accounting across all links.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferCounters {
    /// Number of individual transfers issued.
    pub count: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total time spent in transfers (not necessarily on the critical path).
    pub time: SimTime,
}

/// Aggregated run counters.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformCounters {
    /// Per-device counters, indexed by `DeviceId.0`.
    pub devices: Vec<DeviceCounters>,
    /// Transfer totals.
    pub transfers: TransferCounters,
    /// Total virtual time spent on dynamic scheduling decisions.
    pub sched_overhead: SimTime,
    /// Number of scheduling decisions taken.
    pub sched_decisions: u64,
}

impl PlatformCounters {
    /// Counters for a platform with `n_devices` devices.
    pub fn new(n_devices: usize) -> Self {
        PlatformCounters {
            devices: vec![DeviceCounters::default(); n_devices],
            transfers: TransferCounters::default(),
            sched_overhead: SimTime::ZERO,
            sched_decisions: 0,
        }
    }

    /// Record a task instance of `items` items running for `busy` on `dev`.
    pub fn record_task(&mut self, dev: DeviceId, items: u64, busy: SimTime) {
        let c = &mut self.devices[dev.0];
        c.tasks += 1;
        c.items += items;
        c.busy += busy;
    }

    /// Record one transfer.
    pub fn record_transfer(&mut self, bytes: u64, time: SimTime) {
        self.transfers.count += 1;
        self.transfers.bytes += bytes;
        self.transfers.time += time;
    }

    /// Record one scheduling decision costing `t`.
    pub fn record_sched(&mut self, t: SimTime) {
        self.sched_decisions += 1;
        self.sched_overhead += t;
    }

    /// Fraction of all processed items handled by `dev` — the partitioning
    /// ratio reported in the paper's Figures 6, 8 and 10.
    pub fn item_share(&self, dev: DeviceId) -> f64 {
        let total: u64 = self.devices.iter().map(|d| d.items).sum();
        if total == 0 {
            0.0
        } else {
            self.devices[dev.0].items as f64 / total as f64
        }
    }

    /// Fraction of task instances assigned to `dev` — how the paper reports
    /// ratios for the dynamic strategies ("we count the number of task
    /// instances assigned to the CPU and the GPU, and convert it to the
    /// ratio").
    pub fn task_share(&self, dev: DeviceId) -> f64 {
        let total: u64 = self.devices.iter().map(|d| d.tasks).sum();
        if total == 0 {
            0.0
        } else {
            self.devices[dev.0].tasks as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut c = PlatformCounters::new(2);
        c.record_task(DeviceId(0), 30, SimTime::from_millis(1));
        c.record_task(DeviceId(1), 70, SimTime::from_millis(2));
        assert!((c.item_share(DeviceId(0)) - 0.3).abs() < 1e-12);
        assert!((c.item_share(DeviceId(1)) - 0.7).abs() < 1e-12);
        let s = c.task_share(DeviceId(0)) + c.task_share(DeviceId(1));
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_zero_share() {
        let c = PlatformCounters::new(2);
        assert_eq!(c.item_share(DeviceId(0)), 0.0);
        assert_eq!(c.task_share(DeviceId(1)), 0.0);
    }

    #[test]
    fn utilization_normalises_by_slots_and_window() {
        let mut c = PlatformCounters::new(1);
        c.record_task(DeviceId(0), 10, SimTime::from_millis(6));
        let d = c.devices[0];
        // 6 ms of slot-busy over a 2 ms window on 4 slots = 75%.
        assert!((d.utilization(SimTime::from_millis(2), 4) - 0.75).abs() < 1e-12);
        assert_eq!(d.utilization(SimTime::ZERO, 4), 0.0);
        // Saturates at 1.0 even if busy accounting exceeds the window.
        assert_eq!(d.utilization(SimTime::from_millis(1), 1), 1.0);
    }

    #[test]
    fn transfer_and_sched_accounting() {
        let mut c = PlatformCounters::new(1);
        c.record_transfer(1024, SimTime::from_micros(3));
        c.record_transfer(2048, SimTime::from_micros(5));
        assert_eq!(c.transfers.count, 2);
        assert_eq!(c.transfers.bytes, 3072);
        assert_eq!(c.transfers.time, SimTime::from_micros(8));
        c.record_sched(SimTime::from_micros(8));
        assert_eq!(c.sched_decisions, 1);
        assert_eq!(c.sched_overhead, SimTime::from_micros(8));
    }
}
