//! Seed-deterministic random platform and fault-schedule generators — the
//! platform half of the scenario fuzzing harness (see DESIGN.md §8.5).
//!
//! Both generators draw exclusively from a caller-supplied [`FaultRng`]
//! (SplitMix64), so a scenario seed reproduces the exact same platform and
//! schedule on every run, every machine. Generated schedules are valid *by
//! construction* and additionally asserted through
//! [`FaultSchedule::validate_for`] before being returned: the fuzzer's job
//! is to explore the behaviour of valid inputs, not the validator's
//! rejection paths (those have dedicated unit tests).

use crate::fault::{FaultRng, FaultSchedule};
use crate::{DeviceId, DeviceKind, DeviceSpec, LinkSpec, Platform, SimTime};
use serde::{Deserialize, Serialize};

/// A serializable platform description: everything [`Platform::builder`]
/// needs, in builder order. [`Platform`] itself keys its link table by
/// memory-space pairs (not JSON-friendly), so fuzz scenarios persist this
/// spec form and rebuild the platform on replay.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// The host CPU.
    pub cpu: DeviceSpec,
    /// Each accelerator with its host link, in device-id order (device `i+1`).
    pub accels: Vec<(DeviceSpec, LinkSpec)>,
    /// Per-decision dynamic-scheduling overhead.
    pub sched_overhead: SimTime,
}

impl PlatformSpec {
    /// Instantiate the platform this spec describes.
    pub fn build(&self) -> Platform {
        let mut b = Platform::builder().cpu(self.cpu.clone());
        for (spec, link) in &self.accels {
            b = b.accelerator(spec.clone(), link.clone());
        }
        b.sched_overhead(self.sched_overhead).build()
    }

    /// Total device count (host + accelerators).
    pub fn device_count(&self) -> usize {
        1 + self.accels.len()
    }
}

/// Uniform integer in `[0, n)`. SplitMix64 output is uniform enough for
/// scenario generation; modulo bias at these tiny ranges is irrelevant.
pub fn pick(rng: &mut FaultRng, n: usize) -> usize {
    debug_assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// Uniform float in `[lo, hi)`.
pub fn range_f64(rng: &mut FaultRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

/// `true` with probability `p`.
pub fn chance(rng: &mut FaultRng, p: f64) -> bool {
    rng.next_f64() < p
}

/// Generate a random-but-plausible heterogeneous platform: one host CPU
/// (2–8 hardware threads) plus 1–3 GPU accelerators with randomized peak
/// rates, link bandwidths (1–16 GB/s) and latencies (0–30 µs), and a
/// random dynamic-scheduling overhead (0–10 µs). Device counts stay small
/// so shrunk reproducers stay readable; rates span enough orders of
/// magnitude to exercise both CPU-favoured and GPU-favoured plans.
pub fn gen_platform(rng: &mut FaultRng) -> Platform {
    gen_platform_spec(rng).build()
}

/// [`gen_platform`], returning the serializable [`PlatformSpec`] form the
/// fuzz corpus persists.
pub fn gen_platform_spec(rng: &mut FaultRng) -> PlatformSpec {
    let threads = [2u32, 4, 6, 8][pick(rng, 4)];
    let cpu_peak = range_f64(rng, 40.0, 500.0);
    let cpu = DeviceSpec {
        name: format!("fuzz-cpu-{threads}t"),
        kind: DeviceKind::Cpu {
            cores: threads,
            threads,
        },
        frequency_ghz: range_f64(rng, 1.0, 3.0),
        peak_gflops_sp: cpu_peak,
        peak_gflops_dp: cpu_peak / 2.0,
        mem_bandwidth_gbs: range_f64(rng, 15.0, 60.0),
        mem_capacity_gb: 16.0,
        launch_overhead: SimTime::from_nanos(pick(rng, 20_000) as u64),
    };
    let mut accels = Vec::new();
    let n_accels = 1 + pick(rng, 3);
    for a in 0..n_accels {
        let gpu_peak = range_f64(rng, 150.0, 4000.0);
        let spec = DeviceSpec {
            name: format!("fuzz-gpu-{a}"),
            kind: DeviceKind::Gpu {
                sms: [2u32, 4, 8, 13][pick(rng, 4)],
                warp_size: 32,
            },
            frequency_ghz: range_f64(rng, 0.7, 1.5),
            peak_gflops_sp: gpu_peak,
            peak_gflops_dp: gpu_peak / 3.0,
            mem_bandwidth_gbs: range_f64(rng, 80.0, 300.0),
            mem_capacity_gb: 6.0,
            launch_overhead: SimTime::from_nanos(pick(rng, 20_000) as u64),
        };
        let link = LinkSpec::new(
            range_f64(rng, 1.0, 16.0),
            SimTime::from_nanos(pick(rng, 30_000) as u64),
        );
        accels.push((spec, link));
    }
    PlatformSpec {
        cpu,
        accels,
        sched_overhead: SimTime::from_nanos(pick(rng, 10_000) as u64),
    }
}

/// A random window inside `[0, horizon)`, occasionally open-ended
/// (`until = SimTime::MAX`). Always non-empty (`from < until`).
fn gen_window(rng: &mut FaultRng, horizon: SimTime) -> (SimTime, SimTime) {
    let h = horizon.as_nanos().max(2);
    let from = SimTime::from_nanos(rng.next_u64() % (h / 2));
    if chance(rng, 0.2) {
        return (from, SimTime::MAX);
    }
    let len = 1 + rng.next_u64() % (h / 2);
    (from, from + SimTime::from_nanos(len))
}

/// A random non-host device on `platform`.
fn gen_accel(rng: &mut FaultRng, platform: &Platform) -> DeviceId {
    DeviceId(1 + pick(rng, platform.devices.len() - 1))
}

/// Generate a random valid [`FaultSchedule`] for `platform`: 0–4 events
/// drawn across every fault kind (transient task/transfer faults, dropout,
/// throttle ramps, silent corruption, flaky windows, profile perturbation,
/// link degradation, correlated domain outages), with windows inside
/// `[0, horizon)` and probabilities/factors inside the validated ranges.
/// When the platform has ≥ 3 devices, the schedule may carry one correlated
/// fault domain over a random subset of accelerators, and domain events may
/// reference it. The result always passes
/// [`FaultSchedule::validate_for`] — asserted before returning.
pub fn gen_fault_schedule(
    rng: &mut FaultRng,
    platform: &Platform,
    horizon: SimTime,
) -> FaultSchedule {
    let mut s = FaultSchedule::new(rng.next_u64());
    // Maybe one correlated domain over ≥ 2 accelerators (never the host, so
    // both outage flavours stay valid).
    let accel_count = platform.devices.len() - 1;
    if accel_count >= 2 && chance(rng, 0.4) {
        let members: Vec<DeviceId> = (1..=accel_count).map(DeviceId).collect();
        s = s.with_domain(
            "fuzz-rail",
            members,
            range_f64(rng, 0.0, 1.0),
            range_f64(rng, 0.1, 0.6),
            SimTime::from_nanos(1 + rng.next_u64() % horizon.as_nanos().max(2)),
        );
    }
    let n_events = pick(rng, 5);
    for _ in 0..n_events {
        let (from, until) = gen_window(rng, horizon);
        let kinds = if s.domains.is_empty() { 8 } else { 9 };
        s = match pick(rng, kinds) {
            0 => {
                let dev = if chance(rng, 0.3) {
                    None
                } else {
                    Some(DeviceId(pick(rng, platform.devices.len())))
                };
                s.with_task_faults(dev, range_f64(rng, 0.0, 0.4), from, until)
            }
            1 => s.with_transfer_faults(range_f64(rng, 0.0, 0.4), from, until),
            2 => s.with_dropout(gen_accel(rng, platform), from),
            3 => {
                let dev = DeviceId(pick(rng, platform.devices.len()));
                let (a, b) = (range_f64(rng, 1.0, 6.0), range_f64(rng, 1.0, 6.0));
                s.with_throttle(dev, from, until, a, b)
            }
            4 => s.with_silent_corruption(
                DeviceId(pick(rng, platform.devices.len())),
                range_f64(rng, 0.0, 0.2),
                from,
                until,
            ),
            5 => s.with_flaky(
                DeviceId(pick(rng, platform.devices.len())),
                range_f64(rng, 0.0, 0.3),
                from,
                until,
            ),
            6 => {
                // Stay inside the proven misprediction envelope: clearly
                // under- or over-estimated, never exactly nominal.
                let factor = if chance(rng, 0.5) {
                    range_f64(rng, 0.3, 0.85)
                } else {
                    range_f64(rng, 1.2, 3.0)
                };
                s.with_profile_perturb(
                    DeviceId(pick(rng, platform.devices.len())),
                    factor,
                    from,
                    until,
                )
            }
            7 => s.with_link_degrade(
                gen_accel(rng, platform),
                range_f64(rng, 0.1, 1.0),
                range_f64(rng, 1.0, 4.0),
                from,
                until,
            ),
            _ => {
                if chance(rng, 0.5) {
                    s.with_domain_throttle(0, from, until, range_f64(rng, 1.5, 4.0))
                } else {
                    s.with_domain_dropout(0, from)
                }
            }
        };
    }
    assert_eq!(
        s.validate_for(platform),
        Ok(()),
        "generated schedules must be valid by construction"
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_seed_deterministic() {
        for seed in 0..50u64 {
            let mk = || {
                let mut rng = FaultRng::new(seed);
                let p = gen_platform(&mut rng);
                let s = gen_fault_schedule(&mut rng, &p, SimTime::from_millis(20));
                (p, s)
            };
            let (p1, s1) = mk();
            let (p2, s2) = mk();
            assert_eq!(p1.devices.len(), p2.devices.len());
            assert_eq!(
                serde_json::to_string(&p1).unwrap(),
                serde_json::to_string(&p2).unwrap()
            );
            assert_eq!(s1, s2);
        }
    }

    #[test]
    fn generated_platforms_are_well_formed() {
        for seed in 0..100u64 {
            let mut rng = FaultRng::new(seed);
            let p = gen_platform(&mut rng);
            assert!(p.devices.len() >= 2 && p.devices.len() <= 4);
            assert!(p.cpu().spec.kind.is_cpu());
            for acc in p.accelerators() {
                assert!(acc.spec.kind.is_gpu());
                assert!(p.link(crate::MemSpaceId::HOST, acc.mem_space).is_some());
            }
        }
    }

    #[test]
    fn generated_schedules_validate_for_their_platform() {
        for seed in 0..200u64 {
            let mut rng = FaultRng::new(seed);
            let p = gen_platform(&mut rng);
            let s = gen_fault_schedule(&mut rng, &p, SimTime::from_millis(50));
            assert_eq!(s.validate_for(&p), Ok(()));
            assert!(s.events.len() <= 4);
        }
    }
}
