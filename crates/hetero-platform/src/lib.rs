#![warn(missing_docs)]

//! # hetero-platform
//!
//! A deterministic, discrete-event simulator of CPU+GPU heterogeneous
//! platforms, used as the hardware substrate for reproducing
//! *"Matchmaking Applications and Partitioning Strategies for Efficient
//! Execution on Heterogeneous Platforms"* (Shen, Varbanescu, Martorell,
//! Sips — ICPP 2015).
//!
//! The paper's conclusions are about the *relative* behaviour of workload
//! partitioning strategies: which strategy wins for which application class,
//! by roughly what factor, and where the crossovers fall. Those relations are
//! fully determined by a small number of hardware ratios — the relative
//! compute capability of the devices, their memory bandwidths, the
//! host↔device interconnect bandwidth, and the fixed overheads of kernel
//! launches and runtime scheduling decisions. This crate models exactly those
//! quantities:
//!
//! * [`SimTime`] — integer nanosecond virtual time; every experiment is
//!   bit-for-bit reproducible.
//! * [`DeviceSpec`] / [`Device`] — *roofline* execution model per device:
//!   a kernel's execution time is the maximum of its compute time
//!   (FLOPs ÷ achieved FLOP rate) and its memory time (bytes ÷ achieved
//!   bandwidth), plus a per-invocation launch overhead.
//! * [`LinkSpec`] — host↔device interconnect (e.g. PCIe): latency +
//!   bytes ÷ bandwidth.
//! * [`Platform`] — a set of devices, their memory spaces, and the links
//!   between the spaces. [`Platform::icpp15`] reproduces the paper's
//!   Table III platform (Intel Xeon E5-2620 + Nvidia Tesla K20m).
//! * [`EventQueue`] — a deterministic discrete-event queue used by the
//!   virtual-time executor in the `hetero-runtime` crate.
//! * [`FaultSchedule`] — seeded, replayable injection of platform faults
//!   (transient task/transfer failures, device dropout, throttle ramps)
//!   consumed by the resilient executor in `hetero-runtime`.
//!
//! The substitution of a simulator for the paper's physical testbed is
//! documented in the repository's `DESIGN.md`.

pub mod counters;
pub mod device;
pub mod event;
pub mod fault;
pub mod fuzz;
pub mod link;
pub mod platform;
pub mod time;
pub mod workload;

pub use counters::{DeviceCounters, PlatformCounters, TransferCounters};
pub use device::{Device, DeviceId, DeviceKind, DeviceSpec};
pub use event::EventQueue;
pub use fault::{
    fnv1a_64, validate_version, FaultCounters, FaultDomain, FaultError, FaultEvent, FaultRng,
    FaultSchedule, FaultTrace, KillSchedule, RetryPolicy, TRACE_VERSION,
};
pub use link::LinkSpec;
pub use platform::{MemSpaceId, Platform, PlatformBuilder};
pub use time::SimTime;
pub use workload::{Efficiency, KernelProfile, Precision};
