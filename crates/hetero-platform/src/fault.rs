//! Seeded fault injection: what can go wrong on the platform, and when.
//!
//! The paper's dynamic strategies exist because real platforms misbehave —
//! contention, throttling, degraded links, failing devices. A
//! [`FaultSchedule`] describes such misbehaviour as *timed events* over the
//! simulation's virtual clock:
//!
//! * **transient task faults** — a dispatched task instance fails with a
//!   probability, wasting the attempt's execution time;
//! * **transfer faults** — a host↔device transfer fails and must be
//!   re-issued, paying the wire time again;
//! * **device dropout** — a device permanently disappears at time *t*
//!   (the host CPU can never drop out: it is the failover target of last
//!   resort);
//! * **throttle ramps** — time-varying execution-time multipliers
//!   (thermal throttling, co-tenant contention) interpolated linearly
//!   across a window;
//! * **silent data corruption** — a task completes on time but its output
//!   is wrong; nothing fails, so only an explicit verification policy in
//!   the runtime can catch it;
//! * **flaky devices** — an elevated transient-fault rate on one device:
//!   retries keep succeeding eventually, but the device keeps faulting —
//!   the *gray* failure a health monitor exists to quarantine;
//! * **link degradation** — a host↔device link loses bandwidth and/or
//!   gains latency over a window (a renegotiated PCIe lane width, bus
//!   contention): transfers priced while the window is open cost more;
//! * **correlated fault domains** — devices grouped by a shared failure
//!   root ([`FaultDomain`]: a power rail, a PCIe switch, a thermal zone)
//!   fail *together*: a [`FaultEvent::DomainOutage`] drops or throttles
//!   every member at once, and a fault on one member conditionally raises
//!   its siblings' fault probability for a window (synthesized
//!   [`FaultEvent::TaskFaults`] events, recorded so the run can be
//!   replayed).
//!
//! All randomness comes from a small seeded PRNG ([`FaultRng`], SplitMix64):
//! identical seeds replay identical runs, so every faulty execution is as
//! reproducible as a healthy one. The resilient executor in `hetero-runtime`
//! consumes the schedule together with a [`RetryPolicy`] and reports what
//! happened through [`FaultCounters`]. A schedule plus the events a run
//! synthesized (correlated triggers) exports as a [`FaultTrace`] —
//! deterministic JSON that replays the observed disturbance verbatim.

use crate::device::DeviceId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// SplitMix64: a tiny, fast, seedable PRNG. Statistically solid for fault
/// sampling and — crucially — fully deterministic across platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The generator's current position. `from_cursor(cursor())` rebuilds a
    /// generator whose future draws are identical — the hook the run
    /// journal uses to checkpoint every RNG stream at an epoch boundary.
    pub fn cursor(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator at a previously saved [`FaultRng::cursor`].
    pub fn from_cursor(cursor: u64) -> Self {
        FaultRng { state: cursor }
    }
}

/// FNV-1a over `bytes`, 64-bit. The integrity hash both the run journal
/// and the versioned [`FaultTrace`] header machinery use: tiny, stable,
/// dependency-free, and byte-exact across platforms.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Version check shared by every durable format in the workspace: `Ok` iff
/// `found == expected`, the mismatch pair otherwise. Callers wrap the
/// `Err` payload in their own typed error (`FaultError::TraceVersion`,
/// `JournalError::VersionMismatch`).
pub fn validate_version(found: u32, expected: u32) -> Result<(), (u32, u32)> {
    if found == expected {
        Ok(())
    } else {
        Err((found, expected))
    }
}

/// Deterministic coordinator-death injection: abort a journaled run after
/// the k-th journal record is committed, or at the first event processed at
/// simulated time ≥ `at_time`. Models `kill -9` on the coordinating
/// process mid-run — the crash half of the crash-resume-equivalence
/// oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KillSchedule {
    /// Die once this many journal records (header excluded) have been
    /// committed. `Some(0)` dies right after the header.
    pub after_records: Option<u64>,
    /// Die at the first simulation event processed at `now >= at_time`.
    pub at_time: Option<SimTime>,
    /// Tear the write that the kill interrupts: the journal line that
    /// would have committed at the kill point is left half-written
    /// (truncated, no trailing newline), exercising the torn-line
    /// tolerance of recovery.
    pub torn: bool,
}

impl KillSchedule {
    /// Kill after `n` committed journal records.
    pub fn after_records(n: u64) -> Self {
        KillSchedule {
            after_records: Some(n),
            ..KillSchedule::default()
        }
    }

    /// Kill at the first event at simulated time ≥ `t`.
    pub fn at_time(t: SimTime) -> Self {
        KillSchedule {
            at_time: Some(t),
            ..KillSchedule::default()
        }
    }

    /// Same kill point, but the interrupted journal write is torn.
    pub fn torn(mut self) -> Self {
        self.torn = true;
        self
    }
}

/// One timed platform fault. Windows are half-open: an event is active at
/// `now` when `from <= now < until`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Transient kernel failures: while the window is open, each task
    /// attempt dispatched on a matching device fails with probability
    /// `prob` (the attempt's execution time is wasted and the runtime's
    /// retry policy takes over).
    TaskFaults {
        /// Affected device, or `None` for every device.
        dev: Option<DeviceId>,
        /// Per-attempt failure probability in `[0, 1]`.
        prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Transfer (PCIe) errors: while the window is open, each transfer
    /// attempt fails with probability `prob` and is re-issued at full wire
    /// cost.
    TransferFaults {
        /// Per-attempt failure probability in `[0, 1]`.
        prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Permanent device dropout at `at`: the device stops executing, its
    /// queued and in-flight work must fail over to survivors, and data
    /// resident only in its memory is lost (recovered from the host's
    /// epoch checkpoint). The host (device 0) cannot drop out.
    DeviceDropout {
        /// The device that dies.
        dev: DeviceId,
        /// Virtual time of the failure.
        at: SimTime,
    },
    /// Thermal throttling / contention: execution time on `dev` is
    /// multiplied by a factor interpolated linearly from `start_factor`
    /// (at `from`) to `end_factor` (at `until`) while the window is open.
    /// A factor of 1.0 is nominal speed; 8.0 means 8× slower.
    ThrottleRamp {
        /// Affected device.
        dev: DeviceId,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Multiplier at `from`.
        start_factor: f64,
        /// Multiplier approached at `until`.
        end_factor: f64,
    },
    /// Silent data corruption: while the window is open, each *successful*
    /// task attempt on `dev` produces a wrong result with probability
    /// `prob`. The attempt completes on time and nothing faults — only a
    /// runtime verification policy (`VerificationPolicy::DupCheck`) can
    /// detect the corruption and roll the epoch back to its checkpoint.
    SilentCorruption {
        /// Affected device.
        dev: DeviceId,
        /// Per-successful-attempt corruption probability in `[0, 1]`.
        prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// A flaky device: an elevated transient-fault rate on `dev` while the
    /// window is open. Mechanically this composes with [`FaultEvent::TaskFaults`]
    /// windows as one more independent failure source; semantically it is
    /// the gray failure a device-health circuit breaker quarantines —
    /// retries keep passing, yet the device keeps faulting.
    Flaky {
        /// Affected device.
        dev: DeviceId,
        /// Per-attempt failure probability in `[0, 1]`.
        fault_prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Model misprediction: while the window is open, the throughput the
    /// *planner* estimates for `dev` is multiplied by `factor` — the device
    /// itself runs at true speed. A factor of 0.5 makes the profile claim
    /// the device is half as fast as it really is (so a static plan
    /// under-assigns it); 2.0 makes it look twice as fast (over-assigning
    /// it). This is the misprediction injector for adaptive repartitioning:
    /// nothing faults, nothing throttles — the plan is simply wrong, and
    /// only observing real per-device throughput at run time can reveal it.
    ProfilePerturb {
        /// Device whose *estimated* throughput is skewed.
        dev: DeviceId,
        /// Multiplier applied to the planner-visible rate (> 0, finite).
        factor: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Link degradation: while the window is open, the host↔`dev` link
    /// runs at `bandwidth_factor` × its nominal bandwidth and
    /// `latency_factor` × its nominal latency (a renegotiated PCIe lane
    /// width, bus contention). The link is identified by its accelerator
    /// endpoint — every link in a [`crate::Platform`] connects the host
    /// space to one accelerator's space — so `dev` must not be the host.
    /// `bandwidth_factor: 0.25` means a quarter of nominal bandwidth
    /// (4× slower wire time); both factors must be positive and finite.
    LinkDegrade {
        /// Accelerator endpoint of the degraded host↔device link.
        dev: DeviceId,
        /// Multiplier on the link's nominal bandwidth (> 0, finite).
        bandwidth_factor: f64,
        /// Multiplier on the link's nominal latency (> 0, finite).
        latency_factor: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// A correlated outage of every member of one [`FaultDomain`] (indexed
    /// into [`FaultSchedule::domains`]): the shared failure root itself
    /// fails. With `throttle: Some(f)` every member runs `f`× slower while
    /// the window is open (a browning power rail, a shared heat sink);
    /// with `throttle: None` every member permanently drops out at `from`
    /// (`until` is conventionally [`SimTime::MAX`]) — which is why a
    /// drop-outage domain must not contain the host.
    DomainOutage {
        /// Index into [`FaultSchedule::domains`].
        domain: usize,
        /// Window start (inclusive); the drop instant when `throttle` is
        /// `None`.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// `Some(factor)` throttles members over the window; `None` drops
        /// them permanently at `from`.
        throttle: Option<f64>,
    },
}

fn in_window(now: SimTime, from: SimTime, until: SimTime) -> bool {
    from <= now && now < until
}

/// A group of devices sharing one failure root — a power rail, a PCIe
/// switch, a thermal zone. Membership makes faults *correlated* in two
/// ways: a [`FaultEvent::DomainOutage`] hits every member at once, and a
/// sampled fault (or dropout) on one member conditionally raises its
/// siblings' transient-fault probability for a window — with probability
/// `trigger_prob` per sibling, a `TaskFaults { prob: sibling_fault_prob }`
/// window of length `window` opens on that sibling at the moment of the
/// member fault. Conditional draws come from a dedicated RNG stream, so
/// enabling correlation never perturbs the base fault sampling, and every
/// synthesized window is recorded (see `RunReport::synthesized_faults` and
/// [`FaultTrace`]) so the observed run replays byte-identically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultDomain {
    /// Human-readable failure root ("pcie-switch-0", "rail-B", …).
    pub name: String,
    /// The devices sharing the root (at least two).
    pub members: Vec<DeviceId>,
    /// Probability that a member fault opens a sibling window, per sibling
    /// (`0.0` disables conditional triggering for this domain).
    pub trigger_prob: f64,
    /// Per-attempt fault probability of a synthesized sibling window.
    pub sibling_fault_prob: f64,
    /// Length of a synthesized sibling window.
    pub window: SimTime,
}

impl FaultDomain {
    /// Whether `dev` belongs to this domain.
    pub fn contains(&self, dev: DeviceId) -> bool {
        self.members.contains(&dev)
    }
}

/// Why a [`FaultSchedule`] failed validation. Carries the offending event
/// (or domain) index so callers can point at the exact entry; the `Display`
/// form is the human-readable message the executor panics with.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultError {
    /// A fault probability outside `[0, 1]`.
    BadProbability {
        /// Index into [`FaultSchedule::events`].
        event: usize,
        /// The offending probability.
        prob: f64,
    },
    /// An empty or inverted window (`from >= until`).
    BadWindow {
        /// Index into [`FaultSchedule::events`].
        event: usize,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// A dropout of device 0 — the host is the failover target of last
    /// resort and can never drop out.
    HostDropout {
        /// Index into [`FaultSchedule::events`].
        event: usize,
    },
    /// A non-positive throttle factor.
    BadThrottleFactor {
        /// Index into [`FaultSchedule::events`].
        event: usize,
    },
    /// A profile-perturbation factor that is not positive and finite.
    BadProfileFactor {
        /// Index into [`FaultSchedule::events`].
        event: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A link-degradation factor that is not positive and finite.
    BadLinkFactor {
        /// Index into [`FaultSchedule::events`].
        event: usize,
        /// The offending factor.
        factor: f64,
    },
    /// A [`FaultEvent::LinkDegrade`] naming the host: links are identified
    /// by their accelerator endpoint, and the host has no host↔host link.
    HostLink {
        /// Index into [`FaultSchedule::events`].
        event: usize,
    },
    /// A [`FaultEvent::DomainOutage`] whose `domain` index does not name a
    /// domain in [`FaultSchedule::domains`].
    UnknownDomain {
        /// Index into [`FaultSchedule::events`].
        event: usize,
        /// The out-of-range domain index.
        domain: usize,
    },
    /// A drop-outage (`throttle: None`) of a domain containing the host.
    HostInDroppedDomain {
        /// Index into [`FaultSchedule::events`].
        event: usize,
        /// Index into [`FaultSchedule::domains`].
        domain: usize,
    },
    /// A malformed [`FaultDomain`] (too few members, or a probability
    /// outside `[0, 1]`).
    BadDomain {
        /// Index into [`FaultSchedule::domains`].
        domain: usize,
        /// What is wrong with it.
        reason: &'static str,
    },
    /// An event (or domain membership) naming a device id the platform does
    /// not have. Only reported by [`FaultSchedule::validate_for`] — plain
    /// [`FaultSchedule::validate`] has no platform to check against.
    UnknownDevice {
        /// Index into [`FaultSchedule::events`], or the offending domain's
        /// index when `in_domain` is set.
        event: usize,
        /// The out-of-range device id.
        dev: DeviceId,
        /// `true` when `event` indexes [`FaultSchedule::domains`] instead
        /// of [`FaultSchedule::events`].
        in_domain: bool,
    },
    /// A [`FaultTrace`] JSON document that does not parse (truncated,
    /// corrupted, or not a trace at all).
    TraceParse {
        /// The underlying parse error, rendered.
        error: String,
    },
    /// A [`FaultTrace`] written by a different format version. Files
    /// predating the version header deserialize as version 0 and are
    /// rejected here instead of being silently misread.
    TraceVersion {
        /// The version the file declares (0 when absent).
        found: u32,
        /// The version this build writes ([`TRACE_VERSION`]).
        expected: u32,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::BadProbability { event, prob } => {
                write!(f, "event {event}: probability {prob} outside [0, 1]")
            }
            FaultError::BadWindow { event, from, until } => {
                write!(f, "event {event}: window {from} >= {until}")
            }
            FaultError::HostDropout { event } => {
                write!(f, "event {event}: the host CPU cannot drop out")
            }
            FaultError::BadThrottleFactor { event } => {
                write!(f, "event {event}: throttle factors must be positive")
            }
            FaultError::BadProfileFactor { event, factor } => {
                write!(
                    f,
                    "event {event}: profile factor {factor} must be positive and finite"
                )
            }
            FaultError::BadLinkFactor { event, factor } => {
                write!(
                    f,
                    "event {event}: link factor {factor} must be positive and finite"
                )
            }
            FaultError::HostLink { event } => {
                write!(f, "event {event}: the host has no host link to degrade")
            }
            FaultError::UnknownDomain { event, domain } => {
                write!(f, "event {event}: unknown fault domain {domain}")
            }
            FaultError::HostInDroppedDomain { event, domain } => {
                write!(
                    f,
                    "event {event}: domain {domain} contains the host CPU, which cannot drop out"
                )
            }
            FaultError::BadDomain { domain, reason } => {
                write!(f, "domain {domain}: {reason}")
            }
            FaultError::UnknownDevice {
                event,
                dev,
                in_domain,
            } => {
                let kind = if *in_domain { "domain" } else { "event" };
                write!(f, "{kind} {event}: unknown device {dev}")
            }
            FaultError::TraceParse { error } => {
                write!(f, "trace does not parse: {error}")
            }
            FaultError::TraceVersion { found, expected } => {
                write!(
                    f,
                    "trace format version {found} (this build reads version {expected})"
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A seeded, replayable schedule of platform faults.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// PRNG seed: identical seeds replay identical runs.
    pub seed: u64,
    /// The timed fault events.
    pub events: Vec<FaultEvent>,
    /// Correlated fault domains referenced by [`FaultEvent::DomainOutage`]
    /// and consulted for conditional sibling triggering (empty for
    /// uncorrelated schedules — the pre-domain behaviour).
    pub domains: Vec<FaultDomain>,
    /// Index into `events` from which entries are *replayed synthesized*
    /// windows ([`FaultTrace::replay_schedule`] appends them after the
    /// base events). In the recorded run a window opened by correlated
    /// triggering can never affect a task whose attempts were already
    /// computed when its dispatch was processed, so on replay these
    /// entries apply only to tasks dispatched at or after the window's
    /// `from` — see [`FaultSchedule::task_fault_prob_dispatched`].
    /// `None` for ordinary schedules: every event applies purely by
    /// attempt time.
    pub synthesized_after: Option<usize>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
            domains: Vec::new(),
            synthesized_after: None,
        }
    }

    /// Add a transient-task-fault window (`dev: None` hits every device).
    pub fn with_task_faults(
        mut self,
        dev: Option<DeviceId>,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::TaskFaults {
            dev,
            prob,
            from,
            until,
        });
        self
    }

    /// Add a transfer-fault window.
    pub fn with_transfer_faults(mut self, prob: f64, from: SimTime, until: SimTime) -> Self {
        self.events
            .push(FaultEvent::TransferFaults { prob, from, until });
        self
    }

    /// Add a permanent dropout of `dev` at `at`. Panics for the host
    /// (device 0), which is the failover target of last resort.
    pub fn with_dropout(mut self, dev: DeviceId, at: SimTime) -> Self {
        assert!(dev.0 != 0, "the host CPU cannot drop out");
        self.events.push(FaultEvent::DeviceDropout { dev, at });
        self
    }

    /// Add a throttle ramp on `dev` (constant when the factors are equal).
    pub fn with_throttle(
        mut self,
        dev: DeviceId,
        from: SimTime,
        until: SimTime,
        start_factor: f64,
        end_factor: f64,
    ) -> Self {
        self.events.push(FaultEvent::ThrottleRamp {
            dev,
            from,
            until,
            start_factor,
            end_factor,
        });
        self
    }

    /// Add a silent-data-corruption window on `dev`.
    pub fn with_silent_corruption(
        mut self,
        dev: DeviceId,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::SilentCorruption {
            dev,
            prob,
            from,
            until,
        });
        self
    }

    /// Add a flaky window on `dev` (elevated transient-fault rate).
    pub fn with_flaky(
        mut self,
        dev: DeviceId,
        fault_prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::Flaky {
            dev,
            fault_prob,
            from,
            until,
        });
        self
    }

    /// Add a profile perturbation on `dev` (planner-visible rate skew).
    pub fn with_profile_perturb(
        mut self,
        dev: DeviceId,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::ProfilePerturb {
            dev,
            factor,
            from,
            until,
        });
        self
    }

    /// Add a link-degradation window on the host↔`dev` link. Panics for
    /// the host (device 0): links are identified by their accelerator
    /// endpoint.
    pub fn with_link_degrade(
        mut self,
        dev: DeviceId,
        bandwidth_factor: f64,
        latency_factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(dev.0 != 0, "the host has no host link to degrade");
        self.events.push(FaultEvent::LinkDegrade {
            dev,
            bandwidth_factor,
            latency_factor,
            from,
            until,
        });
        self
    }

    /// Register a correlated fault domain and return its index for
    /// [`FaultSchedule::with_domain_dropout`] /
    /// [`FaultSchedule::with_domain_throttle`]. `trigger_prob` is the
    /// per-sibling probability that a member fault opens a
    /// `sibling_fault_prob` window of length `window` on each sibling
    /// (`0.0` disables conditional triggering).
    pub fn with_domain(
        mut self,
        name: &str,
        members: Vec<DeviceId>,
        trigger_prob: f64,
        sibling_fault_prob: f64,
        window: SimTime,
    ) -> Self {
        self.domains.push(FaultDomain {
            name: name.to_string(),
            members,
            trigger_prob,
            sibling_fault_prob,
            window,
        });
        self
    }

    /// Add a correlated drop-outage: every member of `domain` permanently
    /// drops out at `at` (the shared root — a power rail, a switch —
    /// fails).
    pub fn with_domain_dropout(mut self, domain: usize, at: SimTime) -> Self {
        self.events.push(FaultEvent::DomainOutage {
            domain,
            from: at,
            until: SimTime::MAX,
            throttle: None,
        });
        self
    }

    /// Add a correlated throttle: every member of `domain` runs `factor`×
    /// slower while the window is open (a browning rail, a shared thermal
    /// zone).
    pub fn with_domain_throttle(
        mut self,
        domain: usize,
        from: SimTime,
        until: SimTime,
        factor: f64,
    ) -> Self {
        self.events.push(FaultEvent::DomainOutage {
            domain,
            from,
            until,
            throttle: Some(factor),
        });
        self
    }

    /// `true` when the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` when any domain has conditional triggering enabled — the
    /// executor only then allocates the correlated RNG stream, so
    /// domain-free schedules replay exactly as before.
    pub fn has_correlation(&self) -> bool {
        self.domains.iter().any(|d| d.trigger_prob > 0.0)
    }

    /// `true` when the schedule contains any [`FaultEvent::LinkDegrade`]
    /// window — the executor's fast path prices transfers nominally
    /// otherwise.
    pub fn has_link_degrade(&self) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(ev, FaultEvent::LinkDegrade { .. }))
    }

    /// A fresh PRNG seeded from the schedule's seed.
    pub fn rng(&self) -> FaultRng {
        FaultRng::new(self.seed)
    }

    /// Probability that one task attempt dispatched on `dev` at `now`
    /// fails: overlapping windows — [`FaultEvent::TaskFaults`] and
    /// [`FaultEvent::Flaky`] alike — compose as independent failure
    /// sources (`1 - Π(1 - pᵢ)`).
    pub fn task_fault_prob(&self, dev: DeviceId, now: SimTime) -> f64 {
        self.task_fault_prob_with(dev, now, &[])
    }

    /// [`FaultSchedule::task_fault_prob`] with `extra` windows appended to
    /// the schedule's events — the executor composes the sibling windows it
    /// synthesized mid-run through this, and because the product runs over
    /// `events ++ extra` in order, it is bit-identical to evaluating a
    /// [`FaultTrace::replay_schedule`] (which appends the synthesized
    /// events to the event list) with no extras.
    pub fn task_fault_prob_with(&self, dev: DeviceId, now: SimTime, extra: &[FaultEvent]) -> f64 {
        self.task_fault_prob_dispatched(dev, now, SimTime::MAX, extra)
    }

    /// [`FaultSchedule::task_fault_prob_with`] for an attempt of a task
    /// dispatched at `dispatched`: events at or past `synthesized_after`
    /// are skipped unless they had already opened (`from <= dispatched`)
    /// when the task was dispatched. This reproduces the causality of the
    /// recorded run — the executor computes a task's attempt outcomes at
    /// dispatch time, so a sibling window synthesized later cannot reach
    /// them — and is a no-op when `synthesized_after` is `None`.
    pub fn task_fault_prob_dispatched(
        &self,
        dev: DeviceId,
        now: SimTime,
        dispatched: SimTime,
        extra: &[FaultEvent],
    ) -> f64 {
        let gated_from = self
            .synthesized_after
            .unwrap_or(usize::MAX)
            .min(self.events.len());
        let mut survive = 1.0;
        for (i, ev) in self.events.iter().chain(extra).enumerate() {
            // Synthesized windows — baked-in (`events[synthesized_after..]`)
            // or live (`extra`) — apply only to tasks dispatched *strictly
            // after* they opened, so a live run and its replay agree on
            // exactly which attempts each window can reach. Strictness
            // matters at a shared instant: a correlated dropout can
            // synthesize windows and re-dispatch killed work at the same
            // timestamp, and which windows exist mid-instant depends on
            // event processing order the replay cannot reconstruct.
            if i >= gated_from {
                let opened_by_dispatch = match ev {
                    FaultEvent::TaskFaults { from, .. } | FaultEvent::Flaky { from, .. } => {
                        *from < dispatched
                    }
                    _ => true,
                };
                if !opened_by_dispatch {
                    continue;
                }
            }
            let (prob, hit) = match ev {
                FaultEvent::TaskFaults {
                    dev: d,
                    prob,
                    from,
                    until,
                } => (
                    prob,
                    (d.is_none() || *d == Some(dev)) && in_window(now, *from, *until),
                ),
                FaultEvent::Flaky {
                    dev: d,
                    fault_prob,
                    from,
                    until,
                } => (fault_prob, *d == dev && in_window(now, *from, *until)),
                _ => continue,
            };
            if hit {
                survive *= 1.0 - prob.clamp(0.0, 1.0);
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// Probability that one *successful* task attempt on `dev` at `now`
    /// silently corrupts its output (independent composition across open
    /// windows, like [`FaultSchedule::task_fault_prob`]).
    pub fn corruption_prob(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut survive = 1.0;
        for ev in &self.events {
            if let FaultEvent::SilentCorruption {
                dev: d,
                prob,
                from,
                until,
            } = ev
            {
                if *d == dev && in_window(now, *from, *until) {
                    survive *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// Probability that one transfer attempt at `now` fails.
    pub fn transfer_fault_prob(&self, now: SimTime) -> f64 {
        let mut survive = 1.0;
        for ev in &self.events {
            if let FaultEvent::TransferFaults { prob, from, until } = ev {
                if in_window(now, *from, *until) {
                    survive *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// All scheduled dropouts as `(device, time)` pairs — individual
    /// [`FaultEvent::DeviceDropout`]s plus every member of each
    /// drop-outage domain (in event order, members in domain order).
    pub fn dropouts(&self) -> Vec<(DeviceId, SimTime)> {
        let mut out = Vec::new();
        for ev in &self.events {
            match ev {
                FaultEvent::DeviceDropout { dev, at } => out.push((*dev, *at)),
                FaultEvent::DomainOutage {
                    domain,
                    from,
                    throttle: None,
                    ..
                } => {
                    if let Some(d) = self.domains.get(*domain) {
                        out.extend(d.members.iter().map(|&m| (m, *from)));
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Execution-time multiplier for `dev` at `now`: the product of every
    /// open ramp's interpolated factor and every open domain throttle the
    /// device is a member of (1.0 when none is open).
    pub fn throttle_factor(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut factor = 1.0;
        for ev in &self.events {
            match ev {
                FaultEvent::ThrottleRamp {
                    dev: d,
                    from,
                    until,
                    start_factor,
                    end_factor,
                } if *d == dev && in_window(now, *from, *until) => {
                    let span = until.saturating_sub(*from).as_secs_f64();
                    let frac = if span > 0.0 {
                        (now.saturating_sub(*from).as_secs_f64() / span).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    factor *= start_factor + (end_factor - start_factor) * frac;
                }
                FaultEvent::DomainOutage {
                    domain,
                    from,
                    until,
                    throttle: Some(f),
                } if in_window(now, *from, *until)
                    && self.domains.get(*domain).is_some_and(|d| d.contains(dev)) =>
                {
                    factor *= f;
                }
                _ => {}
            }
        }
        factor
    }

    /// `(bandwidth_factor, latency_factor)` for the host↔`dev` link at
    /// `now`: the product over every open [`FaultEvent::LinkDegrade`]
    /// window on that link, `(1.0, 1.0)` when none is open.
    pub fn link_factors(&self, dev: DeviceId, now: SimTime) -> (f64, f64) {
        let (mut bw, mut lat) = (1.0, 1.0);
        for ev in &self.events {
            if let FaultEvent::LinkDegrade {
                dev: d,
                bandwidth_factor,
                latency_factor,
                from,
                until,
            } = ev
            {
                if *d == dev && in_window(now, *from, *until) {
                    bw *= bandwidth_factor;
                    lat *= latency_factor;
                }
            }
        }
        (bw, lat)
    }

    /// Whether any *runtime* disturbance is open at `now`: a fault,
    /// throttle, corruption, flaky, link-degradation or domain-throttle
    /// window containing `now`, or any dropout (individual or domain) that
    /// has already happened — a dead device never comes back, so its
    /// disturbance never closes. [`FaultEvent::ProfilePerturb`] is *not* a
    /// runtime disturbance (it skews only the planner's view), so a
    /// mispredicted-but-healthy platform reads as calm. The adapt
    /// controller consults this before de-escalating: a run only returns
    /// to its static plan once the platform is actually quiet.
    pub fn disturbance_open(&self, now: SimTime) -> bool {
        self.events.iter().any(|ev| match ev {
            FaultEvent::TaskFaults { from, until, .. }
            | FaultEvent::TransferFaults { from, until, .. }
            | FaultEvent::ThrottleRamp { from, until, .. }
            | FaultEvent::SilentCorruption { from, until, .. }
            | FaultEvent::Flaky { from, until, .. }
            | FaultEvent::LinkDegrade { from, until, .. }
            | FaultEvent::DomainOutage {
                from,
                until,
                throttle: Some(_),
                ..
            } => in_window(now, *from, *until),
            FaultEvent::DeviceDropout { at, .. } => *at <= now,
            FaultEvent::DomainOutage {
                from,
                throttle: None,
                ..
            } => *from <= now,
            FaultEvent::ProfilePerturb { .. } => false,
        })
    }

    /// Multiplier on the *planner-visible* throughput estimate for `dev`
    /// at `now`: the product of every open [`FaultEvent::ProfilePerturb`]
    /// window's factor (1.0 when none is open). True execution is never
    /// touched by this — only profiling/planning paths consult it.
    pub fn profile_factor(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut factor = 1.0;
        for ev in &self.events {
            if let FaultEvent::ProfilePerturb {
                dev: d,
                factor: f,
                from,
                until,
            } = ev
            {
                if *d == dev && in_window(now, *from, *until) {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// `base` scaled by the throttle factor for `dev` at `now` — the one
    /// place execution time meets throttling, shared by the resilient
    /// executor's attempt loop, safe-mode completion, and the straggler
    /// watchdog's hedge/verification predictions.
    pub fn throttled_exec(&self, dev: DeviceId, now: SimTime, base: SimTime) -> SimTime {
        let factor = self.throttle_factor(dev, now);
        if factor == 1.0 {
            base
        } else {
            SimTime::from_secs_f64(base.as_secs_f64() * factor)
        }
    }

    /// Check internal consistency: probabilities in `[0, 1]`, positive
    /// throttle/link factors, non-empty ordered windows (`from < until`),
    /// no host dropout (individual or via a dropped domain), and
    /// well-formed domains. Errors are typed ([`FaultError`]) so callers
    /// can match on the exact defect; `Display` gives the human-readable
    /// message.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (i, d) in self.domains.iter().enumerate() {
            if d.members.len() < 2 {
                return Err(FaultError::BadDomain {
                    domain: i,
                    reason: "a fault domain needs at least two members",
                });
            }
            if !(0.0..=1.0).contains(&d.trigger_prob) {
                return Err(FaultError::BadDomain {
                    domain: i,
                    reason: "trigger probability outside [0, 1]",
                });
            }
            if !(0.0..=1.0).contains(&d.sibling_fault_prob) {
                return Err(FaultError::BadDomain {
                    domain: i,
                    reason: "sibling fault probability outside [0, 1]",
                });
            }
        }
        for (i, ev) in self.events.iter().enumerate() {
            let window = |from: &SimTime, until: &SimTime| {
                if from >= until {
                    Err(FaultError::BadWindow {
                        event: i,
                        from: *from,
                        until: *until,
                    })
                } else {
                    Ok(())
                }
            };
            match ev {
                FaultEvent::TaskFaults {
                    prob, from, until, ..
                }
                | FaultEvent::TransferFaults { prob, from, until }
                | FaultEvent::SilentCorruption {
                    prob, from, until, ..
                }
                | FaultEvent::Flaky {
                    fault_prob: prob,
                    from,
                    until,
                    ..
                } => {
                    if !(0.0..=1.0).contains(prob) {
                        return Err(FaultError::BadProbability {
                            event: i,
                            prob: *prob,
                        });
                    }
                    window(from, until)?;
                }
                FaultEvent::DeviceDropout { dev, .. } => {
                    if dev.0 == 0 {
                        return Err(FaultError::HostDropout { event: i });
                    }
                }
                FaultEvent::ThrottleRamp {
                    from,
                    until,
                    start_factor,
                    end_factor,
                    ..
                } => {
                    if *start_factor <= 0.0 || *end_factor <= 0.0 {
                        return Err(FaultError::BadThrottleFactor { event: i });
                    }
                    window(from, until)?;
                }
                FaultEvent::ProfilePerturb {
                    factor,
                    from,
                    until,
                    ..
                } => {
                    if !(factor.is_finite() && *factor > 0.0) {
                        return Err(FaultError::BadProfileFactor {
                            event: i,
                            factor: *factor,
                        });
                    }
                    window(from, until)?;
                }
                FaultEvent::LinkDegrade {
                    dev,
                    bandwidth_factor,
                    latency_factor,
                    from,
                    until,
                } => {
                    if dev.0 == 0 {
                        return Err(FaultError::HostLink { event: i });
                    }
                    for factor in [bandwidth_factor, latency_factor] {
                        if !(factor.is_finite() && *factor > 0.0) {
                            return Err(FaultError::BadLinkFactor {
                                event: i,
                                factor: *factor,
                            });
                        }
                    }
                    window(from, until)?;
                }
                FaultEvent::DomainOutage {
                    domain,
                    from,
                    until,
                    throttle,
                } => {
                    let Some(d) = self.domains.get(*domain) else {
                        return Err(FaultError::UnknownDomain {
                            event: i,
                            domain: *domain,
                        });
                    };
                    match throttle {
                        Some(f) => {
                            if !(f.is_finite() && *f > 0.0) {
                                return Err(FaultError::BadThrottleFactor { event: i });
                            }
                            window(from, until)?;
                        }
                        None => {
                            if d.members.iter().any(|m| m.0 == 0) {
                                return Err(FaultError::HostInDroppedDomain {
                                    event: i,
                                    domain: *domain,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// [`FaultSchedule::validate`] plus a platform-aware check: every
    /// device id named by an event or a domain membership must exist on
    /// `platform`. A schedule written for a 3-device platform silently
    /// no-ops (or panics deep in the executor) on a 2-device one; this
    /// catches the mismatch up front with a typed
    /// [`FaultError::UnknownDevice`].
    pub fn validate_for(&self, platform: &crate::Platform) -> Result<(), FaultError> {
        self.validate()?;
        let n = platform.devices.len();
        let check = |event: usize, dev: DeviceId, in_domain: bool| {
            if dev.0 >= n {
                Err(FaultError::UnknownDevice {
                    event,
                    dev,
                    in_domain,
                })
            } else {
                Ok(())
            }
        };
        for (i, d) in self.domains.iter().enumerate() {
            for &m in &d.members {
                check(i, m, true)?;
            }
        }
        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                FaultEvent::TaskFaults { dev: Some(dev), .. }
                | FaultEvent::DeviceDropout { dev, .. }
                | FaultEvent::ThrottleRamp { dev, .. }
                | FaultEvent::SilentCorruption { dev, .. }
                | FaultEvent::Flaky { dev, .. }
                | FaultEvent::ProfilePerturb { dev, .. }
                | FaultEvent::LinkDegrade { dev, .. } => check(i, *dev, false)?,
                FaultEvent::TaskFaults { dev: None, .. }
                | FaultEvent::TransferFaults { .. }
                | FaultEvent::DomainOutage { .. } => {}
            }
        }
        Ok(())
    }
}

/// A recorded disturbance: the [`FaultSchedule`] a run executed under plus
/// every event the run *synthesized* while it ran (conditional sibling
/// windows opened by correlated triggering). Exports as deterministic JSON
/// so an observed run can be archived, diffed, replayed byte-identically,
/// or handed to the analyzer's degradation ranking as a what-if.
///
/// [`FaultTrace::replay_schedule`] folds the synthesized events into the
/// base schedule and zeroes every domain's `trigger_prob`: replaying that
/// schedule injects exactly the disturbance the recorded run observed —
/// the sibling windows open at the recorded instants instead of being
/// re-drawn — so the same seed reproduces the run bit for bit. (Window
/// composition is commutative, and conditional draws come from a separate
/// RNG stream, so moving a window from "synthesized during the run" to
/// "scheduled up front" changes nothing the base fault sampling sees.)
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct FaultTrace {
    /// Format version stamp ([`TRACE_VERSION`]). Defaulted to 0 when
    /// absent (see the hand-written `Deserialize`) so a pre-version file
    /// is rejected with a typed [`FaultError::TraceVersion`] instead of
    /// being silently misread.
    pub version: u32,
    /// The schedule the recorded run executed under.
    pub schedule: FaultSchedule,
    /// Events synthesized during the run, in trigger order.
    pub synthesized: Vec<FaultEvent>,
}

// Hand-written (the vendored serde derive has no `#[serde(default)]`): a
// missing `version` key reads as 0 so versionless legacy files surface as
// a typed version mismatch rather than a missing-field parse error.
impl Deserialize for FaultTrace {
    fn from_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::de::Error::custom("expected map for FaultTrace"))?;
        let version = match serde::de::entry(m, "version") {
            Some(v) => <u32 as Deserialize>::from_value(v)?,
            None => 0,
        };
        Ok(FaultTrace {
            version,
            schedule: serde::de::field(m, "schedule", "FaultTrace")?,
            synthesized: serde::de::field(m, "synthesized", "FaultTrace")?,
        })
    }
}

/// The [`FaultTrace`] JSON format version this build writes and reads.
pub const TRACE_VERSION: u32 = 1;

impl FaultTrace {
    /// Pair a schedule with the events a run synthesized under it (see
    /// `RunReport::synthesized_faults`).
    pub fn new(schedule: FaultSchedule, synthesized: Vec<FaultEvent>) -> Self {
        FaultTrace {
            version: TRACE_VERSION,
            schedule,
            synthesized,
        }
    }

    /// Deterministic pretty-printed JSON (field order is declaration
    /// order; identical traces render identical bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fault trace serialization cannot fail")
    }

    /// Parse a trace previously written by [`FaultTrace::to_json`].
    ///
    /// Typed rejection instead of a panic or a silent misparse: a document
    /// that does not parse (truncated, corrupted) is
    /// [`FaultError::TraceParse`]; a version other than [`TRACE_VERSION`]
    /// (including files predating the version header, which default to 0)
    /// is [`FaultError::TraceVersion`]; a trace whose schedule fails
    /// validation reports the schedule's own [`FaultError`].
    pub fn from_json(text: &str) -> Result<Self, FaultError> {
        let trace: FaultTrace = serde_json::from_str(text).map_err(|e| FaultError::TraceParse {
            error: e.to_string(),
        })?;
        validate_version(trace.version, TRACE_VERSION)
            .map_err(|(found, expected)| FaultError::TraceVersion { found, expected })?;
        trace.schedule.validate()?;
        Ok(trace)
    }

    /// The deterministic replay schedule: base events plus the synthesized
    /// windows, with conditional triggering disabled so nothing is drawn
    /// twice. Running any executor under this schedule (same seed)
    /// reproduces the recorded run's fault behaviour exactly.
    pub fn replay_schedule(&self) -> FaultSchedule {
        let mut schedule = self.schedule.clone();
        // Synthesized windows are appended *after* the base events and the
        // boundary recorded, so replay gates them on task dispatch time:
        // in the recorded run a window opened mid-flight could not touch a
        // task whose attempts were already computed at dispatch.
        schedule.synthesized_after = Some(schedule.events.len());
        schedule.events.extend(self.synthesized.iter().cloned());
        for d in &mut schedule.domains {
            d.trigger_prob = 0.0;
        }
        schedule
    }
}

/// How the runtime retries a faulted task on its device before failing it
/// over to a survivor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts on the bound device before the task fails over (≥ 1).
    pub max_attempts: u32,
    /// Backoff charged (as simulated time) before the first retry.
    pub backoff: SimTime,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: SimTime::from_micros(10),
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the retry following failed attempt number `attempt`
    /// (1-based): `backoff × multiplier^(attempt − 1)`.
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        let scale = self
            .backoff_multiplier
            .powi(attempt.saturating_sub(1) as i32);
        SimTime::from_secs_f64(self.backoff.as_secs_f64() * scale)
    }
}

/// What the fault machinery did during one run (all zeros for a healthy
/// run). Reported through `RunReport::faults`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient task-attempt failures sampled.
    pub task_faults: u64,
    /// Retries performed on the same device after a task fault.
    pub task_retries: u64,
    /// Transfer attempts that failed.
    pub transfer_faults: u64,
    /// Transfer re-issues (equal to `transfer_faults`; every failed
    /// transfer is re-issued).
    pub transfer_retries: u64,
    /// Tasks forcibly moved to a surviving device (retry exhaustion, or a
    /// binding that named a dead device).
    pub failovers: u64,
    /// Completed-but-uncommitted tasks re-executed after a device dropout
    /// (their epoch had not reached its taskwait checkpoint).
    pub reexecutions: u64,
    /// Devices permanently lost.
    pub device_dropouts: u64,
    /// Tasks finished in safe mode (fault sampling disabled after retries
    /// were exhausted with no surviving failover target).
    pub safe_mode_tasks: u64,
    /// Sibling fault windows opened by correlated triggering (a member
    /// fault conditionally raising its domain siblings' fault rate).
    pub correlated_triggers: u64,
    /// Simulated time spent in retry backoff.
    pub backoff_time: SimTime,
    /// Simulated time wasted on faults: failed attempts, backoff, and
    /// progress discarded by dropouts.
    pub time_lost: SimTime,
}

impl FaultCounters {
    /// Total faults injected (task + transfer + dropouts).
    pub fn faults_injected(&self) -> u64 {
        self.task_faults + self.transfer_faults + self.device_dropouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = FaultRng::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn rng_f64_in_unit_interval() {
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn task_fault_prob_respects_window_and_device() {
        let s = FaultSchedule::new(1).with_task_faults(
            Some(DeviceId(1)),
            0.5,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        assert_eq!(s.task_fault_prob(DeviceId(1), SimTime::from_millis(5)), 0.0);
        assert_eq!(
            s.task_fault_prob(DeviceId(1), SimTime::from_millis(15)),
            0.5
        );
        assert_eq!(
            s.task_fault_prob(DeviceId(1), SimTime::from_millis(20)),
            0.0
        );
        assert_eq!(
            s.task_fault_prob(DeviceId(0), SimTime::from_millis(15)),
            0.0
        );
    }

    #[test]
    fn overlapping_windows_compose_independently() {
        let s = FaultSchedule::new(1)
            .with_task_faults(None, 0.5, SimTime::ZERO, SimTime::MAX)
            .with_task_faults(None, 0.5, SimTime::ZERO, SimTime::MAX);
        let p = s.task_fault_prob(DeviceId(0), SimTime::from_millis(1));
        assert!((p - 0.75).abs() < 1e-12, "{p}");
    }

    #[test]
    fn throttle_ramp_interpolates_linearly() {
        let s = FaultSchedule::new(1).with_throttle(
            DeviceId(1),
            SimTime::from_millis(0),
            SimTime::from_millis(100),
            1.0,
            9.0,
        );
        assert_eq!(s.throttle_factor(DeviceId(1), SimTime::from_millis(0)), 1.0);
        let mid = s.throttle_factor(DeviceId(1), SimTime::from_millis(50));
        assert!((mid - 5.0).abs() < 1e-9, "{mid}");
        // Outside the window: nominal.
        assert_eq!(
            s.throttle_factor(DeviceId(1), SimTime::from_millis(100)),
            1.0
        );
        assert_eq!(
            s.throttle_factor(DeviceId(0), SimTime::from_millis(50)),
            1.0
        );
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff: SimTime::from_micros(10),
            backoff_multiplier: 2.0,
        };
        assert_eq!(p.backoff_for(1), SimTime::from_micros(10));
        assert_eq!(p.backoff_for(2), SimTime::from_micros(20));
        assert_eq!(p.backoff_for(3), SimTime::from_micros(40));
    }

    #[test]
    #[should_panic(expected = "host CPU cannot drop out")]
    fn host_dropout_is_rejected() {
        let _ = FaultSchedule::new(1).with_dropout(DeviceId(0), SimTime::ZERO);
    }

    #[test]
    fn corruption_prob_respects_window_and_device() {
        let s = FaultSchedule::new(1).with_silent_corruption(
            DeviceId(1),
            0.5,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        assert_eq!(s.corruption_prob(DeviceId(1), SimTime::from_millis(5)), 0.0);
        assert_eq!(
            s.corruption_prob(DeviceId(1), SimTime::from_millis(15)),
            0.5
        );
        assert_eq!(
            s.corruption_prob(DeviceId(1), SimTime::from_millis(20)),
            0.0
        );
        assert_eq!(
            s.corruption_prob(DeviceId(0), SimTime::from_millis(15)),
            0.0
        );
        // Corruption never feeds the fault-sampling path.
        assert_eq!(
            s.task_fault_prob(DeviceId(1), SimTime::from_millis(15)),
            0.0
        );
    }

    #[test]
    fn flaky_composes_with_task_faults() {
        let s = FaultSchedule::new(1)
            .with_task_faults(Some(DeviceId(1)), 0.5, SimTime::ZERO, SimTime::MAX)
            .with_flaky(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
        let p = s.task_fault_prob(DeviceId(1), SimTime::from_millis(1));
        assert!((p - 0.75).abs() < 1e-12, "{p}");
        // Both windows are device-scoped.
        assert_eq!(s.task_fault_prob(DeviceId(0), SimTime::from_millis(1)), 0.0);
    }

    #[test]
    fn throttled_exec_scales_by_factor() {
        let s =
            FaultSchedule::new(1).with_throttle(DeviceId(1), SimTime::ZERO, SimTime::MAX, 4.0, 4.0);
        let base = SimTime::from_millis(10);
        assert_eq!(
            s.throttled_exec(DeviceId(1), SimTime::from_millis(1), base),
            SimTime::from_millis(40)
        );
        // Factor 1.0 passes `base` through exactly (no float round-trip).
        assert_eq!(
            s.throttled_exec(DeviceId(0), SimTime::from_millis(1), base),
            base
        );
    }

    #[test]
    fn validate_catches_bad_gray_events() {
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::SilentCorruption {
            dev: DeviceId(1),
            prob: -0.1,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        assert!(s.validate().is_err());
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::Flaky {
            dev: DeviceId(1),
            fault_prob: 0.5,
            from: SimTime::from_millis(2),
            until: SimTime::from_millis(1),
        });
        assert!(s.validate().is_err());
        assert!(FaultSchedule::new(1)
            .with_silent_corruption(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
            .with_flaky(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
            .validate()
            .is_ok());
    }

    #[test]
    fn profile_perturb_skews_only_the_planner_view() {
        let s = FaultSchedule::new(1).with_profile_perturb(
            DeviceId(1),
            0.5,
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        assert_eq!(s.profile_factor(DeviceId(1), SimTime::ZERO), 0.5);
        // Outside the window and on other devices: nominal.
        assert_eq!(s.profile_factor(DeviceId(1), SimTime::from_millis(10)), 1.0);
        assert_eq!(s.profile_factor(DeviceId(0), SimTime::ZERO), 1.0);
        // True execution paths never see the perturbation.
        assert_eq!(s.throttle_factor(DeviceId(1), SimTime::ZERO), 1.0);
        assert_eq!(s.task_fault_prob(DeviceId(1), SimTime::ZERO), 0.0);
        // Overlapping windows compose multiplicatively.
        let s2 = s.with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
        assert_eq!(s2.profile_factor(DeviceId(1), SimTime::ZERO), 0.25);
    }

    #[test]
    fn validate_catches_bad_profile_factor() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut s = FaultSchedule::new(1);
            s.events.push(FaultEvent::ProfilePerturb {
                dev: DeviceId(1),
                factor: bad,
                from: SimTime::ZERO,
                until: SimTime::MAX,
            });
            assert!(s.validate().is_err(), "factor {bad} should be rejected");
        }
        assert!(FaultSchedule::new(1)
            .with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_catches_bad_probability() {
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::TaskFaults {
            dev: None,
            prob: 1.5,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        assert_eq!(
            s.validate(),
            Err(FaultError::BadProbability {
                event: 0,
                prob: 1.5
            })
        );
        assert!(FaultSchedule::new(1).validate().is_ok());
    }

    #[test]
    fn validate_rejects_empty_windows() {
        // `from == until` is a half-open window containing nothing: it can
        // never fire, so it is a schedule bug, not a no-op.
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::TaskFaults {
            dev: None,
            prob: 0.5,
            from: SimTime::from_millis(3),
            until: SimTime::from_millis(3),
        });
        assert_eq!(
            s.validate(),
            Err(FaultError::BadWindow {
                event: 0,
                from: SimTime::from_millis(3),
                until: SimTime::from_millis(3),
            })
        );
    }

    fn two_dev_domain(trigger: f64) -> FaultSchedule {
        FaultSchedule::new(1).with_domain(
            "pcie-switch",
            vec![DeviceId(1), DeviceId(2)],
            trigger,
            0.5,
            SimTime::from_millis(1),
        )
    }

    #[test]
    fn domain_dropout_drops_every_member() {
        let s = two_dev_domain(0.0).with_domain_dropout(0, SimTime::from_millis(5));
        assert_eq!(
            s.dropouts(),
            vec![
                (DeviceId(1), SimTime::from_millis(5)),
                (DeviceId(2), SimTime::from_millis(5)),
            ]
        );
        assert!(s.validate().is_ok());
        assert!(!s.has_correlation());
        assert!(two_dev_domain(0.5).has_correlation());
    }

    #[test]
    fn domain_throttle_hits_members_only() {
        let s = two_dev_domain(0.0).with_domain_throttle(
            0,
            SimTime::ZERO,
            SimTime::from_millis(10),
            4.0,
        );
        assert_eq!(s.throttle_factor(DeviceId(1), SimTime::from_millis(1)), 4.0);
        assert_eq!(s.throttle_factor(DeviceId(2), SimTime::from_millis(1)), 4.0);
        assert_eq!(s.throttle_factor(DeviceId(0), SimTime::from_millis(1)), 1.0);
        assert_eq!(
            s.throttle_factor(DeviceId(1), SimTime::from_millis(10)),
            1.0
        );
    }

    #[test]
    fn link_factors_compose_and_respect_window() {
        let s = FaultSchedule::new(1)
            .with_link_degrade(
                DeviceId(1),
                0.5,
                2.0,
                SimTime::ZERO,
                SimTime::from_millis(10),
            )
            .with_link_degrade(
                DeviceId(1),
                0.5,
                1.0,
                SimTime::from_millis(5),
                SimTime::from_millis(10),
            );
        assert_eq!(
            s.link_factors(DeviceId(1), SimTime::from_millis(1)),
            (0.5, 2.0)
        );
        assert_eq!(
            s.link_factors(DeviceId(1), SimTime::from_millis(6)),
            (0.25, 2.0)
        );
        assert_eq!(
            s.link_factors(DeviceId(1), SimTime::from_millis(10)),
            (1.0, 1.0)
        );
        assert_eq!(
            s.link_factors(DeviceId(2), SimTime::from_millis(1)),
            (1.0, 1.0)
        );
    }

    #[test]
    #[should_panic(expected = "host has no host link")]
    fn host_link_degrade_is_rejected() {
        let _ = FaultSchedule::new(1).with_link_degrade(
            DeviceId(0),
            0.5,
            1.0,
            SimTime::ZERO,
            SimTime::MAX,
        );
    }

    #[test]
    fn validate_catches_bad_domains_and_outages() {
        // Unknown domain index.
        let s = FaultSchedule::new(1).with_domain_dropout(0, SimTime::ZERO);
        assert_eq!(
            s.validate(),
            Err(FaultError::UnknownDomain {
                event: 0,
                domain: 0
            })
        );
        // Host inside a dropped domain.
        let s = FaultSchedule::new(1)
            .with_domain(
                "rail",
                vec![DeviceId(0), DeviceId(1)],
                0.0,
                0.0,
                SimTime::ZERO,
            )
            .with_domain_dropout(0, SimTime::ZERO);
        assert_eq!(
            s.validate(),
            Err(FaultError::HostInDroppedDomain {
                event: 0,
                domain: 0
            })
        );
        // ... but a throttled domain may include the host.
        let s = FaultSchedule::new(1)
            .with_domain(
                "rail",
                vec![DeviceId(0), DeviceId(1)],
                0.0,
                0.0,
                SimTime::ZERO,
            )
            .with_domain_throttle(0, SimTime::ZERO, SimTime::MAX, 2.0);
        assert!(s.validate().is_ok());
        // A one-member domain is no domain.
        let s =
            FaultSchedule::new(1).with_domain("solo", vec![DeviceId(1)], 0.5, 0.5, SimTime::ZERO);
        assert!(matches!(
            s.validate(),
            Err(FaultError::BadDomain { domain: 0, .. })
        ));
        // Bad link factor.
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::LinkDegrade {
            dev: DeviceId(1),
            bandwidth_factor: 0.0,
            latency_factor: 1.0,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        assert_eq!(
            s.validate(),
            Err(FaultError::BadLinkFactor {
                event: 0,
                factor: 0.0
            })
        );
    }

    #[test]
    fn disturbance_open_tracks_windows_and_dropouts() {
        let s = FaultSchedule::new(1)
            .with_throttle(
                DeviceId(1),
                SimTime::from_millis(1),
                SimTime::from_millis(2),
                4.0,
                4.0,
            )
            .with_dropout(DeviceId(2), SimTime::from_millis(10));
        assert!(!s.disturbance_open(SimTime::ZERO));
        assert!(s.disturbance_open(SimTime::from_millis(1)));
        // The throttle window closed and the dropout has not happened yet.
        assert!(!s.disturbance_open(SimTime::from_millis(5)));
        // A dropout never closes: the device stays dead.
        assert!(s.disturbance_open(SimTime::from_millis(11)));
        // Profile perturbation skews only the planner: never a runtime
        // disturbance.
        let p = FaultSchedule::new(1).with_profile_perturb(
            DeviceId(1),
            0.5,
            SimTime::ZERO,
            SimTime::MAX,
        );
        assert!(!p.disturbance_open(SimTime::from_millis(1)));
    }

    #[test]
    fn fault_trace_replay_schedule_bakes_synthesized_windows() {
        let base = two_dev_domain(0.8).with_task_faults(
            Some(DeviceId(1)),
            0.5,
            SimTime::ZERO,
            SimTime::from_millis(2),
        );
        let synth = vec![FaultEvent::TaskFaults {
            dev: Some(DeviceId(2)),
            prob: 0.5,
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(2),
        }];
        let trace = FaultTrace::new(base.clone(), synth.clone());
        let replay = trace.replay_schedule();
        // Same seed, triggering disabled, synthesized windows folded in.
        assert_eq!(replay.seed, base.seed);
        assert!(!replay.has_correlation());
        assert_eq!(replay.events.len(), base.events.len() + synth.len());
        assert_eq!(
            replay.task_fault_prob(DeviceId(2), SimTime::from_micros(1500)),
            0.5
        );
        // JSON round trip is exact and deterministic.
        let json = trace.to_json();
        let back = FaultTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_json(), json);
    }

    // ---- dedicated validate() error-case coverage -----------------------

    #[test]
    fn validate_rejects_zero_length_and_inverted_windows() {
        // Zero-length: from == until.
        let t = SimTime::from_millis(3);
        let zero = FaultSchedule::new(0).with_transfer_faults(0.1, t, t);
        assert_eq!(
            zero.validate(),
            Err(FaultError::BadWindow {
                event: 0,
                from: t,
                until: t
            })
        );
        // Inverted: from > until.
        let inv = FaultSchedule::new(0).with_throttle(
            DeviceId(1),
            SimTime::from_millis(5),
            SimTime::from_millis(1),
            2.0,
            2.0,
        );
        assert!(matches!(
            inv.validate(),
            Err(FaultError::BadWindow { event: 0, .. })
        ));
    }

    #[test]
    fn validate_accepts_overlapping_windows() {
        // Overlap is legal by design: windows compose as independent
        // failure sources (see `overlapping_windows_compose_independently`).
        let s = FaultSchedule::new(0)
            .with_task_faults(
                Some(DeviceId(1)),
                0.2,
                SimTime::ZERO,
                SimTime::from_millis(5),
            )
            .with_task_faults(
                Some(DeviceId(1)),
                0.3,
                SimTime::from_millis(2),
                SimTime::from_millis(8),
            );
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_unit_probabilities() {
        for prob in [-0.1, 1.5, f64::NAN] {
            let s = FaultSchedule::new(0).with_task_faults(None, prob, SimTime::ZERO, SimTime::MAX);
            let Err(FaultError::BadProbability { event: 0, prob: p }) = s.validate() else {
                panic!("probability {prob} must be rejected");
            };
            // NaN != NaN, so compare via bits.
            assert_eq!(p.to_bits(), prob.to_bits());
        }
    }

    #[test]
    fn validate_for_rejects_out_of_range_device_ids() {
        let platform = crate::Platform::test_small(); // 2 devices: 0, 1
        let ghost = DeviceId(7);

        // Every event shape naming a device is checked.
        let cases: Vec<FaultSchedule> = vec![
            FaultSchedule::new(0).with_task_faults(Some(ghost), 0.1, SimTime::ZERO, SimTime::MAX),
            FaultSchedule::new(0).with_dropout(ghost, SimTime::ZERO),
            FaultSchedule::new(0).with_throttle(ghost, SimTime::ZERO, SimTime::MAX, 2.0, 2.0),
            FaultSchedule::new(0).with_silent_corruption(ghost, 0.1, SimTime::ZERO, SimTime::MAX),
            FaultSchedule::new(0).with_flaky(ghost, 0.1, SimTime::ZERO, SimTime::MAX),
            FaultSchedule::new(0).with_profile_perturb(ghost, 0.5, SimTime::ZERO, SimTime::MAX),
            FaultSchedule::new(0).with_link_degrade(ghost, 0.5, 2.0, SimTime::ZERO, SimTime::MAX),
        ];
        for s in cases {
            // Plain validate has no platform, so it cannot object…
            assert_eq!(s.validate(), Ok(()));
            // …but the platform-aware check does, with the typed error.
            assert_eq!(
                s.validate_for(&platform),
                Err(FaultError::UnknownDevice {
                    event: 0,
                    dev: ghost,
                    in_domain: false
                })
            );
        }

        // Domain membership is checked too, flagged as a domain index.
        let s = FaultSchedule::new(0).with_domain(
            "ghost-rail",
            vec![DeviceId(1), ghost],
            0.5,
            0.5,
            SimTime::from_millis(1),
        );
        assert_eq!(s.validate(), Ok(()));
        assert_eq!(
            s.validate_for(&platform),
            Err(FaultError::UnknownDevice {
                event: 0,
                dev: ghost,
                in_domain: true
            })
        );

        // An in-range schedule passes both.
        let ok = FaultSchedule::new(0).with_task_faults(
            Some(DeviceId(1)),
            0.1,
            SimTime::ZERO,
            SimTime::MAX,
        );
        assert_eq!(ok.validate_for(&platform), Ok(()));
    }

    #[test]
    fn rng_cursor_round_trips() {
        let mut a = FaultRng::new(0xDEAD_BEEF);
        a.next_u64();
        a.next_f64();
        let mut b = FaultRng::from_cursor(a.cursor());
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.next_f64(), b.next_f64());
        assert_eq!(a.cursor(), b.cursor());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn trace_load_rejects_corrupt_and_mismatched_inputs() {
        let trace = FaultTrace::new(
            FaultSchedule::new(7).with_dropout(DeviceId(1), SimTime::from_millis(1)),
            Vec::new(),
        );
        let json = trace.to_json();

        // The happy path round-trips, version included.
        let back = FaultTrace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.version, TRACE_VERSION);

        // Truncation: cut mid-document.
        let truncated = &json[..json.len() / 2];
        assert!(matches!(
            FaultTrace::from_json(truncated),
            Err(FaultError::TraceParse { .. })
        ));

        // Corruption: flip a structural byte.
        let corrupted = json.replacen("\"schedule\"", "\"schedul!\"", 1);
        assert!(matches!(
            FaultTrace::from_json(&corrupted),
            Err(FaultError::TraceParse { .. })
        ));

        // A pre-version file deserializes as version 0 and is rejected as a
        // version mismatch, not misread.
        let unversioned = json.replacen("  \"version\": 1,\n", "", 1);
        assert_ne!(unversioned, json, "version stamp must be present to strip");
        assert_eq!(
            FaultTrace::from_json(&unversioned),
            Err(FaultError::TraceVersion {
                found: 0,
                expected: TRACE_VERSION
            })
        );

        // A future version is rejected the same way.
        let future = json.replacen("\"version\": 1", "\"version\": 99", 1);
        assert_eq!(
            FaultTrace::from_json(&future),
            Err(FaultError::TraceVersion {
                found: 99,
                expected: TRACE_VERSION
            })
        );

        // A parsing trace whose schedule is invalid reports the schedule's
        // own typed error.
        let mut bad = trace.clone();
        bad.schedule.events.push(FaultEvent::TaskFaults {
            dev: None,
            prob: 2.0,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        assert!(matches!(
            FaultTrace::from_json(&bad.to_json()),
            Err(FaultError::BadProbability { .. })
        ));
    }
}
