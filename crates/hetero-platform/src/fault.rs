//! Seeded fault injection: what can go wrong on the platform, and when.
//!
//! The paper's dynamic strategies exist because real platforms misbehave —
//! contention, throttling, degraded links, failing devices. A
//! [`FaultSchedule`] describes such misbehaviour as *timed events* over the
//! simulation's virtual clock:
//!
//! * **transient task faults** — a dispatched task instance fails with a
//!   probability, wasting the attempt's execution time;
//! * **transfer faults** — a host↔device transfer fails and must be
//!   re-issued, paying the wire time again;
//! * **device dropout** — a device permanently disappears at time *t*
//!   (the host CPU can never drop out: it is the failover target of last
//!   resort);
//! * **throttle ramps** — time-varying execution-time multipliers
//!   (thermal throttling, co-tenant contention) interpolated linearly
//!   across a window;
//! * **silent data corruption** — a task completes on time but its output
//!   is wrong; nothing fails, so only an explicit verification policy in
//!   the runtime can catch it;
//! * **flaky devices** — an elevated transient-fault rate on one device:
//!   retries keep succeeding eventually, but the device keeps faulting —
//!   the *gray* failure a health monitor exists to quarantine.
//!
//! All randomness comes from a small seeded PRNG ([`FaultRng`], SplitMix64):
//! identical seeds replay identical runs, so every faulty execution is as
//! reproducible as a healthy one. The resilient executor in `hetero-runtime`
//! consumes the schedule together with a [`RetryPolicy`] and reports what
//! happened through [`FaultCounters`].

use crate::device::DeviceId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// SplitMix64: a tiny, fast, seedable PRNG. Statistically solid for fault
/// sampling and — crucially — fully deterministic across platforms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw output.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One timed platform fault. Windows are half-open: an event is active at
/// `now` when `from <= now < until`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Transient kernel failures: while the window is open, each task
    /// attempt dispatched on a matching device fails with probability
    /// `prob` (the attempt's execution time is wasted and the runtime's
    /// retry policy takes over).
    TaskFaults {
        /// Affected device, or `None` for every device.
        dev: Option<DeviceId>,
        /// Per-attempt failure probability in `[0, 1]`.
        prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Transfer (PCIe) errors: while the window is open, each transfer
    /// attempt fails with probability `prob` and is re-issued at full wire
    /// cost.
    TransferFaults {
        /// Per-attempt failure probability in `[0, 1]`.
        prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Permanent device dropout at `at`: the device stops executing, its
    /// queued and in-flight work must fail over to survivors, and data
    /// resident only in its memory is lost (recovered from the host's
    /// epoch checkpoint). The host (device 0) cannot drop out.
    DeviceDropout {
        /// The device that dies.
        dev: DeviceId,
        /// Virtual time of the failure.
        at: SimTime,
    },
    /// Thermal throttling / contention: execution time on `dev` is
    /// multiplied by a factor interpolated linearly from `start_factor`
    /// (at `from`) to `end_factor` (at `until`) while the window is open.
    /// A factor of 1.0 is nominal speed; 8.0 means 8× slower.
    ThrottleRamp {
        /// Affected device.
        dev: DeviceId,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Multiplier at `from`.
        start_factor: f64,
        /// Multiplier approached at `until`.
        end_factor: f64,
    },
    /// Silent data corruption: while the window is open, each *successful*
    /// task attempt on `dev` produces a wrong result with probability
    /// `prob`. The attempt completes on time and nothing faults — only a
    /// runtime verification policy (`VerificationPolicy::DupCheck`) can
    /// detect the corruption and roll the epoch back to its checkpoint.
    SilentCorruption {
        /// Affected device.
        dev: DeviceId,
        /// Per-successful-attempt corruption probability in `[0, 1]`.
        prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// A flaky device: an elevated transient-fault rate on `dev` while the
    /// window is open. Mechanically this composes with [`FaultEvent::TaskFaults`]
    /// windows as one more independent failure source; semantically it is
    /// the gray failure a device-health circuit breaker quarantines —
    /// retries keep passing, yet the device keeps faulting.
    Flaky {
        /// Affected device.
        dev: DeviceId,
        /// Per-attempt failure probability in `[0, 1]`.
        fault_prob: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Model misprediction: while the window is open, the throughput the
    /// *planner* estimates for `dev` is multiplied by `factor` — the device
    /// itself runs at true speed. A factor of 0.5 makes the profile claim
    /// the device is half as fast as it really is (so a static plan
    /// under-assigns it); 2.0 makes it look twice as fast (over-assigning
    /// it). This is the misprediction injector for adaptive repartitioning:
    /// nothing faults, nothing throttles — the plan is simply wrong, and
    /// only observing real per-device throughput at run time can reveal it.
    ProfilePerturb {
        /// Device whose *estimated* throughput is skewed.
        dev: DeviceId,
        /// Multiplier applied to the planner-visible rate (> 0, finite).
        factor: f64,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
}

fn in_window(now: SimTime, from: SimTime, until: SimTime) -> bool {
    from <= now && now < until
}

/// A seeded, replayable schedule of platform faults.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// PRNG seed: identical seeds replay identical runs.
    pub seed: u64,
    /// The timed fault events.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty (fault-free) schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// Add a transient-task-fault window (`dev: None` hits every device).
    pub fn with_task_faults(
        mut self,
        dev: Option<DeviceId>,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::TaskFaults {
            dev,
            prob,
            from,
            until,
        });
        self
    }

    /// Add a transfer-fault window.
    pub fn with_transfer_faults(mut self, prob: f64, from: SimTime, until: SimTime) -> Self {
        self.events
            .push(FaultEvent::TransferFaults { prob, from, until });
        self
    }

    /// Add a permanent dropout of `dev` at `at`. Panics for the host
    /// (device 0), which is the failover target of last resort.
    pub fn with_dropout(mut self, dev: DeviceId, at: SimTime) -> Self {
        assert!(dev.0 != 0, "the host CPU cannot drop out");
        self.events.push(FaultEvent::DeviceDropout { dev, at });
        self
    }

    /// Add a throttle ramp on `dev` (constant when the factors are equal).
    pub fn with_throttle(
        mut self,
        dev: DeviceId,
        from: SimTime,
        until: SimTime,
        start_factor: f64,
        end_factor: f64,
    ) -> Self {
        self.events.push(FaultEvent::ThrottleRamp {
            dev,
            from,
            until,
            start_factor,
            end_factor,
        });
        self
    }

    /// Add a silent-data-corruption window on `dev`.
    pub fn with_silent_corruption(
        mut self,
        dev: DeviceId,
        prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::SilentCorruption {
            dev,
            prob,
            from,
            until,
        });
        self
    }

    /// Add a flaky window on `dev` (elevated transient-fault rate).
    pub fn with_flaky(
        mut self,
        dev: DeviceId,
        fault_prob: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::Flaky {
            dev,
            fault_prob,
            from,
            until,
        });
        self
    }

    /// Add a profile perturbation on `dev` (planner-visible rate skew).
    pub fn with_profile_perturb(
        mut self,
        dev: DeviceId,
        factor: f64,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.events.push(FaultEvent::ProfilePerturb {
            dev,
            factor,
            from,
            until,
        });
        self
    }

    /// `true` when the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A fresh PRNG seeded from the schedule's seed.
    pub fn rng(&self) -> FaultRng {
        FaultRng::new(self.seed)
    }

    /// Probability that one task attempt dispatched on `dev` at `now`
    /// fails: overlapping windows — [`FaultEvent::TaskFaults`] and
    /// [`FaultEvent::Flaky`] alike — compose as independent failure
    /// sources (`1 - Π(1 - pᵢ)`).
    pub fn task_fault_prob(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut survive = 1.0;
        for ev in &self.events {
            let (prob, hit) = match ev {
                FaultEvent::TaskFaults {
                    dev: d,
                    prob,
                    from,
                    until,
                } => (
                    prob,
                    (d.is_none() || *d == Some(dev)) && in_window(now, *from, *until),
                ),
                FaultEvent::Flaky {
                    dev: d,
                    fault_prob,
                    from,
                    until,
                } => (fault_prob, *d == dev && in_window(now, *from, *until)),
                _ => continue,
            };
            if hit {
                survive *= 1.0 - prob.clamp(0.0, 1.0);
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// Probability that one *successful* task attempt on `dev` at `now`
    /// silently corrupts its output (independent composition across open
    /// windows, like [`FaultSchedule::task_fault_prob`]).
    pub fn corruption_prob(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut survive = 1.0;
        for ev in &self.events {
            if let FaultEvent::SilentCorruption {
                dev: d,
                prob,
                from,
                until,
            } = ev
            {
                if *d == dev && in_window(now, *from, *until) {
                    survive *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// Probability that one transfer attempt at `now` fails.
    pub fn transfer_fault_prob(&self, now: SimTime) -> f64 {
        let mut survive = 1.0;
        for ev in &self.events {
            if let FaultEvent::TransferFaults { prob, from, until } = ev {
                if in_window(now, *from, *until) {
                    survive *= 1.0 - prob.clamp(0.0, 1.0);
                }
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// All scheduled dropouts as `(device, time)` pairs.
    pub fn dropouts(&self) -> Vec<(DeviceId, SimTime)> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                FaultEvent::DeviceDropout { dev, at } => Some((*dev, *at)),
                _ => None,
            })
            .collect()
    }

    /// Execution-time multiplier for `dev` at `now`: the product of every
    /// open ramp's interpolated factor (1.0 when none is open).
    pub fn throttle_factor(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut factor = 1.0;
        for ev in &self.events {
            if let FaultEvent::ThrottleRamp {
                dev: d,
                from,
                until,
                start_factor,
                end_factor,
            } = ev
            {
                if *d == dev && in_window(now, *from, *until) {
                    let span = until.saturating_sub(*from).as_secs_f64();
                    let frac = if span > 0.0 {
                        (now.saturating_sub(*from).as_secs_f64() / span).clamp(0.0, 1.0)
                    } else {
                        0.0
                    };
                    factor *= start_factor + (end_factor - start_factor) * frac;
                }
            }
        }
        factor
    }

    /// Multiplier on the *planner-visible* throughput estimate for `dev`
    /// at `now`: the product of every open [`FaultEvent::ProfilePerturb`]
    /// window's factor (1.0 when none is open). True execution is never
    /// touched by this — only profiling/planning paths consult it.
    pub fn profile_factor(&self, dev: DeviceId, now: SimTime) -> f64 {
        let mut factor = 1.0;
        for ev in &self.events {
            if let FaultEvent::ProfilePerturb {
                dev: d,
                factor: f,
                from,
                until,
            } = ev
            {
                if *d == dev && in_window(now, *from, *until) {
                    factor *= f;
                }
            }
        }
        factor
    }

    /// `base` scaled by the throttle factor for `dev` at `now` — the one
    /// place execution time meets throttling, shared by the resilient
    /// executor's attempt loop, safe-mode completion, and the straggler
    /// watchdog's hedge/verification predictions.
    pub fn throttled_exec(&self, dev: DeviceId, now: SimTime, base: SimTime) -> SimTime {
        let factor = self.throttle_factor(dev, now);
        if factor == 1.0 {
            base
        } else {
            SimTime::from_secs_f64(base.as_secs_f64() * factor)
        }
    }

    /// Check internal consistency: probabilities in `[0, 1]`, positive
    /// throttle factors, ordered windows, no host dropout.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                FaultEvent::TaskFaults {
                    prob, from, until, ..
                }
                | FaultEvent::TransferFaults { prob, from, until }
                | FaultEvent::SilentCorruption {
                    prob, from, until, ..
                }
                | FaultEvent::Flaky {
                    fault_prob: prob,
                    from,
                    until,
                    ..
                } => {
                    if !(0.0..=1.0).contains(prob) {
                        return Err(format!("event {i}: probability {prob} outside [0, 1]"));
                    }
                    if from > until {
                        return Err(format!("event {i}: window {from} > {until}"));
                    }
                }
                FaultEvent::DeviceDropout { dev, .. } => {
                    if dev.0 == 0 {
                        return Err(format!("event {i}: the host CPU cannot drop out"));
                    }
                }
                FaultEvent::ThrottleRamp {
                    from,
                    until,
                    start_factor,
                    end_factor,
                    ..
                } => {
                    if *start_factor <= 0.0 || *end_factor <= 0.0 {
                        return Err(format!("event {i}: throttle factors must be positive"));
                    }
                    if from > until {
                        return Err(format!("event {i}: window {from} > {until}"));
                    }
                }
                FaultEvent::ProfilePerturb {
                    factor,
                    from,
                    until,
                    ..
                } => {
                    if !(factor.is_finite() && *factor > 0.0) {
                        return Err(format!(
                            "event {i}: profile factor {factor} must be positive and finite"
                        ));
                    }
                    if from > until {
                        return Err(format!("event {i}: window {from} > {until}"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// How the runtime retries a faulted task on its device before failing it
/// over to a survivor.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts on the bound device before the task fails over (≥ 1).
    pub max_attempts: u32,
    /// Backoff charged (as simulated time) before the first retry.
    pub backoff: SimTime,
    /// Multiplier applied to the backoff for each further retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: SimTime::from_micros(10),
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the retry following failed attempt number `attempt`
    /// (1-based): `backoff × multiplier^(attempt − 1)`.
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        let scale = self
            .backoff_multiplier
            .powi(attempt.saturating_sub(1) as i32);
        SimTime::from_secs_f64(self.backoff.as_secs_f64() * scale)
    }
}

/// What the fault machinery did during one run (all zeros for a healthy
/// run). Reported through `RunReport::faults`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient task-attempt failures sampled.
    pub task_faults: u64,
    /// Retries performed on the same device after a task fault.
    pub task_retries: u64,
    /// Transfer attempts that failed.
    pub transfer_faults: u64,
    /// Transfer re-issues (equal to `transfer_faults`; every failed
    /// transfer is re-issued).
    pub transfer_retries: u64,
    /// Tasks forcibly moved to a surviving device (retry exhaustion, or a
    /// binding that named a dead device).
    pub failovers: u64,
    /// Completed-but-uncommitted tasks re-executed after a device dropout
    /// (their epoch had not reached its taskwait checkpoint).
    pub reexecutions: u64,
    /// Devices permanently lost.
    pub device_dropouts: u64,
    /// Tasks finished in safe mode (fault sampling disabled after retries
    /// were exhausted with no surviving failover target).
    pub safe_mode_tasks: u64,
    /// Simulated time spent in retry backoff.
    pub backoff_time: SimTime,
    /// Simulated time wasted on faults: failed attempts, backoff, and
    /// progress discarded by dropouts.
    pub time_lost: SimTime,
}

impl FaultCounters {
    /// Total faults injected (task + transfer + dropouts).
    pub fn faults_injected(&self) -> u64 {
        self.task_faults + self.transfer_faults + self.device_dropouts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = FaultRng::new(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn rng_f64_in_unit_interval() {
        let mut r = FaultRng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn task_fault_prob_respects_window_and_device() {
        let s = FaultSchedule::new(1).with_task_faults(
            Some(DeviceId(1)),
            0.5,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        assert_eq!(s.task_fault_prob(DeviceId(1), SimTime::from_millis(5)), 0.0);
        assert_eq!(
            s.task_fault_prob(DeviceId(1), SimTime::from_millis(15)),
            0.5
        );
        assert_eq!(
            s.task_fault_prob(DeviceId(1), SimTime::from_millis(20)),
            0.0
        );
        assert_eq!(
            s.task_fault_prob(DeviceId(0), SimTime::from_millis(15)),
            0.0
        );
    }

    #[test]
    fn overlapping_windows_compose_independently() {
        let s = FaultSchedule::new(1)
            .with_task_faults(None, 0.5, SimTime::ZERO, SimTime::MAX)
            .with_task_faults(None, 0.5, SimTime::ZERO, SimTime::MAX);
        let p = s.task_fault_prob(DeviceId(0), SimTime::from_millis(1));
        assert!((p - 0.75).abs() < 1e-12, "{p}");
    }

    #[test]
    fn throttle_ramp_interpolates_linearly() {
        let s = FaultSchedule::new(1).with_throttle(
            DeviceId(1),
            SimTime::from_millis(0),
            SimTime::from_millis(100),
            1.0,
            9.0,
        );
        assert_eq!(s.throttle_factor(DeviceId(1), SimTime::from_millis(0)), 1.0);
        let mid = s.throttle_factor(DeviceId(1), SimTime::from_millis(50));
        assert!((mid - 5.0).abs() < 1e-9, "{mid}");
        // Outside the window: nominal.
        assert_eq!(
            s.throttle_factor(DeviceId(1), SimTime::from_millis(100)),
            1.0
        );
        assert_eq!(
            s.throttle_factor(DeviceId(0), SimTime::from_millis(50)),
            1.0
        );
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff: SimTime::from_micros(10),
            backoff_multiplier: 2.0,
        };
        assert_eq!(p.backoff_for(1), SimTime::from_micros(10));
        assert_eq!(p.backoff_for(2), SimTime::from_micros(20));
        assert_eq!(p.backoff_for(3), SimTime::from_micros(40));
    }

    #[test]
    #[should_panic(expected = "host CPU cannot drop out")]
    fn host_dropout_is_rejected() {
        let _ = FaultSchedule::new(1).with_dropout(DeviceId(0), SimTime::ZERO);
    }

    #[test]
    fn corruption_prob_respects_window_and_device() {
        let s = FaultSchedule::new(1).with_silent_corruption(
            DeviceId(1),
            0.5,
            SimTime::from_millis(10),
            SimTime::from_millis(20),
        );
        assert_eq!(s.corruption_prob(DeviceId(1), SimTime::from_millis(5)), 0.0);
        assert_eq!(
            s.corruption_prob(DeviceId(1), SimTime::from_millis(15)),
            0.5
        );
        assert_eq!(
            s.corruption_prob(DeviceId(1), SimTime::from_millis(20)),
            0.0
        );
        assert_eq!(
            s.corruption_prob(DeviceId(0), SimTime::from_millis(15)),
            0.0
        );
        // Corruption never feeds the fault-sampling path.
        assert_eq!(
            s.task_fault_prob(DeviceId(1), SimTime::from_millis(15)),
            0.0
        );
    }

    #[test]
    fn flaky_composes_with_task_faults() {
        let s = FaultSchedule::new(1)
            .with_task_faults(Some(DeviceId(1)), 0.5, SimTime::ZERO, SimTime::MAX)
            .with_flaky(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
        let p = s.task_fault_prob(DeviceId(1), SimTime::from_millis(1));
        assert!((p - 0.75).abs() < 1e-12, "{p}");
        // Both windows are device-scoped.
        assert_eq!(s.task_fault_prob(DeviceId(0), SimTime::from_millis(1)), 0.0);
    }

    #[test]
    fn throttled_exec_scales_by_factor() {
        let s =
            FaultSchedule::new(1).with_throttle(DeviceId(1), SimTime::ZERO, SimTime::MAX, 4.0, 4.0);
        let base = SimTime::from_millis(10);
        assert_eq!(
            s.throttled_exec(DeviceId(1), SimTime::from_millis(1), base),
            SimTime::from_millis(40)
        );
        // Factor 1.0 passes `base` through exactly (no float round-trip).
        assert_eq!(
            s.throttled_exec(DeviceId(0), SimTime::from_millis(1), base),
            base
        );
    }

    #[test]
    fn validate_catches_bad_gray_events() {
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::SilentCorruption {
            dev: DeviceId(1),
            prob: -0.1,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        assert!(s.validate().is_err());
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::Flaky {
            dev: DeviceId(1),
            fault_prob: 0.5,
            from: SimTime::from_millis(2),
            until: SimTime::from_millis(1),
        });
        assert!(s.validate().is_err());
        assert!(FaultSchedule::new(1)
            .with_silent_corruption(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
            .with_flaky(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
            .validate()
            .is_ok());
    }

    #[test]
    fn profile_perturb_skews_only_the_planner_view() {
        let s = FaultSchedule::new(1).with_profile_perturb(
            DeviceId(1),
            0.5,
            SimTime::ZERO,
            SimTime::from_millis(10),
        );
        assert_eq!(s.profile_factor(DeviceId(1), SimTime::ZERO), 0.5);
        // Outside the window and on other devices: nominal.
        assert_eq!(s.profile_factor(DeviceId(1), SimTime::from_millis(10)), 1.0);
        assert_eq!(s.profile_factor(DeviceId(0), SimTime::ZERO), 1.0);
        // True execution paths never see the perturbation.
        assert_eq!(s.throttle_factor(DeviceId(1), SimTime::ZERO), 1.0);
        assert_eq!(s.task_fault_prob(DeviceId(1), SimTime::ZERO), 0.0);
        // Overlapping windows compose multiplicatively.
        let s2 = s.with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
        assert_eq!(s2.profile_factor(DeviceId(1), SimTime::ZERO), 0.25);
    }

    #[test]
    fn validate_catches_bad_profile_factor() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut s = FaultSchedule::new(1);
            s.events.push(FaultEvent::ProfilePerturb {
                dev: DeviceId(1),
                factor: bad,
                from: SimTime::ZERO,
                until: SimTime::MAX,
            });
            assert!(s.validate().is_err(), "factor {bad} should be rejected");
        }
        assert!(FaultSchedule::new(1)
            .with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
            .validate()
            .is_ok());
    }

    #[test]
    fn validate_catches_bad_probability() {
        let mut s = FaultSchedule::new(1);
        s.events.push(FaultEvent::TaskFaults {
            dev: None,
            prob: 1.5,
            from: SimTime::ZERO,
            until: SimTime::MAX,
        });
        assert!(s.validate().is_err());
        assert!(FaultSchedule::new(1).validate().is_ok());
    }
}
