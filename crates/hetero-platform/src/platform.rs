//! Platform composition: devices + memory spaces + links.

use crate::device::{Device, DeviceId, DeviceKind, DeviceSpec};
use crate::link::LinkSpec;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies a memory space. Space 0 is always the host (CPU) memory; each
/// accelerator gets its own space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MemSpaceId(pub usize);

impl MemSpaceId {
    /// The host memory space.
    pub const HOST: MemSpaceId = MemSpaceId(0);

    /// `true` for the host space.
    pub fn is_host(self) -> bool {
        self == Self::HOST
    }
}

/// A heterogeneous platform: a host CPU, zero or more accelerators, the
/// memory space of each, and the interconnect links between spaces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Platform {
    /// All devices; index = `DeviceId.0`. Device 0 is the host CPU.
    pub devices: Vec<Device>,
    /// Links keyed by *unordered* space pair `(min, max)`; transfers in both
    /// directions use the same link (full-duplex PCIe is not modelled, the
    /// paper's applications never overlap H2D and D2H).
    pub links: BTreeMap<(MemSpaceId, MemSpaceId), LinkSpec>,
    /// Number of memory spaces (host + one per accelerator).
    pub mem_spaces: usize,
    /// Fixed cost of one dynamic scheduling decision in the runtime (queue
    /// manipulation, dependence bookkeeping, policy evaluation). Static
    /// partitioning pays this per *partition* (a handful); dynamic
    /// partitioning pays it per *task instance*.
    pub sched_overhead: SimTime,
}

impl Platform {
    /// Builder entry point.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::default()
    }

    /// The host CPU device.
    pub fn cpu(&self) -> &Device {
        &self.devices[0]
    }

    /// The first GPU device, if any.
    pub fn gpu(&self) -> Option<&Device> {
        self.devices.iter().find(|d| d.spec.kind.is_gpu())
    }

    /// All accelerator devices (everything except device 0).
    pub fn accelerators(&self) -> impl Iterator<Item = &Device> {
        self.devices.iter().skip(1)
    }

    /// Look up a device.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// The link between two memory spaces, if they are distinct.
    /// Panics if distinct spaces have no link (a mis-built platform).
    pub fn link(&self, a: MemSpaceId, b: MemSpaceId) -> Option<&LinkSpec> {
        if a == b {
            return None;
        }
        let key = (a.min(b), a.max(b));
        Some(
            self.links
                .get(&key)
                .unwrap_or_else(|| panic!("no link between {a:?} and {b:?}")),
        )
    }

    /// Time to move `bytes` from space `from` to space `to` (zero if same
    /// space).
    pub fn transfer_time(&self, from: MemSpaceId, to: MemSpaceId, bytes: u64) -> SimTime {
        match self.link(from, to) {
            None => SimTime::ZERO,
            Some(l) => l.transfer_time(bytes),
        }
    }

    /// Total schedulable slots across all devices.
    pub fn total_slots(&self) -> usize {
        self.devices.iter().map(|d| d.spec.kind.slots()).sum()
    }

    /// The paper's evaluation platform (Table III): an Intel Xeon E5-2620
    /// (2.0 GHz, 6 cores / 12 HT threads, 384/192 GFLOP/s SP/DP, 42.6 GB/s,
    /// 64 GB) plus an Nvidia Tesla K20m (0.705 GHz, 13 SMX / 2496 cores,
    /// 3519.3/1173.1 GFLOP/s, 208 GB/s, 5 GB), connected by PCIe 2.0 x16
    /// (~6 GB/s sustained — not listed in Table III; standard for the K20m's
    /// era and consistent with the transfer/compute ratios reported in the
    /// paper's text).
    pub fn icpp15() -> Platform {
        Platform::builder()
            .cpu(DeviceSpec {
                name: "Intel Xeon E5-2620".into(),
                kind: DeviceKind::Cpu {
                    cores: 6,
                    threads: 12,
                },
                frequency_ghz: 2.0,
                peak_gflops_sp: 384.0,
                peak_gflops_dp: 192.0,
                mem_bandwidth_gbs: 42.6,
                mem_capacity_gb: 64.0,
                launch_overhead: SimTime::from_micros(2),
            })
            .accelerator(
                DeviceSpec {
                    name: "Nvidia Tesla K20m".into(),
                    kind: DeviceKind::Gpu {
                        sms: 13,
                        warp_size: 32,
                    },
                    frequency_ghz: 0.705,
                    peak_gflops_sp: 3519.3,
                    peak_gflops_dp: 1173.1,
                    mem_bandwidth_gbs: 208.0,
                    mem_capacity_gb: 5.0,
                    launch_overhead: SimTime::from_micros(12),
                },
                LinkSpec::new(6.0, SimTime::from_micros(15)),
            )
            .sched_overhead(SimTime::from_micros(8))
            .build()
    }

    /// The paper's platform extended with a second accelerator: a Xeon
    /// Phi-class coprocessor (~61 cores, 512-bit SIMD) attached over its
    /// own PCIe 2.0 link. The paper's future work ("apply our analyzer to
    /// heterogeneous platforms with other types of accelerators") and
    /// Glinda's multi-accelerator support are exercised against this
    /// preset. The coprocessor is modelled with the accelerator device
    /// kind (`DeviceKind::Gpu` means "PCIe-attached accelerator" here),
    /// with a 16-lane SIMD granularity.
    pub fn icpp15_with_phi() -> Platform {
        let base = Platform::icpp15();
        Platform::builder()
            .cpu(base.cpu().spec.clone())
            .accelerator(
                base.gpu().unwrap().spec.clone(),
                LinkSpec::new(6.0, SimTime::from_micros(15)),
            )
            .accelerator(
                DeviceSpec {
                    name: "Xeon Phi-class coprocessor".into(),
                    kind: DeviceKind::Gpu {
                        sms: 61,
                        warp_size: 16,
                    },
                    frequency_ghz: 1.1,
                    peak_gflops_sp: 2147.0,
                    peak_gflops_dp: 1073.0,
                    mem_bandwidth_gbs: 320.0,
                    mem_capacity_gb: 8.0,
                    launch_overhead: SimTime::from_micros(20),
                },
                LinkSpec::new(6.0, SimTime::from_micros(20)),
            )
            .sched_overhead(base.sched_overhead)
            .build()
    }

    /// A small symmetric test platform: 4-thread CPU + a GPU exactly 4×
    /// faster with a fast link. Used by unit tests that need round numbers.
    pub fn test_small() -> Platform {
        Platform::builder()
            .cpu(DeviceSpec {
                name: "test-cpu".into(),
                kind: DeviceKind::Cpu {
                    cores: 4,
                    threads: 4,
                },
                frequency_ghz: 1.0,
                peak_gflops_sp: 100.0,
                peak_gflops_dp: 50.0,
                mem_bandwidth_gbs: 50.0,
                mem_capacity_gb: 16.0,
                launch_overhead: SimTime::ZERO,
            })
            .accelerator(
                DeviceSpec {
                    name: "test-gpu".into(),
                    kind: DeviceKind::Gpu {
                        sms: 4,
                        warp_size: 32,
                    },
                    frequency_ghz: 1.0,
                    peak_gflops_sp: 400.0,
                    peak_gflops_dp: 200.0,
                    mem_bandwidth_gbs: 200.0,
                    mem_capacity_gb: 4.0,
                    launch_overhead: SimTime::ZERO,
                },
                LinkSpec::new(10.0, SimTime::ZERO),
            )
            .sched_overhead(SimTime::ZERO)
            .build()
    }
}

/// Incrementally builds a [`Platform`]. The CPU must be set first; each
/// accelerator brings its own memory space and host link.
#[derive(Default)]
pub struct PlatformBuilder {
    cpu: Option<DeviceSpec>,
    accels: Vec<(DeviceSpec, LinkSpec)>,
    sched_overhead: SimTime,
}

impl PlatformBuilder {
    /// Set the host CPU (required, exactly once).
    pub fn cpu(mut self, spec: DeviceSpec) -> Self {
        assert!(spec.kind.is_cpu(), "host device must be a CPU");
        assert!(self.cpu.is_none(), "cpu() may only be called once");
        self.cpu = Some(spec);
        self
    }

    /// Add an accelerator and its link to host memory.
    pub fn accelerator(mut self, spec: DeviceSpec, link: LinkSpec) -> Self {
        assert!(!spec.kind.is_cpu(), "accelerators must not be CPUs");
        self.accels.push((spec, link));
        self
    }

    /// Set the per-decision dynamic scheduling overhead.
    pub fn sched_overhead(mut self, t: SimTime) -> Self {
        self.sched_overhead = t;
        self
    }

    /// Finalise. Panics if no CPU was provided.
    pub fn build(self) -> Platform {
        let cpu = self.cpu.expect("platform requires a host CPU");
        let mut devices = vec![Device {
            id: DeviceId(0),
            spec: cpu,
            mem_space: MemSpaceId::HOST,
        }];
        let mut links = BTreeMap::new();
        for (i, (spec, link)) in self.accels.into_iter().enumerate() {
            let space = MemSpaceId(i + 1);
            devices.push(Device {
                id: DeviceId(i + 1),
                spec,
                mem_space: space,
            });
            links.insert((MemSpaceId::HOST, space), link);
        }
        let mem_spaces = devices.len();
        Platform {
            devices,
            links,
            mem_spaces,
            sched_overhead: self.sched_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icpp15_matches_table_iii() {
        let p = Platform::icpp15();
        assert_eq!(p.devices.len(), 2);
        let cpu = p.cpu();
        assert_eq!(cpu.spec.kind.slots(), 12);
        assert_eq!(cpu.spec.peak_gflops_sp, 384.0);
        assert_eq!(cpu.spec.mem_bandwidth_gbs, 42.6);
        let gpu = p.gpu().unwrap();
        assert_eq!(gpu.spec.peak_gflops_sp, 3519.3);
        assert_eq!(gpu.spec.peak_gflops_dp, 1173.1);
        assert_eq!(gpu.spec.mem_bandwidth_gbs, 208.0);
        assert_eq!(gpu.spec.kind.partition_granularity(), 32);
        assert!(p.link(MemSpaceId::HOST, gpu.mem_space).is_some());
    }

    #[test]
    fn same_space_transfer_is_free() {
        let p = Platform::icpp15();
        assert_eq!(
            p.transfer_time(MemSpaceId::HOST, MemSpaceId::HOST, 1 << 30),
            SimTime::ZERO
        );
    }

    #[test]
    fn cross_space_transfer_uses_link_both_directions() {
        let p = Platform::icpp15();
        let g = p.gpu().unwrap().mem_space;
        let h2d = p.transfer_time(MemSpaceId::HOST, g, 1 << 20);
        let d2h = p.transfer_time(g, MemSpaceId::HOST, 1 << 20);
        assert_eq!(h2d, d2h);
        assert!(h2d > SimTime::ZERO);
    }

    #[test]
    fn total_slots() {
        assert_eq!(Platform::icpp15().total_slots(), 13);
        assert_eq!(Platform::test_small().total_slots(), 5);
    }

    #[test]
    #[should_panic(expected = "requires a host CPU")]
    fn build_requires_cpu() {
        let _ = Platform::builder().build();
    }

    #[test]
    fn multi_accelerator_platform() {
        let base = Platform::test_small();
        let gpu_spec = base.gpu().unwrap().spec.clone();
        let p = Platform::builder()
            .cpu(base.cpu().spec.clone())
            .accelerator(gpu_spec.clone(), LinkSpec::new(8.0, SimTime::ZERO))
            .accelerator(gpu_spec, LinkSpec::new(4.0, SimTime::ZERO))
            .build();
        assert_eq!(p.devices.len(), 3);
        assert_eq!(p.mem_spaces, 3);
        assert_eq!(p.accelerators().count(), 2);
        // Distinct links per accelerator.
        let t1 = p.transfer_time(MemSpaceId::HOST, MemSpaceId(1), 1 << 30);
        let t2 = p.transfer_time(MemSpaceId::HOST, MemSpaceId(2), 1 << 30);
        assert!(t2 > t1);
    }
}
