//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)` where the sequence number is the
//! insertion order; two events at the same virtual time are therefore always
//! delivered in insertion order, which makes the whole simulation — and with
//! it every figure of the reproduction — deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(SimTime, E)` events with deterministic FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at absolute virtual time `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(5), 0);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(5), 0)));
        q.push(SimTime::from_nanos(7), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(7), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.len(), 1);
    }
}
