//! Interconnect links between memory spaces.
//!
//! Host↔device transfers are the second derived metric of the Glinda model
//! (the *GPU computation to data-transfer gap*) and the dominant cost in
//! several of the paper's applications (BlackScholes: transfer ≈ 37.5× the
//! GPU kernel time; STREAM: ≈ 88% of the GPU execution time).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A point-to-point link between two memory spaces (e.g. PCIe between host
/// DRAM and GPU GDDR). Transfers cost `latency + bytes / bandwidth`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fixed per-transfer latency (driver + DMA setup). This is what makes
    /// many small transfers (dynamic partitioning) more expensive than one
    /// large transfer (static partitioning) of the same total volume.
    pub latency: SimTime,
}

impl LinkSpec {
    /// Create a link with the given bandwidth and latency.
    pub fn new(bandwidth_gbs: f64, latency: SimTime) -> Self {
        assert!(bandwidth_gbs > 0.0, "link bandwidth must be positive");
        LinkSpec {
            bandwidth_gbs,
            latency,
        }
    }

    /// Time to move `bytes` bytes across this link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.latency + SimTime::from_secs_f64(bytes as f64 / (self.bandwidth_gbs * 1e9))
    }

    /// [`LinkSpec::transfer_time`] on a *degraded* link: the wire runs at
    /// `bandwidth_factor` × nominal bandwidth and `latency_factor` ×
    /// nominal latency (see `FaultSchedule::link_factors`). With both
    /// factors at exactly `1.0` this returns the nominal cost bit for bit
    /// — no float round trip — so undegraded schedules replay unchanged.
    pub fn transfer_time_scaled(
        &self,
        bytes: u64,
        bandwidth_factor: f64,
        latency_factor: f64,
    ) -> SimTime {
        if bandwidth_factor == 1.0 && latency_factor == 1.0 {
            return self.transfer_time(bytes);
        }
        if bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs_f64(self.latency.as_secs_f64() * latency_factor)
            + SimTime::from_secs_f64(bytes as f64 / (self.bandwidth_gbs * bandwidth_factor * 1e9))
    }

    /// Effective bandwidth (bytes/s) achieved for a transfer of `bytes`,
    /// accounting for latency. Convention: a zero-byte transfer takes zero
    /// time (see [`LinkSpec::transfer_time`]), so its effective bandwidth
    /// is the nominal wire rate `bandwidth_gbs * 1e9` — the limit the
    /// latency-amortisation curve approaches, not `0.0` (which used to
    /// force callers to special-case the empty transfer).
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return self.bandwidth_gbs * 1e9;
        }
        bytes as f64 / self.transfer_time(bytes).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        assert_eq!(l.transfer_time(0), SimTime::ZERO);
    }

    #[test]
    fn transfer_time_is_latency_plus_volume() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        // 6 GB at 6 GB/s = 1 s + 10 us.
        let t = l.transfer_time(6_000_000_000);
        assert_eq!(t, SimTime::from_secs_f64(1.0) + SimTime::from_micros(10));
    }

    #[test]
    fn small_transfers_are_latency_dominated() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        let small = l.effective_bandwidth(1_000); // 1 KB
        let large = l.effective_bandwidth(1_000_000_000); // 1 GB
        assert!(small < 0.05 * large, "small={small}, large={large}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_nonpositive_bandwidth() {
        let _ = LinkSpec::new(0.0, SimTime::ZERO);
    }

    #[test]
    fn zero_byte_effective_bandwidth_is_nominal() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        // A free transfer achieves the nominal wire rate — the limit the
        // amortisation curve approaches — not 0.0.
        assert_eq!(l.effective_bandwidth(0), 6.0e9);
        assert!(l.effective_bandwidth(1 << 30) < l.effective_bandwidth(0));
    }

    #[test]
    fn scaled_transfer_time_degrades_the_wire() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        // Unit factors reproduce the nominal cost exactly.
        assert_eq!(
            l.transfer_time_scaled(12_345, 1.0, 1.0),
            l.transfer_time(12_345)
        );
        assert_eq!(l.transfer_time_scaled(0, 0.5, 2.0), SimTime::ZERO);
        // Half bandwidth, double latency: 6 GB now takes 2 s + 20 us.
        let t = l.transfer_time_scaled(6_000_000_000, 0.5, 2.0);
        assert_eq!(t, SimTime::from_secs_f64(2.0) + SimTime::from_micros(20));
    }
}
