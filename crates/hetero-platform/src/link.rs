//! Interconnect links between memory spaces.
//!
//! Host↔device transfers are the second derived metric of the Glinda model
//! (the *GPU computation to data-transfer gap*) and the dominant cost in
//! several of the paper's applications (BlackScholes: transfer ≈ 37.5× the
//! GPU kernel time; STREAM: ≈ 88% of the GPU execution time).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A point-to-point link between two memory spaces (e.g. PCIe between host
/// DRAM and GPU GDDR). Transfers cost `latency + bytes / bandwidth`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Fixed per-transfer latency (driver + DMA setup). This is what makes
    /// many small transfers (dynamic partitioning) more expensive than one
    /// large transfer (static partitioning) of the same total volume.
    pub latency: SimTime,
}

impl LinkSpec {
    /// Create a link with the given bandwidth and latency.
    pub fn new(bandwidth_gbs: f64, latency: SimTime) -> Self {
        assert!(bandwidth_gbs > 0.0, "link bandwidth must be positive");
        LinkSpec {
            bandwidth_gbs,
            latency,
        }
    }

    /// Time to move `bytes` bytes across this link.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.latency + SimTime::from_secs_f64(bytes as f64 / (self.bandwidth_gbs * 1e9))
    }

    /// Effective bandwidth (bytes/s) achieved for a transfer of `bytes`,
    /// accounting for latency.
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_time(bytes).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        assert_eq!(l.transfer_time(0), SimTime::ZERO);
    }

    #[test]
    fn transfer_time_is_latency_plus_volume() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        // 6 GB at 6 GB/s = 1 s + 10 us.
        let t = l.transfer_time(6_000_000_000);
        assert_eq!(t, SimTime::from_secs_f64(1.0) + SimTime::from_micros(10));
    }

    #[test]
    fn small_transfers_are_latency_dominated() {
        let l = LinkSpec::new(6.0, SimTime::from_micros(10));
        let small = l.effective_bandwidth(1_000); // 1 KB
        let large = l.effective_bandwidth(1_000_000_000); // 1 GB
        assert!(small < 0.05 * large, "small={small}, large={large}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_nonpositive_bandwidth() {
        let _ = LinkSpec::new(0.0, SimTime::ZERO);
    }
}
