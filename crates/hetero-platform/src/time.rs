//! Virtual time.
//!
//! All simulation timestamps and durations are integer nanoseconds wrapped in
//! [`SimTime`]. Using an integer representation (rather than `f64` seconds)
//! makes event ordering exact and every simulated experiment deterministic
//! across runs and machines.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time *or* a span of virtual time, in nanoseconds.
///
/// Like many discrete-event simulators we use a single type for both
/// instants and durations; the zero point is the start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (fractional) seconds, saturating at [`SimTime::MAX`]
    /// and flooring negative values to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = secs * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds (the unit used in the paper's figures).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `true` if this is the zero time/duration.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics on underflow in debug builds, like integer subtraction.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable display with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(2_500_000).as_millis_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_clamps() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a + b, SimTime::from_nanos(140));
        assert_eq!(a - b, SimTime::from_nanos(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_nanos(300));
        assert_eq!(a / 4, SimTime::from_nanos(25));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_and_ordering() {
        let times = [1u64, 2, 3].map(SimTime::from_nanos);
        let total: SimTime = times.iter().copied().sum();
        assert_eq!(total, SimTime::from_nanos(6));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_nanos(5_000).to_string(), "5.00us");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimTime::from_secs_f64(5.0).to_string(), "5.000s");
    }
}
