//! Kernel workload profiles.
//!
//! A data-parallel kernel is characterised — for the purpose of predicting
//! its execution time on a device — by how much arithmetic and how much
//! memory traffic it performs per data item, plus fixed per-invocation
//! costs. This is the information the paper's partitioning models consume:
//! the workload of a partition of `k` items is proportional to `k`
//! (Section I of the paper), and a device's speed on it follows a roofline.

use serde::{Deserialize, Serialize};

/// Floating-point precision of a kernel, selecting which peak-FLOPS figure
/// of a device applies (Table III lists SP and DP peaks separately).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Single precision (f32) — used by all six paper applications.
    #[default]
    Single,
    /// Double precision (f64).
    Double,
}

/// Per-item and per-invocation resource demands of one kernel, together with
/// the achieved-fraction-of-peak efficiencies on each device class.
///
/// The efficiencies encode what in reality is determined by the kernel's
/// implementation quality and its fit to the architecture (e.g. a stencil
/// kernel reaches a far smaller fraction of a GPU's peak than a dense GEMM).
/// They are the calibration knobs of the reproduction and are documented per
/// application in the `hetero-apps` crate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Floating-point operations per data item.
    pub flops_per_item: f64,
    /// Bytes of device-memory (DRAM) traffic per data item.
    pub bytes_per_item: f64,
    /// Fixed floating-point operations per kernel invocation (independent of
    /// the partition size).
    pub fixed_flops: f64,
    /// Fixed bytes of device-memory traffic per invocation.
    pub fixed_bytes: f64,
    /// Precision, selecting the peak-FLOPS column.
    pub precision: Precision,
    /// Fraction of peak compute/bandwidth achieved on a CPU core.
    pub cpu_efficiency: Efficiency,
    /// Fraction of peak compute/bandwidth achieved on a GPU.
    pub gpu_efficiency: Efficiency,
}

/// Achieved fraction of a device's peak compute throughput and peak memory
/// bandwidth for a particular kernel.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Efficiency {
    /// Fraction of peak FLOPS achieved, in `(0, 1]`.
    pub compute: f64,
    /// Fraction of peak memory bandwidth achieved, in `(0, 1]`.
    pub bandwidth: f64,
}

impl Efficiency {
    /// An efficiency profile achieving the given identical fraction of both
    /// peaks.
    pub const fn uniform(f: f64) -> Self {
        Efficiency {
            compute: f,
            bandwidth: f,
        }
    }

    /// Full efficiency (useful in unit tests where exact roofline arithmetic
    /// is asserted).
    pub const IDEAL: Efficiency = Efficiency::uniform(1.0);
}

impl KernelProfile {
    /// A compute-only profile with ideal efficiency — handy for tests.
    pub fn compute_only(flops_per_item: f64) -> Self {
        KernelProfile {
            flops_per_item,
            bytes_per_item: 0.0,
            fixed_flops: 0.0,
            fixed_bytes: 0.0,
            precision: Precision::Single,
            cpu_efficiency: Efficiency::IDEAL,
            gpu_efficiency: Efficiency::IDEAL,
        }
    }

    /// A memory-only (streaming) profile with ideal efficiency.
    pub fn memory_only(bytes_per_item: f64) -> Self {
        KernelProfile {
            flops_per_item: 0.0,
            bytes_per_item,
            fixed_flops: 0.0,
            fixed_bytes: 0.0,
            precision: Precision::Single,
            cpu_efficiency: Efficiency::IDEAL,
            gpu_efficiency: Efficiency::IDEAL,
        }
    }

    /// Total FLOPs for a partition of `items` data items.
    pub fn flops(&self, items: u64) -> f64 {
        self.fixed_flops + self.flops_per_item * items as f64
    }

    /// Total device-memory bytes for a partition of `items` data items.
    pub fn bytes(&self, items: u64) -> f64 {
        self.fixed_bytes + self.bytes_per_item * items as f64
    }

    /// Arithmetic intensity in FLOPs/byte (ignoring fixed costs); infinite
    /// for pure-compute kernels.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes_per_item == 0.0 {
            f64::INFINITY
        } else {
            self.flops_per_item / self.bytes_per_item
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_scale_linearly_with_items() {
        let p = KernelProfile {
            flops_per_item: 2.0,
            bytes_per_item: 8.0,
            fixed_flops: 100.0,
            fixed_bytes: 50.0,
            ..KernelProfile::compute_only(0.0)
        };
        assert_eq!(p.flops(10), 120.0);
        assert_eq!(p.bytes(10), 130.0);
        assert_eq!(p.flops(0), 100.0);
    }

    #[test]
    fn arithmetic_intensity() {
        let p = KernelProfile {
            flops_per_item: 4.0,
            bytes_per_item: 16.0,
            ..KernelProfile::compute_only(0.0)
        };
        assert_eq!(p.arithmetic_intensity(), 0.25);
        assert_eq!(
            KernelProfile::compute_only(5.0).arithmetic_intensity(),
            f64::INFINITY
        );
    }
}
