//! Device models.
//!
//! A [`Device`] predicts how long a kernel partition takes using a *roofline*
//! model: execution time is the maximum of the compute time and the
//! device-memory time, plus a fixed per-invocation launch overhead.
//!
//! A CPU device exposes multiple *slots* (one per hardware thread, matching
//! the paper's SMP threads in OmpSs); a task instance placed on a slot uses
//! `1/slots` of the device's aggregate peak compute and bandwidth. A GPU
//! exposes a single slot that uses the whole device (the paper serialises
//! kernels on the GPU; no concurrent streams are modelled).

use crate::time::SimTime;
use crate::workload::{KernelProfile, Precision};
use serde::{Deserialize, Serialize};

/// Identifies a device within a [`crate::Platform`]. Index into
/// `Platform::devices`. By convention device 0 is the host CPU.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct DeviceId(pub usize);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// The architectural class of a device.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A multi-core CPU. `threads` is the number of schedulable hardware
    /// threads (12 on the paper's Hyper-Threaded 6-core Xeon E5-2620).
    Cpu {
        /// Physical cores.
        cores: u32,
        /// Schedulable hardware threads (≥ `cores`).
        threads: u32,
    },
    /// A discrete GPU accelerator. `sms` is the number of streaming
    /// multiprocessors (13 SMX on the paper's K20m).
    Gpu {
        /// Streaming multiprocessors.
        sms: u32,
        /// Warp size; static partitions are rounded up to a multiple of this
        /// (footnote 5 in the paper).
        warp_size: u32,
    },
}

impl DeviceKind {
    /// `true` for CPUs.
    pub fn is_cpu(self) -> bool {
        matches!(self, DeviceKind::Cpu { .. })
    }

    /// `true` for GPUs.
    pub fn is_gpu(self) -> bool {
        matches!(self, DeviceKind::Gpu { .. })
    }

    /// Number of task instances the device can execute concurrently.
    pub fn slots(self) -> usize {
        match self {
            DeviceKind::Cpu { threads, .. } => threads as usize,
            DeviceKind::Gpu { .. } => 1,
        }
    }

    /// Granularity to which a static partition for this device is rounded
    /// (GPU warp size; 1 for CPUs).
    pub fn partition_granularity(self) -> u64 {
        match self {
            DeviceKind::Cpu { .. } => 1,
            DeviceKind::Gpu { warp_size, .. } => warp_size as u64,
        }
    }
}

/// Static description of a device: the quantities of the paper's Table III
/// plus the fixed overheads that differentiate static from dynamic
/// partitioning.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name (e.g. `"Intel Xeon E5-2620"`).
    pub name: String,
    /// Architectural class and parallelism.
    pub kind: DeviceKind,
    /// Core clock in GHz (informational; peaks below are authoritative).
    pub frequency_ghz: f64,
    /// Aggregate peak single-precision GFLOP/s.
    pub peak_gflops_sp: f64,
    /// Aggregate peak double-precision GFLOP/s.
    pub peak_gflops_dp: f64,
    /// Peak device-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device-memory capacity in GB.
    pub mem_capacity_gb: f64,
    /// Fixed cost of launching one kernel/task instance on this device
    /// (OpenCL kernel invocation on the GPU, task spawn on a CPU thread).
    pub launch_overhead: SimTime,
}

impl DeviceSpec {
    /// Peak GFLOP/s for the given precision.
    pub fn peak_gflops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Single => self.peak_gflops_sp,
            Precision::Double => self.peak_gflops_dp,
        }
    }

    /// Per-slot peak GFLOP/s (aggregate ÷ slots).
    pub fn slot_gflops(&self, precision: Precision) -> f64 {
        self.peak_gflops(precision) / self.kind.slots() as f64
    }

    /// Per-slot peak bandwidth in GB/s (aggregate ÷ slots).
    pub fn slot_bandwidth_gbs(&self) -> f64 {
        self.mem_bandwidth_gbs / self.kind.slots() as f64
    }
}

/// A device instantiated in a platform: its spec plus its identity and the
/// memory space its kernels read and write.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Device {
    /// Identity within the owning platform.
    pub id: DeviceId,
    /// Static description.
    pub spec: DeviceSpec,
    /// The memory space this device computes in (CPU: the host space).
    pub mem_space: crate::platform::MemSpaceId,
}

impl Device {
    /// The efficiency entry of `profile` that applies to this device class.
    pub fn efficiency<'p>(&self, profile: &'p KernelProfile) -> &'p crate::Efficiency {
        match self.spec.kind {
            DeviceKind::Cpu { .. } => &profile.cpu_efficiency,
            DeviceKind::Gpu { .. } => &profile.gpu_efficiency,
        }
    }

    /// Roofline execution time of a partition of `items` items of kernel
    /// `profile` on **one slot** of this device, including launch overhead.
    ///
    /// A zero-item partition still pays the launch overhead: dynamic
    /// strategies that launch many tiny instances pay proportionally (one of
    /// the overhead sources the paper attributes to dynamic partitioning).
    pub fn exec_time(&self, profile: &KernelProfile, items: u64) -> SimTime {
        self.exec_time_weighted(profile, items, 1.0)
    }

    /// [`Device::exec_time`] with a workload multiplier for imbalanced
    /// kernels: the partition's items cost `work_scale ×` the profile's
    /// per-item resources.
    pub fn exec_time_weighted(
        &self,
        profile: &KernelProfile,
        items: u64,
        work_scale: f64,
    ) -> SimTime {
        let eff = self.efficiency(profile);
        let gflops = self.spec.slot_gflops(profile.precision) * eff.compute;
        let gbs = self.spec.slot_bandwidth_gbs() * eff.bandwidth;
        let t_compute = if profile.flops(items) > 0.0 {
            profile.flops(items) * work_scale / (gflops * 1e9)
        } else {
            0.0
        };
        let t_memory = if profile.bytes(items) > 0.0 {
            profile.bytes(items) * work_scale / (gbs * 1e9)
        } else {
            0.0
        };
        self.spec.launch_overhead + SimTime::from_secs_f64(t_compute.max(t_memory))
    }

    /// Execution time using the whole device (all slots cooperating on one
    /// partition), as in an Only-CPU parallel region or a GPU kernel.
    pub fn exec_time_whole_device(&self, profile: &KernelProfile, items: u64) -> SimTime {
        self.exec_time_whole_device_weighted(profile, items, 1.0)
    }

    /// [`Device::exec_time_whole_device`] with an imbalanced-workload
    /// multiplier (see [`Device::exec_time_weighted`]).
    pub fn exec_time_whole_device_weighted(
        &self,
        profile: &KernelProfile,
        items: u64,
        work_scale: f64,
    ) -> SimTime {
        let eff = self.efficiency(profile);
        let gflops = self.spec.peak_gflops(profile.precision) * eff.compute;
        let gbs = self.spec.mem_bandwidth_gbs * eff.bandwidth;
        let t_compute = if profile.flops(items) > 0.0 {
            profile.flops(items) * work_scale / (gflops * 1e9)
        } else {
            0.0
        };
        let t_memory = if profile.bytes(items) > 0.0 {
            profile.bytes(items) * work_scale / (gbs * 1e9)
        } else {
            0.0
        };
        self.spec.launch_overhead + SimTime::from_secs_f64(t_compute.max(t_memory))
    }

    /// Sustained throughput of the whole device on this kernel, in items/s —
    /// the quantity Glinda's profiling step estimates. Excludes launch
    /// overhead and transfers.
    pub fn throughput_items_per_sec(&self, profile: &KernelProfile) -> f64 {
        let eff = self.efficiency(profile);
        let gflops = self.spec.peak_gflops(profile.precision) * eff.compute;
        let gbs = self.spec.mem_bandwidth_gbs * eff.bandwidth;
        let t_compute = profile.flops_per_item / (gflops * 1e9);
        let t_memory = profile.bytes_per_item / (gbs * 1e9);
        let per_item = t_compute.max(t_memory);
        if per_item <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / per_item
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::MemSpaceId;
    use crate::workload::Efficiency;

    fn cpu_dev() -> Device {
        Device {
            id: DeviceId(0),
            spec: DeviceSpec {
                name: "test-cpu".into(),
                kind: DeviceKind::Cpu {
                    cores: 4,
                    threads: 8,
                },
                frequency_ghz: 2.0,
                peak_gflops_sp: 80.0,
                peak_gflops_dp: 40.0,
                mem_bandwidth_gbs: 40.0,
                mem_capacity_gb: 64.0,
                launch_overhead: SimTime::from_micros(1),
            },
            mem_space: MemSpaceId(0),
        }
    }

    fn gpu_dev() -> Device {
        Device {
            id: DeviceId(1),
            spec: DeviceSpec {
                name: "test-gpu".into(),
                kind: DeviceKind::Gpu {
                    sms: 13,
                    warp_size: 32,
                },
                frequency_ghz: 0.7,
                peak_gflops_sp: 1000.0,
                peak_gflops_dp: 333.0,
                mem_bandwidth_gbs: 200.0,
                mem_capacity_gb: 5.0,
                launch_overhead: SimTime::from_micros(10),
            },
            mem_space: MemSpaceId(1),
        }
    }

    #[test]
    fn slots_and_granularity() {
        assert_eq!(cpu_dev().spec.kind.slots(), 8);
        assert_eq!(gpu_dev().spec.kind.slots(), 1);
        assert_eq!(cpu_dev().spec.kind.partition_granularity(), 1);
        assert_eq!(gpu_dev().spec.kind.partition_granularity(), 32);
    }

    #[test]
    fn compute_bound_roofline() {
        // 80 GFLOPS aggregate, 8 slots => 10 GFLOPS per slot.
        // 1e6 items * 1e4 flops = 1e10 flops => 1 second on one slot.
        let p = KernelProfile::compute_only(1e4);
        let t = cpu_dev().exec_time(&p, 1_000_000);
        let expected = SimTime::from_secs_f64(1.0) + SimTime::from_micros(1);
        assert_eq!(t, expected);
    }

    #[test]
    fn memory_bound_roofline() {
        // 200 GB/s GPU; 2e9 items * 100 B = 2e11 B => 1 second.
        let p = KernelProfile::memory_only(100.0);
        let t = gpu_dev().exec_time(&p, 2_000_000_000);
        let expected = SimTime::from_secs_f64(1.0) + SimTime::from_micros(10);
        assert_eq!(t, expected);
    }

    #[test]
    fn roofline_takes_max_of_compute_and_memory() {
        let mut p = KernelProfile::compute_only(1e4);
        p.bytes_per_item = 1.0; // negligible
        let base = cpu_dev().exec_time(&KernelProfile::compute_only(1e4), 1_000_000);
        assert_eq!(cpu_dev().exec_time(&p, 1_000_000), base);
    }

    #[test]
    fn zero_items_pays_launch_overhead_only() {
        let p = KernelProfile::compute_only(100.0);
        assert_eq!(gpu_dev().exec_time(&p, 0), SimTime::from_micros(10));
    }

    #[test]
    fn whole_device_is_slots_times_faster_than_one_slot() {
        let p = KernelProfile::compute_only(1e4);
        let dev = cpu_dev();
        let one = dev.exec_time(&p, 1 << 20) - dev.spec.launch_overhead;
        let whole = dev.exec_time_whole_device(&p, 1 << 20) - dev.spec.launch_overhead;
        let ratio = one.as_secs_f64() / whole.as_secs_f64();
        assert!((ratio - 8.0).abs() < 1e-6, "ratio={ratio}");
    }

    #[test]
    fn efficiency_scales_time() {
        let mut p = KernelProfile::compute_only(1e4);
        p.cpu_efficiency = Efficiency::uniform(0.5);
        let dev = cpu_dev();
        let ideal = dev
            .exec_time(&KernelProfile::compute_only(1e4), 1 << 20)
            .saturating_sub(dev.spec.launch_overhead);
        let half = dev
            .exec_time(&p, 1 << 20)
            .saturating_sub(dev.spec.launch_overhead);
        let ratio = half.as_secs_f64() / ideal.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_matches_exec_time() {
        let p = KernelProfile::memory_only(64.0);
        let dev = gpu_dev();
        let thr = dev.throughput_items_per_sec(&p);
        let items = 10_000_000u64;
        let t = dev
            .exec_time_whole_device(&p, items)
            .saturating_sub(dev.spec.launch_overhead);
        let implied = items as f64 / t.as_secs_f64();
        assert!((implied / thr - 1.0).abs() < 1e-3);
    }

    #[test]
    fn double_precision_uses_dp_peak() {
        let mut p = KernelProfile::compute_only(1e3);
        p.precision = Precision::Double;
        let dev = gpu_dev();
        let sp = dev.exec_time_whole_device(&KernelProfile::compute_only(1e3), 1 << 20);
        let dp = dev.exec_time_whole_device(&p, 1 << 20);
        assert!(dp > sp);
    }
}
