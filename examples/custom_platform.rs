//! Bring your own platform: build a custom heterogeneous machine, profile a
//! kernel on it with Glinda, and watch the optimal partitioning move as the
//! interconnect bandwidth changes — the crossover between GPU-heavy and
//! CPU-heavy splits that the paper's two derived metrics (R and G) predict.
//!
//! ```sh
//! cargo run --release --example custom_platform
//! ```

use hetero_match::glinda::profiling::estimate_rates;
use hetero_match::glinda::{
    decide, DecisionConfig, HardwareConfig, PartitionMetrics, PartitionProblem, TransferModel,
};
use hetero_match::platform::{
    DeviceKind, DeviceSpec, Efficiency, KernelProfile, LinkSpec, Platform, Precision, SimTime,
};

fn laptop_with_egpu(link_gbs: f64) -> Platform {
    Platform::builder()
        .cpu(DeviceSpec {
            name: "mobile 8-core CPU".into(),
            kind: DeviceKind::Cpu {
                cores: 8,
                threads: 16,
            },
            frequency_ghz: 3.2,
            peak_gflops_sp: 800.0,
            peak_gflops_dp: 400.0,
            mem_bandwidth_gbs: 60.0,
            mem_capacity_gb: 32.0,
            launch_overhead: SimTime::from_micros(1),
        })
        .accelerator(
            DeviceSpec {
                name: "external GPU".into(),
                kind: DeviceKind::Gpu {
                    sms: 40,
                    warp_size: 32,
                },
                frequency_ghz: 1.7,
                peak_gflops_sp: 10_000.0,
                peak_gflops_dp: 5_000.0,
                mem_bandwidth_gbs: 450.0,
                mem_capacity_gb: 12.0,
                launch_overhead: SimTime::from_micros(8),
            },
            LinkSpec::new(link_gbs, SimTime::from_micros(10)),
        )
        .sched_overhead(SimTime::from_micros(5))
        .build()
}

fn main() {
    // A moderately compute-intense kernel: 64 flops and 16 bytes per item.
    let kernel = KernelProfile {
        flops_per_item: 64.0,
        bytes_per_item: 16.0,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency::uniform(0.5),
        gpu_efficiency: Efficiency::uniform(0.5),
    };
    let n = 64u64 << 20;
    let decision_cfg = DecisionConfig {
        min_items_per_cpu_thread: 64,
        min_gpu_granules: 4,
        cpu_threads: 16,
    };

    println!("optimal split vs interconnect bandwidth (n = {n} items):");
    println!(
        "{:>10} {:>8} {:>8} {:>12} {:>10}",
        "link GB/s", "R", "G", "decision", "GPU share"
    );
    for link_gbs in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
        let platform = laptop_with_egpu(link_gbs);
        let rates = estimate_rates(&platform, &kernel, n / 64);
        let problem = PartitionProblem {
            items: n,
            cpu_rate: rates.cpu_rate,
            gpu_rate: rates.gpu_rate,
            transfer: TransferModel {
                h2d_bytes_per_item: 8.0,
                d2h_bytes_per_item: 4.0,
                fixed_bytes: 0.0,
            },
            link_bandwidth: link_gbs * 1e9,
            gpu_granularity: 32,
        };
        let metrics = PartitionMetrics::of(&problem);
        let config = decide(&problem, &decision_cfg);
        let (label, share) = match config {
            HardwareConfig::OnlyCpu => ("Only-CPU".to_string(), 0.0),
            HardwareConfig::OnlyGpu => ("Only-GPU".to_string(), 1.0),
            HardwareConfig::Hybrid(s) => ("CPU+GPU".to_string(), s.gpu_items as f64 / n as f64),
        };
        println!(
            "{:>10.1} {:>8.1} {:>8.2} {:>12} {:>9.1}%",
            link_gbs,
            metrics.relative_capability,
            metrics.compute_transfer_gap,
            label,
            100.0 * share
        );
    }
    println!();
    println!(
        "reading: a starved link (G >> 1) pushes nearly everything onto the CPU; as the\n\
         link improves, the split shifts towards the GPU's capability ratio R."
    );
}
