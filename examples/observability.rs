//! Runtime observability, end to end: a custom [`Observer`], the built-in
//! metrics registry with Prometheus/JSON export, blame attribution, and the
//! critical-path extractor — on a healthy run and under a mid-run GPU
//! dropout.
//!
//! Everything printed here is deterministic: CI runs this example twice and
//! diffs the output (including the full Prometheus and Chrome-trace
//! exports) byte for byte.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use hetero_match::matchmaker::{ExecutionConfig, ExecutionFlow, Planner, Strategy};
use hetero_match::platform::{DeviceId, FaultSchedule, MemSpaceId, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{
    simulate_faulty_observed, simulate_observed, CriticalPath, MetricsObserver, MultiObserver,
    Observer, PinnedScheduler, RunReport, TraceEvent, TraceObserver,
};

/// A user-defined observer: tallies the event stream without touching the
/// simulation. Implementations override only the hooks they care about.
#[derive(Default)]
struct EventTally {
    events: usize,
    tasks: usize,
    transfers: usize,
    transfer_bytes: u64,
    epochs: usize,
    faults: usize,
    makespan: SimTime,
}

impl Observer for EventTally {
    fn on_event(&mut self, _ev: &TraceEvent) {
        self.events += 1;
    }

    fn on_task_start(
        &mut self,
        _task: hetero_match::runtime::TaskId,
        _kernel: hetero_match::runtime::KernelId,
        _dev: DeviceId,
        _items: u64,
        _start: SimTime,
        _end: SimTime,
    ) {
        self.tasks += 1;
    }

    fn on_transfer(
        &mut self,
        _from: MemSpaceId,
        _to: MemSpaceId,
        bytes: u64,
        _start: SimTime,
        _end: SimTime,
    ) {
        self.transfers += 1;
        self.transfer_bytes += bytes;
    }

    fn on_epoch_end(&mut self, _epoch: usize, _start: SimTime, _end: SimTime) {
        self.epochs += 1;
    }

    fn on_fault(&mut self, _ev: &TraceEvent) {
        self.faults += 1;
    }

    fn on_run_end(&mut self, report: &RunReport) {
        self.makespan = report.makespan;
    }
}

fn main() {
    let platform = Platform::icpp15();
    let names: Vec<&str> = platform
        .devices
        .iter()
        .map(|d| d.spec.name.as_str())
        .collect();

    // SK-Loop with a taskwait per iteration: four epochs, so transfers,
    // flushes and per-epoch utilization gauges all show up.
    let app = hetero_match::apps::synth::single_kernel(
        "observed-loop",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 4 },
        true,
    );
    let program = Planner::new(&platform)
        .plan(&app, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;

    // --- 1. Healthy run, three sinks fed by one event stream -------------
    let mut tally = EventTally::default();
    let mut metrics = MetricsObserver::new(&platform, "SP-Single");
    let mut tracer = TraceObserver::new();
    let report = {
        let mut multi = MultiObserver::new()
            .with(&mut tally)
            .with(&mut metrics)
            .with(&mut tracer);
        simulate_observed(&program, &platform, &mut PinnedScheduler, &mut multi)
    };
    println!("healthy SP-Single run: {}", report.makespan);
    println!(
        "custom observer saw {} events: {} tasks, {} transfers ({} bytes), {} epochs, {} faults",
        tally.events,
        tally.tasks,
        tally.transfers,
        tally.transfer_bytes,
        tally.epochs,
        tally.faults
    );
    assert_eq!(tally.makespan, report.makespan);

    // --- 2. Blame attribution --------------------------------------------
    println!("\nblame (slot time per device):");
    print!("{}", report.breakdown.render(&names));
    assert!(
        report.breakdown.identity_holds(),
        "components must sum to makespan × slots on every device"
    );

    // --- 3. Critical path -------------------------------------------------
    let path = CriticalPath::from_trace(tracer.trace());
    println!("\ncritical path: {}", path.summary());
    assert_eq!(path.end(), report.makespan);

    // --- 4. A faulty run through the same machinery ----------------------
    // The GPU drops out halfway; the fault stream reaches on_fault, the
    // lost capacity lands in the `dead` blame component, and the metrics
    // pick up the fault counters.
    let at = SimTime::from_secs_f64(report.makespan.as_secs_f64() / 2.0);
    let schedule = FaultSchedule::new(2026).with_dropout(DeviceId(1), at);
    let mut faulty_metrics = MetricsObserver::new(&platform, "SP-Single/dropout");
    let faulty = simulate_faulty_observed(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &mut faulty_metrics,
    );
    println!("\nGPU dropout at {at}: makespan {}", faulty.makespan);
    println!("blame (slot time per device):");
    print!("{}", faulty.breakdown.render(&names));
    assert!(faulty.breakdown.identity_holds());

    // --- 5. Deterministic exports ----------------------------------------
    // Both runs merged into one registry; the renderings below are
    // byte-stable across replays (CI diffs a double run of this example).
    let mut registry = metrics.into_registry();
    registry.merge(faulty_metrics.registry());
    println!("\n--- prometheus export ---");
    print!("{}", registry.to_prometheus());
    println!("--- chrome trace export (healthy run) ---");
    println!("{}", tracer.trace().to_chrome_json(&platform));
}
