//! Imbalanced workloads: variable-depth binomial option pricing.
//!
//! When per-item cost varies (here: lattice depth grows with maturity),
//! splitting the book by option *count* misloads the devices; Glinda's
//! imbalanced solver (ICS'14) splits by *work* instead. This example
//! quantifies the difference and prices a few real options through the
//! partitioned program.
//!
//! ```sh
//! cargo run --release --example imbalanced_pricing
//! ```

use hetero_match::apps::binomial;
use hetero_match::matchmaker::{ExecutionConfig, Planner};
use hetero_match::platform::Platform;
use hetero_match::runtime::{run_native, BufferId, ExecOrder, HostBuffers};

fn main() {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let n = 1u64 << 16;
    let spread = 960; // deepest tree: 32+960 steps; shallowest: 32

    let weighted = planner.decide_kernel(&binomial::descriptor(n, spread), 0);
    let uniform = planner.decide_kernel(&binomial::descriptor_unweighted(n, spread), 0);

    println!(
        "option book: {n} American puts, lattice depth 32..{}",
        32 + spread
    );
    println!();
    println!(
        "count-based split : GPU gets {:>6} options ({:.1}% of the book)",
        uniform.gpu_items(n),
        100.0 * uniform.gpu_items(n) as f64 / n as f64
    );
    println!(
        "work-based split  : GPU gets {:>6} options ({:.1}% of the book)",
        weighted.gpu_items(n),
        100.0 * weighted.gpu_items(n) as f64 / n as f64
    );
    println!("(the GPU takes the shallow-tree prefix, so balancing by WORK hands it more items)");

    // Evaluate both splits against the true weighted cost model.
    let w = binomial::weights(n, spread);
    let total: f64 = w.iter().map(|&x| x as f64).sum();
    let mean = total / n as f64;
    let desc = binomial::descriptor(n, spread);
    let profile = &desc.kernels[0].profile;
    let eval = |ng: u64| {
        let gpu_work: f64 = w[..ng as usize].iter().map(|&x| x as f64).sum::<f64>() / mean;
        let cpu_work: f64 = w[ng as usize..].iter().map(|&x| x as f64).sum::<f64>() / mean;
        let tg = platform.gpu().unwrap().exec_time_whole_device_weighted(
            profile,
            ng,
            gpu_work / ng.max(1) as f64,
        );
        let tc = platform.cpu().exec_time_whole_device_weighted(
            profile,
            n - ng,
            cpu_work / (n - ng).max(1) as f64,
        );
        (tg, tc)
    };
    println!();
    for (label, ng) in [
        ("count-based", uniform.gpu_items(n)),
        ("work-based", weighted.gpu_items(n)),
    ] {
        let (tg, tc) = eval(ng);
        println!(
            "{label:<12} GPU busy {tg:>10}  CPU busy {tc:>10}  ->  makespan {}",
            tg.max(tc)
        );
    }

    // Price a small book for real through the partitioned program.
    let small_n = 64u64;
    let small_spread = 96;
    let small = binomial::descriptor(small_n, small_spread);
    let plan = planner.plan(&small, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    binomial::init(&hb, small_n);
    run_native(
        &plan.program,
        &binomial::host_kernels(small_n, small_spread),
        &hb,
        ExecOrder::Submission,
    );
    let input = hb.snapshot(BufferId(binomial::BUF_IN));
    let prices = hb.snapshot(BufferId(binomial::BUF_OUT));
    println!();
    println!("sample of the priced book:");
    println!(
        "{:>8} {:>8} {:>7} {:>6} {:>9}",
        "spot", "strike", "expiry", "steps", "put"
    );
    for i in (0..small_n as usize).step_by(13) {
        println!(
            "{:>8.2} {:>8.2} {:>7.2} {:>6} {:>9.4}",
            input[i * 5],
            input[i * 5 + 1],
            input[i * 5 + 2],
            binomial::depth(i as u64, small_n, small_spread),
            prices[i]
        );
    }
}
