//! Thermal simulation: the HotSpot scenario — an iterated stencil with a
//! per-iteration host synchronisation, the paper's CPU-favoured case.
//!
//! Shows (a) the analyzer matching an SK-Loop application to SP-Single,
//! (b) the partitioning staying CPU-heavy because per-iteration transfers
//! dominate the GPU's advantage, and (c) the real stencil computing an
//! actual temperature field through the partitioned program.
//!
//! ```sh
//! cargo run --release --example thermal_grid
//! ```

use hetero_match::apps::hotspot;
use hetero_match::matchmaker::{Analyzer, ExecutionConfig};
use hetero_match::platform::Platform;
use hetero_match::runtime::{run_native, BufferId, ExecOrder, HostBuffers};

fn main() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);

    // --- Performance study at paper scale (8192x8192, 4 iterations) -----
    let paper = hotspot::paper_descriptor();
    let analysis = analyzer.analyze(&paper);
    println!(
        "{}: class {} -> best strategy {}",
        analysis.app, analysis.class, analysis.best
    );
    println!();
    println!(
        "{:<12} {:>11} {:>11} {:>11}",
        "config", "time", "GPU share", "transfers"
    );
    for (config, report) in analyzer.compare_all(&paper) {
        println!(
            "{:<12} {:>11} {:>10.1}% {:>11}",
            config.to_string(),
            report.makespan.to_string(),
            100.0 * report.gpu_item_share(),
            report.counters.transfers.count,
        );
    }

    // --- Actual thermal step on a small grid -----------------------------
    let n = 32u64;
    let small = hotspot::descriptor(n, 1);
    let plan = analyzer.plan(&small, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    hotspot::init(&hb, n);
    run_native(
        &plan.program,
        &hotspot::host_kernels(n),
        &hb,
        ExecOrder::Submission,
    );
    let t = hb.snapshot(BufferId(hotspot::BUF_TEMP_OUT));
    let (min, max, avg) = summarize(&t);
    println!();
    println!(
        "thermal field after 1 partitioned step on a {n}x{n} grid: min {min:.1}K, avg {avg:.1}K, max {max:.1}K"
    );
    // A coarse heat map of the grid (8x8 blocks).
    println!();
    for by in 0..8 {
        let mut row = String::new();
        for bx in 0..8 {
            let mut sum = 0.0;
            let cells = (n / 8) * (n / 8);
            for y in 0..n / 8 {
                for x in 0..n / 8 {
                    let r = by * (n / 8) + y;
                    let c = bx * (n / 8) + x;
                    sum += t[(r * n + c) as usize];
                }
            }
            let v = sum / cells as f32;
            let shade = if v > avg + 2.0 {
                '#'
            } else if v > avg {
                '+'
            } else if v > avg - 2.0 {
                '.'
            } else {
                ' '
            };
            row.push(shade);
        }
        println!("    |{row}|");
    }
}

fn summarize(t: &[f32]) -> (f32, f32, f32) {
    let min = t.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = t.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let avg = t.iter().sum::<f32>() / t.len() as f32;
    (min, max, avg)
}
