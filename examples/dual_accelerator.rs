//! Multi-accelerator partitioning: CPU + K20m + Phi-class coprocessor.
//!
//! Glinda "supports various platforms, with one or more accelerators,
//! identical or non-identical", and the paper's future work targets other
//! accelerator types. This example plans a three-way static split on the
//! extended paper platform and shows it beating every smaller
//! configuration.
//!
//! ```sh
//! cargo run --release --example dual_accelerator
//! ```

use hetero_match::apps::synth;
use hetero_match::matchmaker::{ExecutionConfig, KernelSplit, Planner, Strategy};
use hetero_match::platform::Platform;
use hetero_match::runtime::{simulate, simulate_traced, PinnedScheduler, DEFAULT_GANTT_WIDTH};

fn main() {
    let platform = Platform::icpp15_with_phi();
    println!("platform:");
    for d in &platform.devices {
        println!(
            "  {:<28} {:>2} slots, {:>6.0} GFLOPS SP, {:>5.0} GB/s",
            d.spec.name,
            d.spec.kind.slots(),
            d.spec.peak_gflops_sp,
            d.spec.mem_bandwidth_gbs
        );
    }

    // A compute-heavy single-kernel workload worth spreading three ways.
    let desc = synth::single_kernel(
        "spectral-transform",
        4 << 20,
        16384.0,
        hetero_match::matchmaker::ExecutionFlow::Sequence,
        false,
    );
    let planner = Planner::new(&platform);
    let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
    let KernelSplit::Multi(split) = plan.kernel_configs[0].as_ref().unwrap() else {
        panic!("expected a multi-accelerator split");
    };
    let n = desc.kernels[0].domain;
    println!();
    println!("three-way static split of {n} items (equal-finish-time waterfilling):");
    println!(
        "  CPU   : {:>8} items ({:>5.1}%)",
        split.cpu_items,
        100.0 * split.cpu_items as f64 / n as f64
    );
    for (i, (&items, dev)) in split
        .accel_items
        .iter()
        .zip(platform.accelerators())
        .enumerate()
    {
        println!(
            "  acc{i} ({}) : {:>8} items ({:>5.1}%)",
            dev.spec.name,
            items,
            100.0 * items as f64 / n as f64
        );
    }

    println!();
    println!("{:<26} {:>12}", "configuration", "time");
    let (report, trace) = simulate_traced(&plan.program, &platform, &mut PinnedScheduler);
    println!(
        "{:<26} {:>12}",
        "CPU + K20m + Phi (3-way)",
        report.makespan.to_string()
    );
    for (label, config) in [
        ("Only-GPU (K20m)", ExecutionConfig::OnlyGpu),
        ("Only-CPU", ExecutionConfig::OnlyCpu),
    ] {
        let p = planner.plan(&desc, config);
        let r = simulate(&p.program, &platform, &mut PinnedScheduler);
        println!("{:<26} {:>12}", label, r.makespan.to_string());
    }
    // Two-way split planned as if the Phi didn't exist.
    let two_way_platform = Platform::icpp15();
    let two_way =
        Planner::new(&two_way_platform).plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
    let r = simulate(&two_way.program, &platform, &mut PinnedScheduler);
    println!(
        "{:<26} {:>12}",
        "CPU + K20m (2-way)",
        r.makespan.to_string()
    );

    println!();
    println!("three-way timeline:");
    print!("{}", trace.gantt(&platform, DEFAULT_GANTT_WIDTH));
}
