//! Execution timelines: trace a run and render per-device utilisation,
//! making the strategies' behaviour visible — SP-Single's single dense GPU
//! block vs DP-Dep's CPU-bound sprawl, and the taskwait gaps of the
//! synchronised STREAM run.
//!
//! ```sh
//! cargo run --release --example timeline
//! ```

use hetero_match::apps::{blackscholes, stream};
use hetero_match::matchmaker::{Analyzer, ExecutionConfig, Strategy};
use hetero_match::platform::Platform;
use hetero_match::runtime::{simulate_traced, PinnedScheduler, DEFAULT_GANTT_WIDTH};

fn main() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let width = DEFAULT_GANTT_WIDTH;

    println!("BlackScholes (80.5M options) — slot utilisation over time\n");
    for (label, config) in [
        (
            "SP-Single (matched)",
            ExecutionConfig::Strategy(Strategy::SpSingle),
        ),
        ("Only-GPU", ExecutionConfig::OnlyGpu),
        ("Only-CPU", ExecutionConfig::OnlyCpu),
    ] {
        let plan = analyzer.plan(&blackscholes::paper_descriptor(), config);
        let (report, trace) = simulate_traced(&plan.program, &platform, &mut PinnedScheduler);
        println!("-- {label}: {} --", report.makespan);
        print!("{}", trace.gantt(&platform, width));
        println!();
    }

    println!("STREAM-Seq with inter-kernel sync — SP-Varied (matched strategy)\n");
    let plan = analyzer.plan(
        &stream::paper_seq(true),
        ExecutionConfig::Strategy(Strategy::SpVaried),
    );
    let (report, trace) = simulate_traced(&plan.program, &platform, &mut PinnedScheduler);
    println!("-- SP-Varied: {} --", report.makespan);
    print!("{}", trace.gantt(&platform, width));
    println!();
    let flushes = trace
        .events
        .iter()
        .filter(|e| matches!(e, hetero_match::runtime::TraceEvent::Flush { .. }))
        .count();
    println!(
        "{} taskwait flush windows (one per kernel boundary + the final write-back)",
        flushes
    );
}
