//! Quickstart: describe an application, let the analyzer match it to a
//! partitioning strategy, and execute it on the simulated CPU+GPU platform.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hetero_match::matchmaker::{
    AccessPattern, Analyzer, AppDescriptor, BufferSpec, ExecutionConfig, ExecutionFlow, KernelSpec,
    SyncPolicy,
};
use hetero_match::platform::{Efficiency, KernelProfile, Platform, Precision};
use hetero_match::runtime::AccessMode;

fn main() {
    // 1. The platform: the paper's Xeon E5-2620 + Tesla K20m testbed
    //    (Table III), simulated.
    let platform = Platform::icpp15();

    // 2. Describe your application: one saxpy-like kernel over 16M items.
    let n = 16 << 20;
    let app = AppDescriptor {
        name: "saxpy".into(),
        buffers: vec![
            BufferSpec {
                name: "x".into(),
                items: n,
                item_bytes: 4,
            },
            BufferSpec {
                name: "y".into(),
                items: n,
                item_bytes: 4,
            },
        ],
        kernels: vec![KernelSpec {
            name: "saxpy".into(),
            profile: KernelProfile {
                flops_per_item: 2.0,
                bytes_per_item: 12.0,
                fixed_flops: 0.0,
                fixed_bytes: 0.0,
                precision: Precision::Single,
                cpu_efficiency: Efficiency {
                    compute: 0.5,
                    bandwidth: 0.6,
                },
                gpu_efficiency: Efficiency {
                    compute: 0.6,
                    bandwidth: 0.75,
                },
            },
            domain: n,
            accesses: vec![
                AccessPattern::part(0, AccessMode::In),
                AccessPattern::part(1, AccessMode::InOut),
            ],
            weights: None,
        }],
        flow: ExecutionFlow::Sequence,
        sync: SyncPolicy::NONE,
    };

    // 3. Analyze: classify, rank the suitable strategies, pick the best.
    let analyzer = Analyzer::new(&platform);
    let analysis = analyzer.analyze(&app);
    println!("application : {}", analysis.app);
    println!(
        "class       : {} (class {})",
        analysis.class,
        analysis.class.number()
    );
    println!(
        "ranking     : {}",
        analysis
            .ranking
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}. {s}", i + 1))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!("selected    : {}", analysis.best);

    // 4. Execute the selected strategy and the baselines.
    println!();
    println!("{:<12} {:>12} {:>14}", "config", "time", "GPU share");
    for config in [
        ExecutionConfig::OnlyCpu,
        ExecutionConfig::OnlyGpu,
        ExecutionConfig::Strategy(analysis.best),
    ] {
        let report = analyzer.simulate(&app, config);
        println!(
            "{:<12} {:>12} {:>13.1}%",
            config.to_string(),
            report.makespan.to_string(),
            100.0 * report.gpu_item_share()
        );
    }
}
