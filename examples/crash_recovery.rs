//! Crash-consistent execution: the write-ahead run journal, injected
//! coordinator death, and resume-from-journal recovery.
//!
//! PRs 1–7 made device faults survivable, but every mechanism lived in
//! the coordinating process's memory — kill the coordinator and the run
//! is gone. This example walks the durable recovery subsystem
//! (DESIGN.md §8.7):
//!
//! 1. a **journaled faulty run** — a versioned header plus one
//!    integrity-hashed record per committed epoch checkpoint; journaling
//!    is a pure observer, so the report is byte-identical to the
//!    unjournaled twin;
//! 2. **injected coordinator death** (`KillSchedule`): killed after the
//!    3rd committed record, mid-write — the surviving journal ends in a
//!    torn half-line;
//! 3. **resume**: validated deterministic redo-replay finishes the run;
//!    report and completed journal are byte-identical to the
//!    uninterrupted run, at *every* kill point;
//! 4. **typed validation**: mid-file corruption and alien versions are
//!    rejected; only the torn final line is tolerated (and discarded).
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use hetero_match::apps::stream;
use hetero_match::matchmaker::{
    Analyzer, ExecutionConfig, JournalError, JournalSink, RunJournal, RunSpec, Strategy,
};
use hetero_match::platform::{
    DeviceId, FaultSchedule, KillSchedule, Platform, RetryPolicy, SimTime,
};

fn main() {
    // STREAM with synchronisation: one committed journal record per loop
    // barrier, under a flaky-GPU window so recovery crosses retry state.
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = stream::descriptor(1 << 20, Some(6), true);
    let config = ExecutionConfig::Strategy(Strategy::SpUnified);
    let schedule = FaultSchedule::new(17).with_flaky(
        DeviceId(1),
        0.4,
        SimTime::ZERO,
        SimTime::from_millis(12),
    );
    let spec = RunSpec::faulty(schedule.clone());

    // --- 1. The journaled run is a pure observation ----------------------
    let mut sink = JournalSink::record();
    let report = analyzer
        .simulate_journaled(&desc, config, &spec, &mut sink)
        .expect("no kill schedule, so the run completes");
    let twin = analyzer.simulate_faulty(&desc, config, &schedule, RetryPolicy::default());
    let full = sink.text();
    let records = sink.records();
    println!("1. STREAM (SP-Unified) under a flaky GPU, journaled:");
    println!(
        "   makespan {}  faults {}  -> {} record(s), {} journal bytes",
        report.makespan,
        report.faults.task_faults,
        records,
        full.len()
    );
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&twin).unwrap(),
        "journaling must not perturb the run"
    );
    println!("   report byte-identical to the unjournaled twin ✓");

    // --- 2. Coordinator death, mid-write ---------------------------------
    let mut dying = JournalSink::record_with_kill(KillSchedule::after_records(3).torn());
    let err = analyzer
        .simulate_journaled(&desc, config, &spec, &mut dying)
        .expect_err("the kill schedule fires");
    let partial = dying.text();
    println!("\n2. injected death: {err}");
    println!(
        "   surviving journal: {} committed line(s) + a torn half-line ({} bytes)",
        partial.lines().count() - usize::from(!partial.ends_with('\n')),
        partial.len()
    );
    assert!(matches!(err, JournalError::Killed { records: 3, .. }));
    assert!(!partial.ends_with('\n'), "the interrupted write is torn");
    let loaded = RunJournal::load(&partial).expect("torn final line is tolerated");
    assert!(loaded.torn_discarded);
    assert_eq!(loaded.record_count(), 3);

    // --- 3. Resume: validated redo-replay --------------------------------
    let (resumed, completed) = analyzer.resume(&partial).expect("resume completes the run");
    println!("\n3. resumed: makespan {}", resumed.makespan);
    assert_eq!(
        serde_json::to_string(&resumed).unwrap(),
        serde_json::to_string(&report).unwrap(),
        "resume must reproduce the uninterrupted report"
    );
    assert_eq!(completed, full, "and regenerate the identical journal");
    println!("   report and completed journal byte-identical to the uninterrupted run ✓");

    // Not just at that one point: every record prefix resumes identically.
    for k in 0..records {
        let mut s = JournalSink::record_with_kill(KillSchedule::after_records(k));
        let _ = analyzer.simulate_journaled(&desc, config, &spec, &mut s);
        let (r, c) = analyzer.resume(&s.text()).expect("every prefix resumes");
        assert_eq!(r.makespan, report.makespan);
        assert_eq!(c, full);
    }
    // And mid-epoch: death at simulated times between barriers.
    let mut s = JournalSink::record_with_kill(KillSchedule::at_time(SimTime::from_nanos(
        report.makespan.as_nanos() / 2,
    )));
    let _ = analyzer.simulate_journaled(&desc, config, &spec, &mut s);
    let (r, c) = analyzer.resume(&s.text()).expect("mid-epoch death resumes");
    assert_eq!(r.makespan, report.makespan);
    assert_eq!(c, full);
    println!("   all {records} record prefixes and a mid-epoch death: identical ✓");

    // --- 4. Validation is typed, never silent ----------------------------
    println!("\n4. corrupt journals are rejected with typed errors:");
    let mut lines: Vec<&str> = full.lines().collect();
    let tampered_line = lines[2].replace(|c: char| c.is_ascii_digit(), "9");
    lines[2] = &tampered_line;
    let tampered = lines.join("\n") + "\n";
    let corrupt = RunJournal::load(&tampered).expect_err("mid-file tampering is caught");
    println!("   tampered record      : {corrupt}");
    assert!(matches!(corrupt, JournalError::CorruptLine { line: 3 }));

    // Tampering the version in place also breaks the header's hash, which
    // already rejects the file; re-framing the line with a fresh hash
    // isolates the version check itself.
    let header_body = full
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("{\"h\":\""))
        .and_then(|l| l.split_once("\",\"body\":"))
        .map(|(_, rest)| rest.strip_suffix('}').unwrap())
        .expect("header line is enveloped");
    let alien_body = header_body.replacen("\"version\":1", "\"version\":999", 1);
    let alien_line = format!(
        "{{\"h\":\"{:016x}\",\"body\":{alien_body}}}",
        hetero_match::platform::fnv1a_64(alien_body.as_bytes())
    );
    let alien = full.replacen(full.lines().next().unwrap(), &alien_line, 1);
    let alien_err = match RunJournal::load(&alien) {
        Err(e) => e,
        Ok(_) => panic!("an alien version must not load"),
    };
    println!("   alien header         : {alien_err}");
    assert!(matches!(
        alien_err,
        JournalError::VersionMismatch { found: 999, .. }
    ));

    let truncated: String = full.lines().take(2).collect::<Vec<_>>().join("\n");
    let short = RunJournal::load(&(truncated + "\n")).expect("a shorter valid prefix loads");
    let (r, _) = analyzer
        .resume(&short_text(&short, &full))
        .expect("and resumes");
    assert_eq!(r.makespan, report.makespan);
    println!("   shorter valid prefix : loads and resumes to the same run ✓");
}

/// The first `journal.record_count() + 1` committed lines of `full`.
fn short_text(journal: &RunJournal, full: &str) -> String {
    full.lines()
        .take(journal.record_count() + 1)
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}
