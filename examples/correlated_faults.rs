//! Correlated fault domains, link degradation, and de-escalation.
//!
//! PR 1–3 faults were independent: each window, dropout or throttle acted
//! alone. Real platforms fail in *groups* — accelerators behind one PCIe
//! switch, devices on one power rail — and real links renegotiate lane
//! widths mid-run. This example walks the correlated fault model:
//!
//! 1. a **fault domain** ("pcie-switch-0" holding the GPU and the
//!    coprocessor): a transient fault in one member conditionally opens an
//!    elevated-fault window on its siblings, from a dedicated RNG stream;
//! 2. **link degradation**: a bandwidth collapse on the host↔GPU link
//!    re-prices every transfer while the window is open — and flips the
//!    robustness ranking of the paper's transfer-dominated BlackScholes;
//! 3. a **fault trace**: the run's effective schedule (input events plus
//!    every synthesized sibling window) exported as JSON and replayed
//!    byte-identically with conditional triggering disabled;
//! 4. **de-escalation**: an escalated run (SP-Single → DP-Perf) observes
//!    calm barriers after the disturbance closes and returns to a
//!    re-solved static plan, never losing to staying dynamic.
//!
//! ```sh
//! cargo run --release --example correlated_faults
//! ```

use hetero_match::apps::{blackscholes, synth};
use hetero_match::matchmaker::{Analyzer, ExecutionConfig, ExecutionFlow, Strategy};
use hetero_match::platform::{DeviceId, FaultSchedule, FaultTrace, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{AdaptConfig, HealthConfig, TraceEvent, TraceObserver};

fn main() {
    // --- 1. Correlated fault domain: one sick device infects its rack ----
    // GPU and coprocessor share "pcie-switch-0". A base transient-fault
    // window sits on the GPU only; every GPU fault then has a 90% chance
    // (per sibling, from a dedicated RNG stream) of opening a 0.35-prob
    // fault window on the coprocessor for 5 ms.
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "switch-storm",
        1 << 20,
        16384.0,
        ExecutionFlow::Loop { iterations: 6 },
        true,
    );
    let config = ExecutionConfig::Strategy(Strategy::DpPerf);
    let policy = RetryPolicy::default();
    let gpu = DeviceId(1);
    let phi = DeviceId(2);
    let base = FaultSchedule::new(11).with_task_faults(
        Some(gpu),
        0.20,
        SimTime::ZERO,
        SimTime::from_millis(40),
    );
    let independent = base.clone().with_domain(
        "pcie-switch-0",
        vec![gpu, phi],
        0.0, // triggering disabled: the domain is inert
        0.35,
        SimTime::from_millis(5),
    );
    let correlated = base.with_domain(
        "pcie-switch-0",
        vec![gpu, phi],
        0.9,
        0.35,
        SimTime::from_millis(5),
    );
    let solo = analyzer.simulate_faulty(&desc, config, &independent, policy);
    let storm = analyzer.simulate_faulty(&desc, config, &correlated, policy);
    println!("1. fault domain \"pcie-switch-0\" = {{GPU, Phi}}, GPU fault window 0-40ms:");
    println!(
        "   independent faults   : {}  ({} task fault(s), 0 triggers)",
        solo.makespan, solo.faults.task_faults
    );
    println!(
        "   correlated faults    : {}  ({} task fault(s), {} sibling window(s) opened)",
        storm.makespan, storm.faults.task_faults, storm.faults.correlated_triggers
    );
    assert_eq!(solo.faults.correlated_triggers, 0);
    assert!(storm.faults.correlated_triggers > 0, "triggers must fire");
    assert_eq!(
        storm.synthesized_faults.len() as u64,
        storm.faults.correlated_triggers,
        "every trigger is recorded as a synthesized event"
    );
    assert!(
        storm.faults.task_faults > solo.faults.task_faults,
        "sibling windows must cost extra faults"
    );

    // --- 2. Link degradation flips the robustness winner -----------------
    // BlackScholes is the paper's transfer-dominated app (wire time ≈ 37×
    // kernel time on the GPU). Collapse the host↔GPU link to 10% of its
    // bandwidth for the whole run: every strategy that ships options to
    // the GPU now pays 10× wire time, and the degradation ranking flips
    // away from the GPU-leaning winner.
    let bs = blackscholes::descriptor(1 << 21);
    let healthy_rank = analyzer.rank_by_degradation(&bs, &FaultSchedule::new(3), policy);
    let degraded =
        FaultSchedule::new(3).with_link_degrade(gpu, 0.10, 1.0, SimTime::ZERO, SimTime::MAX);
    let degraded_rank = analyzer.rank_by_degradation(&bs, &degraded, policy);
    println!("\n2. BlackScholes, host<->GPU link at 10% bandwidth all run:");
    println!(
        "   {:<12} {:>12} {:>12} {:>8}",
        "config", "healthy", "degraded", "ratio"
    );
    for e in &degraded_rank {
        println!(
            "   {:<12} {:>12} {:>12} {:>7.2}x",
            e.config.to_string(),
            e.healthy.makespan.to_string(),
            e.faulty.makespan.to_string(),
            e.degradation()
        );
    }
    let healthy_winner = healthy_rank[0].config;
    let degraded_winner = degraded_rank[0].config;
    println!("   robustness winner    : {healthy_winner} (healthy link) -> {degraded_winner} (degraded link)");
    assert_ne!(
        healthy_winner, degraded_winner,
        "a collapsed link must change the most robust configuration"
    );

    // --- 3. Fault traces: record, serialize, replay byte-identically ------
    // The correlated run above is stochastic *within* the run (the trigger
    // draws), but its effective schedule is recordable: input events plus
    // synthesized sibling windows. Round-trip it through JSON and replay
    // with conditional triggering disabled — same makespan, same faults,
    // zero live triggers.
    let (recorded, trace) = analyzer.record_fault_trace(&desc, config, &correlated, policy);
    let json = trace.to_json();
    let parsed = FaultTrace::from_json(&json).expect("trace JSON round-trips");
    let replayed = analyzer.simulate_faulty(&desc, config, &parsed.replay_schedule(), policy);
    println!(
        "\n3. fault trace: {} byte(s) of JSON, {} synthesized event(s):",
        json.len(),
        trace.synthesized.len()
    );
    println!("   recorded run         : {}", recorded.makespan);
    println!("   replayed run         : {}", replayed.makespan);
    assert_eq!(recorded.makespan, storm.makespan, "recording is a pure tap");
    assert_eq!(replayed.makespan, recorded.makespan);
    assert_eq!(replayed.breakdown, recorded.breakdown);
    assert_eq!(replayed.faults.task_faults, recorded.faults.task_faults);
    assert_eq!(
        replayed.faults.correlated_triggers, 0,
        "replay bakes the windows in; nothing triggers live"
    );
    println!("   replay               : identical makespan, blame and fault counts ✓");

    // --- 4. De-escalation: SP-Single -> DP-Perf -> SP-Single -------------
    // A stale profile makes the planner see the GPU at 2% of its real
    // speed, so the static plan drowns the CPU tail in work the GPU could
    // swallow. Re-solving is disabled; the plan escalates to DP-Perf after
    // one missed re-solve, and the dynamic scheduler re-routes the epoch
    // onto the GPU. ProfilePerturb is a *planning* disturbance — no fault
    // window is ever open at run time — so once the escalated epochs run
    // calm, the controller re-solves the remaining epochs from observed
    // rates and reinstates the static plan (with a no-regression guard).
    let platform2 = Platform::icpp15();
    let analyzer2 = Analyzer::new(&platform2);
    let desc2 = synth::single_kernel(
        "reinstate",
        1 << 20,
        65536.0,
        ExecutionFlow::Loop { iterations: 12 },
        true,
    );
    let sp = ExecutionConfig::Strategy(Strategy::SpSingle);
    let stale =
        FaultSchedule::new(42).with_profile_perturb(DeviceId(1), 0.02, SimTime::ZERO, SimTime::MAX);
    let health = HealthConfig::disabled();
    let stay_dynamic = AdaptConfig {
        repartition: false,
        max_resolves: 1,
        reinstate_after: 0,
        ..AdaptConfig::enabled_default()
    };
    let reinstate = AdaptConfig {
        reinstate_after: 2,
        ..stay_dynamic
    };
    let escalated_only =
        analyzer2.simulate_adaptive(&desc2, sp, &stale, policy, &health, &stay_dynamic);
    let mut tobs = TraceObserver::new();
    let deescalated = analyzer2
        .simulate_adaptive_observed(&desc2, sp, &stale, policy, &health, &reinstate, &mut tobs);
    let escalated_at = deescalated.adapt.escalated_at_epoch.expect("must escalate");
    let reinstated_at = deescalated
        .adapt
        .reinstated_at_epoch
        .expect("must reinstate");
    println!("\n4. planner saw the GPU at 2% speed (SP-Single, 12 epochs):");
    println!(
        "   escalated            : epoch {escalated_at} barrier, {} task(s) to DP-Perf",
        deescalated.adapt.escalated_tasks
    );
    println!("   reinstated           : epoch {reinstated_at} barrier, after 2 calm epoch(s)");
    println!(
        "   stay-dynamic         : {}\n   de-escalated         : {}",
        escalated_only.makespan, deescalated.makespan
    );
    assert!(deescalated.adapt.escalated && deescalated.adapt.reinstated);
    assert!(reinstated_at > escalated_at);
    let events: Vec<&TraceEvent> = tobs
        .trace()
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::StrategyEscalated { .. } | TraceEvent::StrategyReinstated { .. }
            )
        })
        .collect();
    for e in &events {
        match e {
            TraceEvent::StrategyEscalated { epoch, at } => {
                println!("   trace                : ESCALATE  epoch {epoch} at {at}");
            }
            TraceEvent::StrategyReinstated { epoch, at } => {
                println!("   trace                : REINSTATE epoch {epoch} at {at}");
            }
            _ => unreachable!(),
        }
    }
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::StrategyReinstated { .. })),
        "reinstatement must be visible in the trace"
    );
    assert!(
        deescalated.makespan <= escalated_only.makespan,
        "the no-regression guard: de-escalating never loses to staying escalated"
    );
    assert!(deescalated.breakdown.identity_holds());
    println!("   guard                : de-escalated run is no worse than staying dynamic ✓");
}
