//! Adaptive repartitioning: what happens when the *model* is wrong?
//!
//! PRs 1–2 made the runtime survive faults the hardware announces (or at
//! least exhibits). This example walks the failure mode where nothing is
//! broken at all: the planner profiled the platform badly, and a static
//! strategy executes a mispredicted split at full hardware health. The
//! adaptive controller closes the loop at taskwait barriers:
//!
//! 1. a **mispredicted profile** (the planner saw the GPU at half speed)
//!    detected from per-epoch busy-time skew and corrected by re-solving
//!    the split from *observed* throughputs;
//! 2. **escalation**: when re-solving is exhausted without reaching the
//!    balance target, the static plan falls back to its dynamic sibling
//!    (SP-Single → DP-Perf, the Table I escalation) seeded with the run's
//!    own observations;
//! 3. **mid-run drift** (a GPU throttle while the plan was solved for full
//!    speed) — the same loop re-balances against rates the planner could
//!    never have measured up front.
//!
//! ```sh
//! cargo run --release --example adaptive_rebalance
//! ```

use hetero_match::apps::synth;
use hetero_match::matchmaker::{Analyzer, AppDescriptor, ExecutionConfig, ExecutionFlow, Strategy};
use hetero_match::platform::{DeviceId, FaultSchedule, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{AdaptConfig, HealthConfig};

/// SK-Loop: 8 iterations of a compute-heavy kernel with a taskwait between
/// iterations — 8 barriers for the controller to observe and correct at.
fn app() -> AppDescriptor {
    synth::single_kernel(
        "rebalance",
        1 << 20,
        65536.0,
        ExecutionFlow::Loop { iterations: 8 },
        true,
    )
}

fn main() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();

    // --- 1. Mispredicted profile: detect + re-solve ----------------------
    // The planner profiled the GPU at half its true throughput; the
    // SP-Single split under-offloads and every epoch leaves the GPU idle
    // while the CPU grinds. Execution itself is untouched.
    let halved =
        FaultSchedule::new(42).with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
    let oracle = analyzer.simulate_resilient(&desc, config, &halved, policy, &health);
    let mispredicted = analyzer.simulate_adaptive(
        &desc,
        config,
        &halved,
        policy,
        &health,
        &AdaptConfig::disabled(),
    );
    let adaptive = analyzer.simulate_adaptive(
        &desc,
        config,
        &halved,
        policy,
        &health,
        &AdaptConfig::enabled_default(),
    );
    let gap = mispredicted.makespan.as_secs_f64() - oracle.makespan.as_secs_f64();
    let recovered = mispredicted.makespan.as_secs_f64() - adaptive.makespan.as_secs_f64();
    println!("1. planner saw the GPU at half speed (SP-Single, 8 epochs):");
    println!("   oracle (true profile): {}", oracle.makespan);
    println!("   mispredicted (blind) : {}", mispredicted.makespan);
    println!(
        "   adaptive             : {}  ({} imbalanced barrier(s), {} re-solve(s), {} items moved)",
        adaptive.makespan,
        adaptive.adapt.imbalances_detected,
        adaptive.adapt.repartitions,
        adaptive.adapt.items_moved
    );
    println!(
        "   skew                 : {:.3} max -> {:.3} final, {:.0}% of the gap recovered",
        adaptive.adapt.max_skew,
        adaptive.adapt.final_skew,
        100.0 * recovered / gap
    );
    assert!(adaptive.makespan < mispredicted.makespan);
    assert!(!adaptive.adapt.escalated, "re-solving restored balance");

    // --- 2. Escalation: SP-Single -> DP-Perf -----------------------------
    // Same misprediction, but repartitioning is disabled: every trigger
    // burns a re-solve that cannot help, and after `max_resolves` misses
    // the static plan hands its remaining pinned tasks to an internal
    // DP-Perf scheduler seeded with the observed rates.
    let stubborn = AdaptConfig {
        repartition: false,
        max_resolves: 1,
        ..AdaptConfig::enabled_default()
    };
    let escalated = analyzer.simulate_adaptive(&desc, config, &halved, policy, &health, &stubborn);
    println!("\n2. re-solving disabled, escalation after 1 miss:");
    println!(
        "   escalated            : at epoch {} barrier, {} task(s) handed to DP-Perf",
        escalated.adapt.escalated_at_epoch.expect("escalated"),
        escalated.adapt.escalated_tasks
    );
    println!(
        "   makespan             : {} (vs {} riding the bad plan)",
        escalated.makespan, mispredicted.makespan
    );
    assert!(escalated.adapt.escalated);
    assert!(escalated.makespan < mispredicted.makespan);

    // --- 3. Mid-run drift: the profile *was* right -----------------------
    // The plan was solved from a faithful profile, but the CPU throttles
    // 2.5x from mid-run onward (a DVFS/thermal event, as a ThrottleRamp).
    // The same barrier loop re-solves from the observed — now throttled —
    // rates and shifts the CPU's chunks onto the GPU. (The reverse drift,
    // a GPU throttle, is not repairable here: SP-Single emits the GPU
    // share as one chunk, and region splits are baked into the plan.)
    let healthy =
        analyzer.simulate_resilient(&desc, config, &FaultSchedule::new(7), policy, &health);
    let mid = SimTime::from_secs_f64(healthy.makespan.as_secs_f64() / 2.0);
    let drift = FaultSchedule::new(7).with_throttle(DeviceId(0), mid, SimTime::MAX, 2.5, 2.5);
    let blind = analyzer.simulate_adaptive(
        &desc,
        config,
        &drift,
        policy,
        &health,
        &AdaptConfig::disabled(),
    );
    let rebalanced = analyzer.simulate_adaptive(
        &desc,
        config,
        &drift,
        policy,
        &health,
        &AdaptConfig::enabled_default(),
    );
    println!("\n3. CPU throttles 2.5x at {mid} (plan was faithful):");
    println!("   no throttle          : {}", healthy.makespan);
    println!("   static plan (blind)  : {}", blind.makespan);
    println!(
        "   adaptive             : {}  ({} re-solve(s), {} items moved, escalated: {})",
        rebalanced.makespan,
        rebalanced.adapt.repartitions,
        rebalanced.adapt.items_moved,
        rebalanced.adapt.escalated
    );
    assert!(
        rebalanced.makespan < blind.makespan,
        "rebalancing must beat riding the stale plan"
    );

    // --- 4. Seeded adaptation replays byte-for-byte ----------------------
    let replay = analyzer.simulate_adaptive(
        &desc,
        config,
        &halved,
        policy,
        &health,
        &AdaptConfig::enabled_default(),
    );
    assert_eq!(replay.makespan, adaptive.makespan);
    assert_eq!(replay.adapt, adaptive.adapt);
    assert_eq!(replay.breakdown, adaptive.breakdown);
    println!("\nreplay with the same seed: identical makespan, adapt report and blame breakdown ✓");

    // --- 5. Blame: adaptation overhead is visible, not hidden ------------
    let names: Vec<&str> = platform
        .devices
        .iter()
        .map(|d| d.spec.name.as_str())
        .collect();
    println!("\nadaptive-run blame (planner saw the GPU at half speed):");
    print!("{}", adaptive.breakdown.render(&names));
    assert!(adaptive.breakdown.identity_holds());
}
