//! Fault tolerance: what happens to each partitioning strategy when the
//! platform fails mid-run?
//!
//! The scenario: a compute-heavy single-kernel application, planned for
//! the paper's healthy CPU+GPU testbed — and then the GPU drops out at 50%
//! of the healthy makespan. The resilient executor re-binds the lost work
//! to the CPU (the paper's Only-CPU baseline as failover target), restores
//! lost data from the last taskwait checkpoint, and completes the run.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use hetero_match::matchmaker::{Analyzer, ExecutionConfig, Planner, Strategy};
use hetero_match::platform::{DeviceId, FaultSchedule, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{
    simulate, simulate_dp_perf_warmed_faulty, simulate_faulty, PinnedScheduler,
};

fn main() {
    let platform = Platform::icpp15();
    let n = 1u64 << 20;
    let app = hetero_match::apps::synth::single_kernel(
        "resilient-compute",
        n,
        65536.0,
        hetero_match::matchmaker::ExecutionFlow::Sequence,
        false,
    );
    let planner = Planner::new(&platform);
    let policy = RetryPolicy::default();

    // --- 1. SP-Single survives a GPU dropout at 50% progress -------------
    let static_prog = planner
        .plan(&app, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let healthy = simulate(&static_prog, &platform, &mut PinnedScheduler);
    let at = SimTime::from_secs_f64(healthy.makespan.as_secs_f64() / 2.0);
    let schedule = FaultSchedule::new(2026).with_dropout(DeviceId(1), at);

    let failed_over = simulate_faulty(
        &static_prog,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        policy,
    );
    let done: u64 = failed_over.counters.devices.iter().map(|c| c.items).sum();
    println!("SP-Single, GPU dropout at {at}:");
    println!("  healthy makespan   : {}", healthy.makespan);
    println!("  failed-over        : {}", failed_over.makespan);
    println!(
        "  items              : {done}/{n} (CPU {}, GPU {})",
        failed_over.counters.devices[0].items, failed_over.counters.devices[1].items
    );
    println!(
        "  faults             : {} dropout(s), {} failover(s), {} re-execution(s), {} lost",
        failed_over.faults.device_dropouts,
        failed_over.faults.failovers,
        failed_over.faults.reexecutions,
        failed_over.faults.time_lost
    );
    assert_eq!(done, n, "every item still processed exactly once");

    // --- 2. DP-Perf reroutes and beats the failed-over static plan -------
    let dynamic_prog = planner
        .plan(&app, ExecutionConfig::Strategy(Strategy::DpPerf))
        .program;
    let adaptive = simulate_dp_perf_warmed_faulty(&dynamic_prog, &platform, &schedule, policy);
    println!("\nDP-Perf under the same dropout:");
    println!("  makespan           : {}", adaptive.makespan);
    println!(
        "  vs failed-over plan: {:.2}x faster",
        failed_over.makespan.as_secs_f64() / adaptive.makespan.as_secs_f64()
    );
    assert!(
        adaptive.makespan < failed_over.makespan,
        "dynamic rerouting must beat a stale static plan's failover storm"
    );

    // --- 3. Seeded faults replay byte-for-byte ---------------------------
    let replay = simulate_faulty(
        &static_prog,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        policy,
    );
    assert_eq!(replay.makespan, failed_over.makespan);
    assert_eq!(replay.faults, failed_over.faults);
    println!("\nreplay with the same seed: identical makespan and fault counters ✓");

    // --- 4. The matchmaker's robustness ranking --------------------------
    let analyzer = Analyzer::new(&platform);
    println!("\nrobustness ranking under this schedule (degradation = faulty/healthy):");
    for e in analyzer.rank_by_degradation(&app, &schedule, policy) {
        println!(
            "  {:<16} {:>7.2}x   (healthy {}, faulty {}, resilience overhead {})",
            e.config.to_string(),
            e.degradation(),
            e.healthy.makespan,
            e.faulty.makespan,
            e.resilience_overhead()
        );
    }

    // --- 5. Blame attribution: where did the failed-over time go? --------
    // The breakdown decomposes `makespan × slots` per device: useful
    // compute, transfers, fault losses, capacity dead after the dropout,
    // and idle — and the books must balance exactly.
    let names: Vec<&str> = platform
        .devices
        .iter()
        .map(|d| d.spec.name.as_str())
        .collect();
    println!("\nSP-Single failed-over blame (slot time per device):");
    print!("{}", failed_over.breakdown.render(&names));
    assert!(
        failed_over.breakdown.identity_holds(),
        "blame components must sum to makespan × slots on every device"
    );
}
