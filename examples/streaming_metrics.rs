//! Live observability end to end: stream delta-encoded per-epoch metrics
//! from a faulty adaptive run as it executes, fold the stream back into
//! the end-of-run registry (the `stream-fold-equivalence` invariant), and
//! diff the faulty run against a fault-free baseline with the run-diff
//! regression engine.
//!
//! Everything printed is deterministic: CI runs this example twice and
//! diffs the output byte for byte.
//!
//! ```sh
//! cargo run --release --example streaming_metrics
//! ```

use hetero_match::apps::synth;
use hetero_match::matchmaker::{Analyzer, ExecutionConfig, ExecutionFlow, RunSpec, Strategy};
use hetero_match::platform::{DeviceId, FaultSchedule, Platform, SimTime};
use hetero_match::runtime::{fold_stream, AdaptConfig, EpochSnapshot, HealthConfig, RunDiff};

fn main() {
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "streamed",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 6 },
        true,
    );
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);

    // A mid-run disturbance: a flaky accelerator early on, then a
    // permanent dropout — the adaptive run re-plans around both.
    let schedule = || {
        FaultSchedule::new(29)
            .with_flaky(DeviceId(2), 0.2, SimTime::ZERO, SimTime::from_millis(1))
            .with_dropout(DeviceId(1), SimTime::from_micros(400))
    };

    println!("== live metrics stream: faulty adaptive run ==");
    println!("one delta-encoded EpochSnapshot line per committed taskwait barrier;");
    println!("each line prints the moment its barrier commits, mid-run:");
    println!();
    let spec = RunSpec::adaptive(
        schedule(),
        HealthConfig::monitored(),
        AdaptConfig::enabled_default(),
    );
    let (faulty_report, faulty_obs) = analyzer
        .simulate_streaming(&desc, config, &spec, |line| {
            let snap: EpochSnapshot = serde_json::from_str(line).expect("snapshot line parses");
            let epoch = match snap.epoch {
                Some(e) => format!("epoch {e}"),
                None => String::from("run end"),
            };
            println!(
                "  [seq {}] {:<8} @ {:>10.3} ms  tasks={:<3} faults={:<2} changed series={:<2} dead={:?}",
                snap.seq,
                epoch,
                snap.at.as_secs_f64() * 1e3,
                snap.tasks_total,
                snap.faults_total,
                snap.changed.len(),
                snap.open.dead,
            );
        })
        .expect("faulty adaptive run");
    println!();
    println!(
        "faulty makespan: {:.3} ms  (dropouts={}, task faults={}, replans={})",
        faulty_report.makespan.as_secs_f64() * 1e3,
        faulty_report.faults.device_dropouts,
        faulty_report.faults.task_faults,
        faulty_report.adapt.replans,
    );

    // The hard invariant behind the stream (fuzz oracle 9): folding every
    // delta line reproduces the end-of-run registry byte for byte.
    let folded = fold_stream(&faulty_obs.stream()).expect("stream folds");
    let identical = folded.to_json() == faulty_obs.registry().to_json();
    println!(
        "stream-fold-equivalence: folded {} lines -> registry byte-identical: {identical}",
        faulty_obs.lines().len(),
    );
    assert!(identical, "fold must reproduce the registry");

    // Run-diff regression engine: the same app fault-free is the baseline;
    // the faulty run is the candidate. Counters and seconds-series that
    // moved show up as typed verdicts, new fault series as `new`.
    println!();
    println!("== run diff: fault-free baseline vs faulty adaptive run ==");
    let (_, baseline_obs) = analyzer
        .simulate_streamed(&desc, config, &RunSpec::plain())
        .expect("fault-free baseline run");
    let diff = RunDiff::between(
        &baseline_obs.registry().to_json(),
        &faulty_obs.registry().to_json(),
        5.0,
    )
    .expect("diff parses both registries");
    print!("{}", diff.render());
    println!();
    println!(
        "regressions detected: {} (exit policy: `matchmake diff` returns non-zero)",
        diff.has_regressions(),
    );
}
