//! Gray failures: what happens when a device degrades without ever
//! *failing*?
//!
//! PR 1's fault machinery handles fail-stop faults — attempts abort,
//! devices drop out, and the runtime notices immediately. This example
//! walks the three gray-failure modes that no retry loop ever sees, and
//! the health subsystem that closes the gap:
//!
//! 1. a **straggler** (mid-run 4x GPU throttle) hedged around by the
//!    watchdog — first finisher wins;
//! 2. **silent data corruption** caught by duplicate-check verification at
//!    the taskwait barrier and rolled back to the epoch checkpoint;
//! 3. a **flaky** device quarantined by the circuit breaker, probed after
//!    a cool-down, and readmitted once it behaves.
//!
//! ```sh
//! cargo run --release --example gray_failures
//! ```

use hetero_match::platform::{
    DeviceId, Efficiency, FaultSchedule, KernelProfile, Platform, Precision, RetryPolicy, SimTime,
};
use hetero_match::runtime::{
    simulate, simulate_faulty, simulate_resilient, Access, BreakerConfig, HealthConfig,
    PinnedScheduler, Program, Region, VerificationPolicy, WatchdogConfig,
};

/// A compute-bound kernel whose effective rate is identical on
/// `Platform::test_small`'s GPU and on one of its CPU slots (25 Gflop/s
/// each), so a hedge costs exactly what the unthrottled primary would.
fn balanced_profile(flops_per_item: f64) -> KernelProfile {
    KernelProfile {
        flops_per_item,
        bytes_per_item: 0.0,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency {
            compute: 1.0,
            bandwidth: 1.0,
        },
        gpu_efficiency: Efficiency {
            compute: 0.0625,
            bandwidth: 1.0,
        },
    }
}

fn gpu_chain(per_task: u64, tasks: u64, flops_per_item: f64) -> Program {
    let mut b = Program::builder();
    let x = b.buffer("x", tasks * per_task, 4);
    let k = b.kernel("k", balanced_profile(flops_per_item));
    for i in 0..tasks {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(Region::new(
                x,
                i * per_task,
                (i + 1) * per_task,
            ))],
            DeviceId(1),
        );
    }
    b.build()
}

fn main() {
    let platform = Platform::test_small();
    let policy = RetryPolicy::default();

    // --- 1. Straggler: watchdog + hedging --------------------------------
    // Four serialized GPU tasks; the GPU throttles 4x from mid-run onward.
    // Every attempt still "succeeds", so the fail-stop executor just
    // waits. The watchdog notices each attempt running 50% past its
    // prediction and hedges it onto an idle CPU slot.
    let program = gpu_chain(1 << 16, 4, 400_000.0);
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);
    let mid = SimTime::from_secs_f64(healthy.makespan.as_secs_f64() / 2.0);
    let straggler =
        FaultSchedule::new(2026).with_throttle(DeviceId(1), mid, SimTime::MAX, 4.0, 4.0);

    let fail_stop = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &straggler,
        policy,
    );
    let hedging = HealthConfig {
        watchdog: Some(WatchdogConfig {
            slack: 1.5,
            hedging: true,
        }),
        ..HealthConfig::disabled()
    };
    let hedged = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &straggler,
        policy,
        &hedging,
    );
    println!("1. straggler: GPU throttles 4x at {mid}");
    println!("   healthy makespan     : {}", healthy.makespan);
    println!("   fail-stop (blind)    : {}", fail_stop.makespan);
    println!(
        "   hedged               : {}  ({} hedge(s), {} won, {} reclaimed)",
        hedged.makespan,
        hedged.health.hedges_issued,
        hedged.health.hedges_won,
        hedged.health.time_hedged
    );
    assert!(
        hedged.makespan < fail_stop.makespan,
        "hedging around the straggler must beat waiting it out"
    );

    // --- 2. Silent data corruption: DupCheck + rollback ------------------
    // Two epochs of four tasks each; every successful GPU attempt corrupts
    // its output. Without verification the run "succeeds" with wrong
    // results; DupCheck re-executes each task on a peer at the barrier and
    // rolls corrupt epochs back to their checkpoint.
    let mut b = Program::builder();
    let x = b.buffer("x", 8000, 4);
    let k = b.kernel("k", balanced_profile(2500.0));
    for epoch in 0..2u64 {
        for i in 0..4u64 {
            let j = epoch * 4 + i;
            b.submit_pinned(
                k,
                1000,
                vec![Access::read_write(Region::new(x, j * 1000, (j + 1) * 1000))],
                DeviceId(if i < 2 { 1 } else { 0 }),
            );
        }
        if epoch == 0 {
            b.taskwait();
        }
    }
    let two_epochs = b.build();
    let sdc =
        FaultSchedule::new(7).with_silent_corruption(DeviceId(1), 1.0, SimTime::ZERO, SimTime::MAX);

    let silent = simulate_faulty(&two_epochs, &platform, &mut PinnedScheduler, &sdc, policy);
    let checking = HealthConfig {
        verification: VerificationPolicy::DupCheck { sample_rate: 1.0 },
        ..HealthConfig::disabled()
    };
    let checked = simulate_resilient(
        &two_epochs,
        &platform,
        &mut PinnedScheduler,
        &sdc,
        policy,
        &checking,
    );
    println!("\n2. silent corruption on every GPU task:");
    println!(
        "   unverified           : {} corrupt result(s) committed, 0 detected",
        silent.health.corrupt_committed
    );
    println!(
        "   DupCheck             : {} detected, {} rollback(s), {} committed corrupt",
        checked.health.corruptions_detected,
        checked.health.epoch_rollbacks,
        checked.health.corrupt_committed
    );
    println!(
        "   verification cost    : {} task(s) re-checked, {} of simulated time",
        checked.health.tasks_verified, checked.health.time_verifying
    );
    assert!(silent.health.corrupt_committed >= 1);
    assert_eq!(checked.health.corrupt_committed, 0, "final commit is clean");

    // --- 3. Flaky device: circuit breaker --------------------------------
    // The GPU fails every attempt for its first millisecond, then
    // recovers. Three consecutive retry exhaustions trip the breaker; the
    // quarantined queue drains to the CPU; after the cool-down one probe
    // task is let through and, now clean, re-closes the circuit.
    let mut b = Program::builder();
    let x = b.buffer("x", 28_000, 4);
    let k = b.kernel("k", balanced_profile(2500.0));
    for i in 0..8u64 {
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, i * 1000, (i + 1) * 1000))],
            DeviceId(1),
        );
    }
    for i in 8..24u64 {
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, i * 1000, (i + 1) * 1000))],
            DeviceId(0),
        );
    }
    b.taskwait();
    for i in 24..28u64 {
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, i * 1000, (i + 1) * 1000))],
            DeviceId(1),
        );
    }
    let flaky_prog = b.build();
    let flaky =
        FaultSchedule::new(61).with_flaky(DeviceId(1), 1.0, SimTime::ZERO, SimTime::from_millis(1));
    let breaker = HealthConfig {
        breaker: Some(BreakerConfig {
            trip_after: 3,
            cooldown: SimTime::from_micros(150),
        }),
        ..HealthConfig::disabled()
    };
    let guarded = simulate_resilient(
        &flaky_prog,
        &platform,
        &mut PinnedScheduler,
        &flaky,
        policy,
        &breaker,
    );
    println!("\n3. flaky GPU (every attempt fails for 1ms):");
    println!(
        "   breaker              : {} open(s), {} probe(s), {} close(s)",
        guarded.health.circuit_opens, guarded.health.probes, guarded.health.circuit_closes
    );
    for q in &guarded.health.quarantine {
        match q.until {
            Some(until) => println!(
                "   quarantine           : device {} [{} .. {}]",
                q.dev.0, q.from, until
            ),
            None => println!(
                "   quarantine           : device {} [{} .. run end]",
                q.dev.0, q.from
            ),
        }
    }
    println!(
        "   final health scores  : CPU {:.3}, GPU {:.3}",
        guarded.health.scores[0], guarded.health.scores[1]
    );
    println!(
        "   GPU readmitted       : {} item(s) after the circuit re-closed",
        guarded.counters.devices[1].items
    );
    assert_eq!(guarded.health.circuit_closes, 1);

    // --- 4. Seeded gray failures replay byte-for-byte --------------------
    let replay = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &straggler,
        policy,
        &hedging,
    );
    assert_eq!(replay.makespan, hedged.makespan);
    assert_eq!(replay.health, hedged.health);
    println!("\nreplay with the same seed: identical makespan and health report ✓");
}
