//! An MK-DAG application: a fork-join analytics pipeline whose middle
//! stages are mutually independent — exactly the inter-kernel parallelism
//! dynamic scheduling exploits and static partitioning cannot (the paper's
//! Class V, for which Table I recommends only DP-Perf and DP-Dep).
//!
//! ```sh
//! cargo run --release --example pipeline_dag
//! ```

use hetero_match::apps::synth;
use hetero_match::matchmaker::{Analyzer, AppClass, ExecutionConfig, Strategy};
use hetero_match::platform::Platform;

fn main() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);

    // source -> {mid0, mid1, mid2, mid3} -> sink, over 4M items.
    let app = synth::dag("analytics-pipeline", 4 << 20, 6, 2048.0);
    let analysis = analyzer.analyze(&app);
    assert_eq!(analysis.class, AppClass::MkDag);
    println!(
        "{}: {} kernels forming a DAG -> class {} (class {})",
        analysis.app,
        app.kernels.len(),
        analysis.class,
        analysis.class.number()
    );
    println!(
        "suitable strategies (Table I): {}",
        analysis
            .ranking
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!();
    println!(
        "{:<10} {:>11} {:>11} {:>13}",
        "config", "time", "GPU share", "sched calls"
    );
    for config in [
        ExecutionConfig::OnlyCpu,
        ExecutionConfig::OnlyGpu,
        ExecutionConfig::Strategy(Strategy::DpPerf),
        ExecutionConfig::Strategy(Strategy::DpDep),
    ] {
        let report = analyzer.simulate(&app, config);
        println!(
            "{:<10} {:>11} {:>10.1}% {:>13}",
            config.to_string(),
            report.makespan.to_string(),
            100.0 * report.gpu_item_share(),
            report.counters.sched_decisions,
        );
    }

    // The analyzer's pick is DP-Perf; show it beats DP-Dep here.
    let (analysis, best) = analyzer.run_best(&app);
    let dep = analyzer.simulate(&app, ExecutionConfig::Strategy(Strategy::DpDep));
    println!();
    println!(
        "analyzer selected {} -> {} (DP-Dep: {})",
        analysis.best, best.makespan, dep.makespan
    );
}
