//! The analyzer as a long-lived planning service (DESIGN.md §8.9):
//! typed request/response codec, admission control, deadline budgets,
//! plan memoization with graceful degradation, and a seeded chaos load.
//!
//! Everything printed here is deterministic — virtual time, pinned RNG
//! streams, ordered maps: CI runs this example twice and diffs the output
//! byte for byte.
//!
//! ```sh
//! cargo run --release --example planning_service
//! ```

use hetero_match::matchmaker::{
    check_shed_or_serve, decode_request, encode_request, encode_response, run_load, template_app,
    Arrival, ChaosSchedule, LoadConfig, PlanRequest, PlanService, ServiceConfig,
};
use hetero_match::platform::{Platform, SimTime};

fn main() {
    let platform = Platform::icpp15();

    // -- 1. The wire codec: a minimal HTTP/1.1 + JSON framing ------------
    let req = PlanRequest {
        id: 1,
        client: "example".into(),
        app: template_app(0),
        config: None,
        what_if: true,
        deadline_us: None,
    };
    let frame = encode_request(&req);
    let head = frame
        .split(|b| *b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).trim_end().to_string())
        .unwrap_or_default();
    println!("request frame: {} bytes, `{head}`", frame.len());
    let decoded = decode_request(&frame, 64 * 1024).expect("round trip");
    assert_eq!(decoded, req);

    // Malformed input never panics — it comes back as a typed error.
    for (what, bytes) in [
        (
            "truncated body",
            &b"POST /plan HTTP/1.1\r\ncontent-length: 10\r\n\r\n{}"[..],
        ),
        (
            "bad json",
            &b"POST /plan HTTP/1.1\r\ncontent-length: 4\r\n\r\n{{{{"[..],
        ),
        ("no terminator", &b"POST /plan HTTP/1.1"[..]),
    ] {
        let err = decode_request(bytes, 64 * 1024).unwrap_err();
        println!("  {what:<15} -> {} ({err})", err.verdict());
    }

    // -- 2. Serve, memoize, degrade --------------------------------------
    // A volley of identical requests against a deliberately tiny pool:
    // two pay the solve, the queue absorbs four, the overflow is shed
    // with a typed rejection (the cache is not warm yet, so there is
    // nothing to degrade to). A second volley arriving after the solves
    // complete — cache warm, pool still draining — is answered
    // `degraded` from the cache instead of queueing. A straggler on the
    // idle pool is a plain cache hit.
    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        degrade_depth: 2,
        rate_limit: None,
        default_deadline_us: None,
        ..ServiceConfig::default()
    };
    let mut service = PlanService::new(&platform, cfg, ChaosSchedule::calm(0));
    let mut arrivals: Vec<Arrival> = (0..8)
        .map(|i| Arrival {
            at: SimTime::from_micros(1),
            client: format!("c{}", i % 2),
            bytes: frame.clone(),
        })
        .collect();
    for i in 0..4 {
        arrivals.push(Arrival {
            at: SimTime::from_micros(205),
            client: format!("c{}", i % 2),
            bytes: frame.clone(),
        });
    }
    arrivals.push(Arrival {
        at: SimTime::from_micros(400),
        client: "c0".into(),
        bytes: frame.clone(),
    });
    let outcomes = service.run(&arrivals);
    check_shed_or_serve(arrivals.len(), &outcomes).expect("shed-or-serve");
    println!(
        "\nsaturating volley of {} identical requests:",
        arrivals.len()
    );
    for o in &outcomes {
        match &o.result {
            Ok(r) => println!(
                "  #{} served at {} (cached={} degraded={})",
                o.seq, o.done, r.cached, r.degraded
            ),
            Err(e) => println!("  #{} shed: {} ({e})", o.seq, e.verdict()),
        }
    }

    // -- 3. A seeded chaos load ------------------------------------------
    // 10x burst arrivals with slow-loris, malformed-JSON and oversized
    // windows plus a stalled worker — byte-replayable from the seed alone.
    let load = LoadConfig {
        requests: 5_000,
        seed: 42,
        ..LoadConfig::default()
    };
    let span = SimTime::from_micros(load.requests * load.mean_gap_us);
    let chaos = ChaosSchedule::burst(42, 10, span);
    let out = run_load(&platform, &ServiceConfig::default(), &load, &chaos);
    check_shed_or_serve(load.requests as usize, &out.outcomes).expect("shed-or-serve");
    println!("\n{}", out.summary);

    // A wire sample: one served response and one typed shed, re-encoded.
    let served = out.outcomes.iter().find(|o| o.result.is_ok()).unwrap();
    let shed = out.outcomes.iter().find(|o| o.result.is_err()).unwrap();
    println!(
        "sample served response:\n{}",
        encode_response(&served.result)
    );
    println!("\nsample shed response:\n{}", encode_response(&shed.result));

    // The hm_service_* registry the whole exchange exported.
    println!("\nservice metrics (Prometheus):");
    print!("{}", out.registry.to_prometheus());
}
