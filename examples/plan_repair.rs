//! Degraded-mode plan repair: survivor re-planning on device death and
//! quarantine.
//!
//! PR 2's fault layer makes permanent device death *survivable*: queued
//! chunks fail over one by one to a fallback device — the host, in the
//! worst case — while any other accelerator idles. This example walks the
//! repair subsystem that makes survival *efficient*:
//!
//! 1. a **permanent GPU death** mid-BlackScholes on the dual-accelerator
//!    platform — naive failover strands the dead GPU's share on the host;
//!    plan repair re-solves the split over the survivors and rebinds the
//!    queued chunks onto the coprocessor;
//! 2. a **breaker reclose**: a flaky GPU is quarantined, probed after the
//!    cool-down, and — once clean — *readmitted* by the symmetric healing
//!    re-plan, which migrates the chunks stranded on the host back;
//! 3. the **planner-level API**: `Planner::replan_surviving` keeping the
//!    strategy over a shrunken accelerator set, downgrading to Only-CPU
//!    when only the host survives, and the typed errors for survivor sets
//!    it cannot plan for;
//! 4. byte-for-byte **determinism** of the repaired runs, and the `replan`
//!    blame component accounting for the repair's cost.
//!
//! ```sh
//! cargo run --release --example plan_repair
//! ```

use hetero_match::apps::blackscholes;
use hetero_match::matchmaker::{
    Analyzer, ExecutionConfig, Planner, ReplanConfig, ReplanError, Strategy,
};
use hetero_match::platform::{
    DeviceId, Efficiency, FaultSchedule, KernelProfile, Platform, Precision, RetryPolicy, SimTime,
};
use hetero_match::runtime::{
    simulate_repairing_traced, simulate_resilient, Access, AdaptConfig, BreakerConfig,
    HealthConfig, PinnedScheduler, Program, Region, TraceEvent, TraceObserver,
};

/// A compute-only kernel running at full efficiency everywhere: 400 Gflop/s
/// on `Platform::test_small`'s GPU vs 25 Gflop/s per CPU thread — losing
/// the GPU is expensive, and getting it back is worth a healing re-plan.
fn gpu_favored(flops_per_item: f64) -> KernelProfile {
    KernelProfile {
        flops_per_item,
        bytes_per_item: 0.0,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency {
            compute: 1.0,
            bandwidth: 1.0,
        },
        gpu_efficiency: Efficiency {
            compute: 1.0,
            bandwidth: 1.0,
        },
    }
}

fn main() {
    let policy = RetryPolicy::default();

    // --- 1. Permanent GPU death: survivor re-plan ------------------------
    // BlackScholes under SP-Single on the CPU + K20m + Phi-class platform.
    // The K20m dies for good at 30% of the healthy makespan. Without
    // repair, its not-yet-started chunks fail over chunk-by-chunk to the
    // host while the coprocessor finishes early and idles. Plan repair
    // re-solves the remaining epochs over {host, coprocessor} at observed
    // rates and rebinds the queue.
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = blackscholes::descriptor(1 << 20);
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let health = HealthConfig::disabled();

    let healthy =
        analyzer.simulate_resilient(&desc, config, &FaultSchedule::new(11), policy, &health);
    let death = SimTime::from_secs_f64(0.3 * healthy.makespan.as_secs_f64());
    let schedule = FaultSchedule::new(11).with_dropout(DeviceId(1), death);

    let naive = analyzer.simulate_resilient(&desc, config, &schedule, policy, &health);
    let mut tracer = TraceObserver::new();
    let repaired = analyzer
        .simulate_repairing_observed(
            &desc,
            config,
            &schedule,
            policy,
            &health,
            &AdaptConfig::disabled(),
            &ReplanConfig::enabled_default(),
            &mut tracer,
        )
        .expect("the host and the coprocessor survive");

    println!("1. BlackScholes (SP-Single), K20m dies permanently at {death}:");
    println!("   healthy              : {}", healthy.makespan);
    println!("   naive host failover  : {}", naive.makespan);
    println!(
        "   plan repair          : {}  ({} repair(s))",
        repaired.makespan, repaired.adapt.replans
    );
    for (label, report) in [("naive", &naive), ("repaired", &repaired)] {
        let items: Vec<u64> = report.counters.devices.iter().map(|d| d.items).collect();
        println!(
            "   {label:<8} items      : host {}, K20m {}, coprocessor {}",
            items[0], items[1], items[2]
        );
    }
    for ev in &tracer.trace().events {
        if let TraceEvent::PlanRepaired { dev, moved, at } = ev {
            println!(
                "   PlanRepaired         : device {} lost, {moved} chunk(s) rebound at {at}",
                dev.0
            );
        }
    }
    assert!(
        repaired.adapt.replans >= 1,
        "the death must trigger a repair"
    );
    assert!(
        repaired.makespan < naive.makespan,
        "survivor re-planning must beat naive host failover"
    );
    assert!(
        repaired.counters.devices[2].items > naive.counters.devices[2].items,
        "the repair must shift work onto the surviving coprocessor"
    );

    // --- 2. Breaker reclose: healing readmission -------------------------
    // A producer -> prober chain plus 24 GPU-pinned workers on the small
    // symmetric platform. The GPU fails every attempt for its first 700us:
    // two retry storms trip the breaker at ~660us and the worker queue
    // drains to the (16x slower per slot) CPU. The producer finishes while
    // the circuit is half-open, so its dependent GPU-pinned prober is let
    // through as the probe; the GPU is clean again, the circuit recloses,
    // and the healing re-plan migrates the stranded workers back.
    let platform2 = Platform::test_small();
    let mut b = Program::builder();
    let pipe = b.buffer("pipe", 1000, 4);
    let work = b.buffer("work", 24_000, 4);
    let k_prod = b.kernel("produce", gpu_favored(22_500.0)); // 900us on one CPU thread
    let k_work = b.kernel("work", gpu_favored(40_000.0)); // 100us GPU, 1.6ms CPU thread
    b.submit_pinned(
        k_prod,
        1000,
        vec![Access::write(Region::new(pipe, 0, 1000))],
        DeviceId(0),
    );
    b.submit_pinned(
        k_work,
        200,
        vec![Access::read(Region::new(pipe, 0, 1000))],
        DeviceId(1),
    );
    for i in 0..24u64 {
        b.submit_pinned(
            k_work,
            1000,
            vec![Access::read_write(Region::new(
                work,
                i * 1000,
                (i + 1) * 1000,
            ))],
            DeviceId(1),
        );
    }
    let program = b.build();
    let flaky = FaultSchedule::new(61).with_flaky(
        DeviceId(1),
        1.0,
        SimTime::ZERO,
        SimTime::from_micros(700),
    );
    let breaker = HealthConfig {
        breaker: Some(BreakerConfig {
            trip_after: 2,
            cooldown: SimTime::from_micros(100),
        }),
        ..HealthConfig::disabled()
    };
    let stranded = simulate_resilient(
        &program,
        &platform2,
        &mut PinnedScheduler,
        &flaky,
        policy,
        &breaker,
    );
    let (healed, trace) = simulate_repairing_traced(
        &program,
        &platform2,
        &mut PinnedScheduler,
        &flaky,
        policy,
        &breaker,
        &AdaptConfig::disabled(),
        None,
        &ReplanConfig::enabled_default(),
    );
    println!("\n2. flaky GPU quarantined, then readmitted on reclose:");
    println!(
        "   breaker              : {} open(s), {} probe(s), {} close(s)",
        healed.health.circuit_opens, healed.health.probes, healed.health.circuit_closes
    );
    println!("   stranded on the CPU  : {}", stranded.makespan);
    println!(
        "   healing re-plan      : {}  ({} readmission(s))",
        healed.makespan, healed.adapt.readmissions
    );
    for ev in &trace.events {
        if let TraceEvent::DeviceReadmitted { dev, moved, at } = ev {
            println!(
                "   DeviceReadmitted     : device {} healed, {moved} chunk(s) migrated back at {at}",
                dev.0
            );
        }
    }
    assert!(healed.health.circuit_closes >= 1, "the probe must reclose");
    assert!(
        healed.adapt.readmissions >= 1,
        "the reclose must trigger a healing re-plan"
    );
    assert!(
        healed.makespan < stranded.makespan,
        "readmitting the healed GPU must beat leaving its work stranded"
    );

    // --- 3. The planner-level API: downgrade and typed errors ------------
    let planner = Planner::new(&platform);
    let two_way = planner
        .replan_surviving(
            &desc,
            config,
            &[DeviceId(0), DeviceId(2)],
            None,
            &[None, None],
        )
        .expect("host + coprocessor is plannable");
    let host_only = planner
        .replan_surviving(&desc, config, &[DeviceId(0)], None, &[None, None])
        .expect("the host alone is plannable");
    let nobody = planner
        .replan_surviving(&desc, config, &[], None, &[None, None])
        .expect_err("an empty survivor set is not plannable");
    let headless = planner
        .replan_surviving(
            &desc,
            config,
            &[DeviceId(1), DeviceId(2)],
            None,
            &[None, None],
        )
        .expect_err("a survivor set without the host is not plannable");
    println!("\n3. Planner::replan_surviving on the degraded platform:");
    let multi = two_way.multi.as_ref().expect("one accelerator re-solved");
    println!(
        "   host + coprocessor   : {} survives over {} accelerator(s) (CPU {} / coprocessor {} items)",
        two_way.config,
        two_way.accels.len(),
        multi.cpu_items,
        multi.accel_items.iter().sum::<u64>()
    );
    println!(
        "   host only            : downgraded to {}, {} accelerator(s)",
        host_only.config,
        host_only.accels.len()
    );
    println!("   no survivors         : {nobody}");
    println!("   host itself dead     : {headless}");
    assert_eq!(two_way.config, config, "the strategy survives the re-solve");
    assert!(matches!(host_only.config, ExecutionConfig::OnlyCpu));
    assert!(host_only.multi.is_none());
    assert!(matches!(nobody, ReplanError::NoSurvivingAccelerator));
    assert!(matches!(headless, ReplanError::SolverInfeasible { .. }));

    // --- 4. Seeded repairs replay byte-for-byte --------------------------
    let replay = analyzer
        .simulate_repairing(
            &desc,
            config,
            &schedule,
            policy,
            &health,
            &AdaptConfig::disabled(),
            &ReplanConfig::enabled_default(),
        )
        .expect("same schedule, same survivors");
    assert_eq!(replay.makespan, repaired.makespan);
    assert_eq!(replay.adapt, repaired.adapt);
    assert_eq!(replay.breakdown, repaired.breakdown);
    println!("\nreplay with the same seed: identical makespan, adapt report and blame breakdown ✓");

    // --- 5. Blame: the repair's cost is visible, not hidden --------------
    let names: Vec<&str> = platform
        .devices
        .iter()
        .map(|d| d.spec.name.as_str())
        .collect();
    println!("\nrepaired-run blame (K20m died at {death}):");
    print!("{}", repaired.breakdown.render(&names));
    assert!(repaired.breakdown.identity_holds());
}
