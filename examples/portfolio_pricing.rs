//! Portfolio pricing: the BlackScholes scenario from the paper's
//! evaluation, end to end — matchmaking, strategy comparison, and *actual*
//! option pricing on host data through the partitioned program.
//!
//! This is the transfer-dominated case: the PCIe transfer costs ~35× the
//! GPU kernel, so the analyzer's static split keeps a large share on the
//! CPU even though the GPU computes much faster.
//!
//! ```sh
//! cargo run --release --example portfolio_pricing
//! ```

use hetero_match::apps::blackscholes;
use hetero_match::matchmaker::{Analyzer, ExecutionConfig};
use hetero_match::platform::Platform;
use hetero_match::runtime::{run_native, BufferId, ExecOrder, HostBuffers};

fn main() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);

    // --- Performance study at paper scale (80.5M options) ---------------
    let paper = blackscholes::paper_descriptor();
    let analysis = analyzer.analyze(&paper);
    println!(
        "{}: class {} -> best strategy {}",
        analysis.app, analysis.class, analysis.best
    );
    println!();
    println!(
        "{:<12} {:>11} {:>11} {:>13}",
        "config", "time", "GPU share", "transferred"
    );
    for (config, report) in analyzer.compare_all(&paper) {
        println!(
            "{:<12} {:>11} {:>10.1}% {:>10.2} GB",
            config.to_string(),
            report.makespan.to_string(),
            100.0 * report.gpu_item_share(),
            report.counters.transfers.bytes as f64 / 1e9,
        );
    }

    // --- Actual pricing on a small book, via the partitioned program ----
    let n = 8u64;
    let small = blackscholes::descriptor(n);
    let plan = analyzer.plan(&small, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    {
        // A hand-written book of options: (spot, strike, expiry, rate, vol).
        let mut input = hb.get_mut(BufferId(blackscholes::BUF_IN));
        let book = [
            (100.0, 100.0, 1.00, 0.02, 0.25),
            (100.0, 110.0, 1.00, 0.02, 0.25),
            (100.0, 90.0, 1.00, 0.02, 0.25),
            (250.0, 240.0, 0.50, 0.03, 0.40),
            (250.0, 260.0, 0.50, 0.03, 0.40),
            (50.0, 55.0, 2.00, 0.01, 0.30),
            (50.0, 45.0, 2.00, 0.01, 0.30),
            (75.0, 75.0, 0.25, 0.02, 0.20),
        ];
        for (i, (s, k, t, r, v)) in book.iter().enumerate() {
            input[i * 5] = *s;
            input[i * 5 + 1] = *k;
            input[i * 5 + 2] = *t;
            input[i * 5 + 3] = *r;
            input[i * 5 + 4] = *v;
        }
    }
    run_native(
        &plan.program,
        &blackscholes::host_kernels(),
        &hb,
        ExecOrder::Submission,
    );
    let input = hb.snapshot(BufferId(blackscholes::BUF_IN));
    let prices = hb.snapshot(BufferId(blackscholes::BUF_OUT));
    println!();
    println!("priced book ({} options):", n);
    println!(
        "{:>8} {:>8} {:>7} {:>6} {:>6}  {:>9} {:>9}",
        "spot", "strike", "expiry", "rate", "vol", "call", "put"
    );
    for i in 0..n as usize {
        println!(
            "{:>8.2} {:>8.2} {:>7.2} {:>6.2} {:>6.2}  {:>9.4} {:>9.4}",
            input[i * 5],
            input[i * 5 + 1],
            input[i * 5 + 2],
            input[i * 5 + 3],
            input[i * 5 + 4],
            prices[i * 2],
            prices[i * 2 + 1]
        );
    }
}
