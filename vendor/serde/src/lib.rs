//! Minimal offline stand-in for `serde`.
//!
//! Provides a self-describing value tree ([`Value`]) plus [`Serialize`] /
//! [`Deserialize`] traits that convert to and from it. The companion
//! `serde_derive` proc-macro crate generates impls for plain structs and
//! enums; `serde_json` renders the value tree to JSON text and back.
//!
//! The data model is intentionally small — exactly what this workspace
//! needs — and makes no attempt at serde's full zero-copy architecture.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing tree every serializable type converts through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Value>),
    /// Ordered key/value map (JSON object, insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as a sequence, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view as `u64` (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::I64(n) => Some(n),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Seq(v) => v.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization support: the error type and field-lookup helpers used by
/// derived code.
pub mod de {
    use super::Value;

    /// Deserialization error: a human-readable message.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Build an error from any displayable message.
        pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error {
                msg: msg.to_string(),
            }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Look up `key` in a map body (derived-code helper).
    pub fn entry<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Decode a required struct field (derived-code helper).
    pub fn field<T: super::Deserialize>(
        m: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match entry(m, key) {
            Some(v) => T::from_value(v),
            None => Err(Error::custom(format!("missing field `{key}` in {ty}"))),
        }
    }
}

pub use de::Error;

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the self-describing value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    concat!("integer out of range for ", stringify!($t), ": {}"), n)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    concat!("integer out of range for ", stringify!($t), ": {}"), n)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {v:?}")))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                let want = [$($i),+].len();
                if seq.len() != want {
                    return Err(Error::custom(format!(
                        "expected tuple of {want}, got {} elements", seq.len())));
                }
                Ok(($($t::from_value(&seq[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
}

/// Maps serialize as a sequence of `[key, value]` pairs — self-consistent
/// for roundtripping and key-type agnostic (keys need not be strings).
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected map pair-list, got {v:?}")))?;
        let mut out = std::collections::BTreeMap::new();
        for pair in seq {
            let pair = pair
                .as_array()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if pair.len() != 2 {
                return Err(Error::custom("expected [key, value] pair of length 2"));
            }
            out.insert(K::from_value(&pair[0])?, V::from_value(&pair[1])?);
        }
        Ok(out)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            Value::U64(self.as_secs()),
            Value::U64(self.subsec_nanos() as u64),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let (s, n) = <(u64, u32)>::from_value(v)?;
        Ok(std::time::Duration::new(s, n))
    }
}
