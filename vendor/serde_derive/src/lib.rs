//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the minimal offline
//! serde stand-in.
//!
//! Implemented directly on `proc_macro` (no syn/quote): the derive input is
//! parsed with a small hand-rolled token walker, and the impl is emitted as a
//! source string that gets re-parsed into a `TokenStream`. Supports plain
//! structs (named / tuple / unit) and enums (unit / tuple / struct variants)
//! with at most lifetime or plain type parameters — which covers every type
//! in this workspace. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Generic parameter names as written, e.g. `["'a"]` or `["T"]`.
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` (value-tree reconstruction).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let item_kind = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    let generics = parse_generics(&toks, &mut i);

    if matches!(toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        panic!("serde_derive: `where` clauses are not supported (type `{name}`)");
    }

    let kind = match item_kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: unexpected token after struct `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected token after enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]` — the bracket group is the next token.
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super) / ...
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parse `<...>` after the type name, returning parameter names.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params: Vec<Vec<TokenTree>> = Vec::new();
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut cur: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let t = toks
            .get(*i)
            .unwrap_or_else(|| panic!("serde_derive: unterminated generics"));
        *i += 1;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    cur.push(t.clone());
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                params.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        params.push(cur);
    }
    params
        .into_iter()
        .map(|p| {
            // A parameter is `'a`, `T`, or `T: Bounds` — keep only the name.
            match p.first() {
                Some(TokenTree::Punct(q)) if q.as_char() == '\'' => match p.get(1) {
                    Some(TokenTree::Ident(id)) => format!("'{id}"),
                    other => panic!("serde_derive: malformed lifetime param: {other:?}"),
                },
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: unsupported generic param start: {other:?}"),
            }
        })
        .collect()
}

/// Parse `{ a: T, b: U, ... }` field names, skipping attributes and types.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&toks, &mut i);
    }
    fields
}

/// Advance past a type, stopping after the top-level `,` (or at end).
fn skip_type_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Count fields of `(T, U, ...)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        n += 1;
        skip_type_until_comma(&toks, &mut i);
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(t) = toks.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------------

/// `(impl_generics, ty_generics)` strings, with `extra_bound` appended to
/// every type (non-lifetime) parameter in the impl position.
fn generics_strings(input: &Input, extra_bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        return (String::new(), String::new());
    }
    let impl_params: Vec<String> = input
        .generics
        .iter()
        .map(|g| {
            if g.starts_with('\'') {
                g.clone()
            } else {
                format!("{g}: {extra_bound}")
            }
        })
        .collect();
    (
        format!("<{}>", impl_params.join(", ")),
        format!("<{}>", input.generics.join(", ")),
    )
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let (impl_g, ty_g) = generics_strings(input, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "{{ let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {} ::serde::Value::Map(__m) }}",
                pushes.join(" ")
            )
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(gen_serialize_variant).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_g} ::serde::Serialize for {name}{ty_g} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_variant(v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("Self::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),")
        }
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_value(__f0)".to_string()
            } else {
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            };
            format!(
                "Self::{vn}({binds}) => ::serde::Value::Map(::std::vec![\
                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                binds = binders.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "__m.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f})));"
                    )
                })
                .collect();
            format!(
                "Self::{vn} {{ {binds} }} => {{ \
                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} \
                 ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), \
                 ::serde::Value::Map(__m))]) }},",
                binds = fields.join(", "),
                pushes = pushes.join(" ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    let (impl_g, ty_g) = generics_strings(input, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                .collect();
            format!(
                "{{ let __seq = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected array for {name}\"))?; \
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::de::Error::custom(\"wrong tuple arity for {name}\")); }} \
                 ::std::result::Result::Ok({name}({elems})) }}",
                elems = elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__m, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "{{ let __m = __v.as_map().ok_or_else(|| \
                 ::serde::de::Error::custom(\"expected map for {name}\"))?; \
                 ::std::result::Result::Ok({name} {{ {} }}) }}",
                inits.join(" ")
            )
        }
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl{impl_g} ::serde::Deserialize for {name}{ty_g} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push(format!(
                    "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}),"
                ));
            }
            VariantKind::Tuple(1) => data_arms.push(format!(
                "\"{vn}\" => ::std::result::Result::Ok(Self::{vn}(\
                 ::serde::Deserialize::from_value(__val)?)),"
            )),
            VariantKind::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                data_arms.push(format!(
                    "\"{vn}\" => {{ let __seq = __val.as_array().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected array for {name}::{vn}\"))?; \
                     if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::de::Error::custom(\"wrong arity for {name}::{vn}\")); }} \
                     ::std::result::Result::Ok(Self::{vn}({elems})) }}",
                    elems = elems.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::de::field(__f, \"{f}\", \"{name}::{vn}\")?,"))
                    .collect();
                data_arms.push(format!(
                    "\"{vn}\" => {{ let __f = __val.as_map().ok_or_else(|| \
                     ::serde::de::Error::custom(\"expected map for {name}::{vn}\"))?; \
                     ::std::result::Result::Ok(Self::{vn} {{ {} }}) }}",
                    inits.join(" ")
                ));
            }
        }
    }
    format!(
        "match __v {{ \
         ::serde::Value::Str(__s) => match __s.as_str() {{ {units} _ => \
         ::std::result::Result::Err(::serde::de::Error::custom(\
         ::std::format!(\"unknown unit variant `{{}}` of {name}\", __s))) }}, \
         ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
         let (__k, __val) = &__m[0]; \
         match __k.as_str() {{ {datas} _ => ::std::result::Result::Err(\
         ::serde::de::Error::custom(::std::format!(\
         \"unknown variant `{{}}` of {name}\", __k))) }} }}, \
         __other => ::std::result::Result::Err(::serde::de::Error::custom(\
         ::std::format!(\"expected {name} variant, got {{:?}}\", __other))) }}",
        units = unit_arms.join(" "),
        datas = data_arms.join(" ")
    )
}
