//! Minimal offline stand-in for `proptest`.
//!
//! Implements the generate-and-check core: `Strategy` values produce inputs
//! from a deterministic per-test RNG, `proptest!` runs the body for
//! `ProptestConfig::cases` iterations, and `prop_assert*` macros report the
//! failing case. No shrinking — a failure reports the case number and seed
//! name, and reruns are fully deterministic.

pub mod test_runner {
    /// Run configuration: how many generated cases each test executes.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// A failed property case (message only; no shrinking).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Build a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic RNG (splitmix64), seeded from the test's path so every
    /// run of a given test generates the same inputs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary name (e.g. `module::test_name`).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Seed directly.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value from the RNG.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> OneOf<V> {
        /// Start an empty choice (filled in by `prop_oneof!` via [`Self::with`]).
        pub fn empty() -> Self {
            OneOf {
                options: Vec::new(),
            }
        }

        /// Add one alternative. Using a typed method (rather than casting to
        /// `Box<dyn Strategy<Value = _>>` in the macro) lets inference pin
        /// `V` from the strategies before integer-literal fallback kicks in.
        pub fn with<S: Strategy<Value = V> + 'static>(mut self, s: S) -> Self {
            self.options.push(Box::new(s));
            self
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(
                !self.options.is_empty(),
                "prop_oneof! needs at least one option"
            );
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi - lo + 1) as u64; // never 0 for the types used here
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as f64, self.end as f64);
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                    // Treat the inclusive bound as reachable via rounding.
                    (lo + rng.unit_f64() * (hi - lo)) as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident : $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
        (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generate vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs, star-importable.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn` runs `cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let mut __body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(__e) = __body() {
                        ::std::panic!(
                            "proptest {} failed at case #{}: {}",
                            stringify!($name), __case, __e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside `proptest!` bodies; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($arg)+),
            ));
        }
    };
}

/// Equality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                            __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($arg:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                            __l, __r, ::std::format!($($arg)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Inequality assertion for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
}

/// Uniform choice among strategies that all yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::empty()$(.with($s))+
    };
}
