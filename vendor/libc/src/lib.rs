//! Minimal offline stand-in for `libc`: only the `signal(2)` surface this
//! workspace uses (restoring default `SIGPIPE` behaviour in CLI binaries).

#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;

/// Signal handler value (`void (*)(int)` as an address).
pub type sighandler_t = usize;

/// Default signal action.
pub const SIG_DFL: sighandler_t = 0;

/// Broken-pipe signal number (Linux).
pub const SIGPIPE: c_int = 13;

extern "C" {
    /// `signal(2)` from the system C library.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
}
