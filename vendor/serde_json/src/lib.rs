//! Minimal offline stand-in for `serde_json`.
//!
//! Renders the `serde` value tree to JSON text (compact and pretty) and
//! parses JSON text back. Floats are written with Rust's shortest-roundtrip
//! `Display`, so `f64` values survive a text roundtrip exactly; non-finite
//! floats serialize as `null` (matching serde_json's lossy behaviour).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => write_f64(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display for f64 is shortest-roundtrip; force a decimal point or
    // exponent so the token re-parses as a float, not an integer.
    let s = n.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pairs for astral-plane characters.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape {other:?}")));
                    }
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: collect the full sequence.
                    let len = utf8_len(b);
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Build a [`Value`] from a JSON object/array literal. Supports the
/// object-literal shape used in this workspace: `json!({ "key": expr, ... })`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $((
                ::std::string::String::from($key),
                $crate::to_value(&$val).unwrap(),
            )),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $($crate::to_value(&$val).unwrap()),* ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}
