//! Minimal offline stand-in for `crossbeam`'s scoped threads, implemented on
//! `std::thread::scope`. API shape matches crossbeam 0.8: the scope closure
//! and each spawned closure receive a `&Scope`, `scope()` returns
//! `Err(payload)` if any thread panicked, and handles can be joined early.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle to threads spawned within a [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result or panic payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread bound to the scope. The closure receives the scope
    /// again so it can spawn nested work (unused by most callers: `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reborrow = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&reborrow)),
        }
    }
}

/// Run `f` with a thread scope; all spawned threads are joined before this
/// returns. Returns `Err` with the panic payload if `f` or any thread panics.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

/// `crossbeam::thread` module alias, mirroring the real crate layout.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}
