//! Minimal offline stand-in for `criterion`.
//!
//! Keeps the macro/builder API shape (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `Throughput`) but measures with a
//! handful of wall-clock samples and prints a one-line summary per benchmark
//! instead of doing statistical analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// CLI-argument configuration (accepted and ignored here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.as_ref().to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) {
        let mut b = Bencher::new(id.as_ref().to_string(), self.sample_size, None);
        f(&mut b);
        b.report();
    }
}

/// Per-iteration work normalization for reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget (accepted and ignored; one warm-up call is always made).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measurement budget (accepted and ignored; samples are fixed-count).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.as_ref());
        let mut b = Bencher::new(label, self.sample_size, self.throughput);
        f(&mut b);
        b.report();
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    label: String,
    samples: usize,
    throughput: Option<Throughput>,
    mean_ns: f64,
}

impl Bencher {
    fn new(label: String, samples: usize, throughput: Option<Throughput>) -> Self {
        Bencher {
            label,
            samples,
            throughput,
            mean_ns: f64::NAN,
        }
    }

    /// Time `f`, called once per sample after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }

    fn report(&self) {
        if self.mean_ns.is_nan() {
            return;
        }
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / self.mean_ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / self.mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            None => String::new(),
        };
        eprintln!(
            "bench {:<50} {:>12.0} ns/iter{extra}",
            self.label, self.mean_ns
        );
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
