#![warn(missing_docs)]

//! # hetero-match
//!
//! Umbrella crate for the reproduction of *"Matchmaking Applications and
//! Partitioning Strategies for Efficient Execution on Heterogeneous
//! Platforms"* (Shen, Varbanescu, Martorell, Sips — ICPP 2015).
//!
//! It re-exports the workspace crates under one roof so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`platform`] — deterministic heterogeneous-platform simulator
//!   (devices, links, virtual time).
//! * [`runtime`] — OmpSs-analog task runtime (dependence analysis, memory
//!   coherence, dynamic schedulers, virtual-time and native executors).
//! * [`glinda`] — static partitioning model (modeling / profiling /
//!   prediction / decision).
//! * [`matchmaker`] — the paper's contribution: application classification,
//!   the five partitioning strategies, the performance ranking, and the
//!   application analyzer.
//! * [`apps`] — the six evaluation applications and the kernel-structure
//!   corpus.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory.

pub use glinda;
pub use hetero_apps as apps;
pub use hetero_platform as platform;
pub use hetero_runtime as runtime;
pub use matchmaker;
