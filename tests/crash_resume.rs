//! Crash-consistency acceptance (PR 8): for *every* kill point of a
//! journaled run — after each committed epoch record, the same point with
//! a torn trailing line, and mid-epoch at simulated times between
//! barriers — crashing and resuming from the journal must reproduce the
//! uninterrupted run byte-for-byte: the final `RunReport`, the regenerated
//! journal text, the execution trace, the metrics export, and (PR 9) the
//! per-epoch `EpochSnapshot` metrics stream. Covered on
//! the plain, faulty, adaptive, and repairing executor paths, plus a
//! proptest over random fault seeds.

use hetero_match::apps::synth;
use hetero_match::matchmaker::{
    Analyzer, AppDescriptor, ExecutionConfig, ExecutionFlow, JournalError, JournalSink, RunSpec,
    Strategy,
};
use hetero_match::platform::{
    DeviceId, FaultSchedule, KillSchedule, Platform, RetryPolicy, SimTime,
};
use hetero_match::runtime::{AdaptConfig, HealthConfig, ReplanConfig};
use hetero_match::runtime::{MetricsObserver, MultiObserver, SnapshotObserver, TraceObserver};
use proptest::prelude::*;

/// SK-Loop over several taskwait barriers: enough epochs for the kill
/// sweep to cross real state (placements, fault counters, RNG cursors).
fn app() -> AppDescriptor {
    synth::single_kernel(
        "crash",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 5 },
        true,
    )
}

/// Run `spec` journaled and uninterrupted, then re-run it under every kill
/// point and assert the resumed run is byte-identical across all four
/// exports. `twin` is the unjournaled sibling entry point's report — the
/// journal must be a pure observer.
fn sweep(
    platform: &Platform,
    analyzer: &Analyzer,
    desc: &AppDescriptor,
    config: ExecutionConfig,
    spec: &RunSpec,
    twin: Option<&hetero_match::runtime::RunReport>,
) {
    let mut sink = JournalSink::record();
    let mut tobs = TraceObserver::new();
    let mut mobs = MetricsObserver::new(platform, "crash-resume");
    let mut snap = SnapshotObserver::new(platform, "crash-resume");
    let report = {
        let mut multi = MultiObserver::new()
            .with(&mut tobs)
            .with(&mut mobs)
            .with(&mut snap);
        analyzer
            .simulate_journaled_observed(desc, config, spec, &mut sink, &mut multi)
            .unwrap()
    };
    let digest = serde_json::to_string(&report).unwrap();
    if let Some(twin) = twin {
        assert_eq!(
            serde_json::to_string(twin).unwrap(),
            digest,
            "journaling must not perturb the run"
        );
    }
    let full_text = sink.text();
    let full_trace = serde_json::to_string(tobs.trace()).unwrap();
    let full_metrics = mobs.registry().to_json();
    let full_stream = snap.stream();
    let records = sink.records();
    assert!(
        records >= 2,
        "the app must span several epochs (got {records})"
    );

    // Kill points: every committed-record prefix, clean and torn, plus
    // simulated times spread across the run (mid-epoch deaths).
    let mut kills: Vec<KillSchedule> = Vec::new();
    for k in 0..records {
        kills.push(KillSchedule::after_records(k));
        kills.push(KillSchedule::after_records(k).torn());
    }
    for i in 1..6u64 {
        kills.push(KillSchedule::at_time(SimTime::from_nanos(
            report.makespan.as_nanos() * i / 6,
        )));
    }

    for (i, kill) in kills.into_iter().enumerate() {
        let mut sink = JournalSink::record_with_kill(kill);
        match analyzer.simulate_journaled(desc, config, spec, &mut sink) {
            Err(JournalError::Killed { .. }) => {}
            // A time kill can land after the final flush — the complete
            // journal must still resume cleanly.
            Ok(_) => {}
            Err(e) => panic!("kill point {i}: unexpected journal error: {e}"),
        }
        let mut tobs = TraceObserver::new();
        let mut mobs = MetricsObserver::new(platform, "crash-resume");
        let mut snap = SnapshotObserver::new(platform, "crash-resume");
        let (resumed, resumed_text) = {
            let mut multi = MultiObserver::new()
                .with(&mut tobs)
                .with(&mut mobs)
                .with(&mut snap);
            analyzer
                .resume_observed(&sink.text(), &mut multi)
                .unwrap_or_else(|e| panic!("kill point {i}: resume failed: {e}"))
        };
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            digest,
            "kill point {i}: resumed report diverges"
        );
        assert_eq!(
            resumed_text, full_text,
            "kill point {i}: regenerated journal diverges"
        );
        assert_eq!(
            serde_json::to_string(tobs.trace()).unwrap(),
            full_trace,
            "kill point {i}: resumed trace diverges"
        );
        assert_eq!(
            mobs.registry().to_json(),
            full_metrics,
            "kill point {i}: resumed metrics export diverges"
        );
        assert_eq!(
            snap.stream(),
            full_stream,
            "kill point {i}: resumed metrics stream diverges"
        );
    }
}

#[test]
fn every_kill_point_resumes_identically_on_the_plain_path() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let twin = analyzer.simulate(&desc, config);
    sweep(
        &platform,
        &analyzer,
        &desc,
        config,
        &RunSpec::plain(),
        Some(&twin),
    );
}

#[test]
fn every_kill_point_resumes_identically_under_a_dynamic_scheduler() {
    // DP-Perf's warm-up pass runs unjournaled (it is a pure function of
    // the inputs), so resume must regenerate it before replaying records.
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::DpPerf);
    let twin = analyzer.simulate(&desc, config);
    sweep(
        &platform,
        &analyzer,
        &desc,
        config,
        &RunSpec::plain(),
        Some(&twin),
    );
}

#[test]
fn every_kill_point_resumes_identically_under_faults() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let schedule = FaultSchedule::new(29).with_flaky(
        DeviceId(1),
        0.25,
        SimTime::ZERO,
        SimTime::from_millis(500),
    );
    let twin = analyzer.simulate_faulty(&desc, config, &schedule, RetryPolicy::default());
    assert!(
        twin.faults.task_faults > 0,
        "the flaky window must actually fault"
    );
    sweep(
        &platform,
        &analyzer,
        &desc,
        config,
        &RunSpec::faulty(schedule),
        Some(&twin),
    );
}

#[test]
fn every_kill_point_resumes_identically_across_adaptation() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let schedule =
        FaultSchedule::new(42).with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
    let health = HealthConfig::disabled();
    let adapt = AdaptConfig::enabled_default();
    let twin = analyzer.simulate_adaptive(
        &desc,
        config,
        &schedule,
        RetryPolicy::default(),
        &health,
        &adapt,
    );
    assert!(
        twin.adapt.repartitions >= 1,
        "the misprediction must trigger repartitioning: {:?}",
        twin.adapt
    );
    sweep(
        &platform,
        &analyzer,
        &desc,
        config,
        &RunSpec::adaptive(schedule, health, adapt),
        Some(&twin),
    );
}

#[test]
fn every_kill_point_resumes_identically_across_plan_repair() {
    // On the 2-device preset failover-to-host is exactly the naive
    // fallback, so the no-regression guard counts no replan; the 3-device
    // preset gives the repair a real survivor set to re-solve over.
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let schedule = FaultSchedule::new(7).with_dropout(DeviceId(1), SimTime::from_micros(400));
    let health = HealthConfig::disabled();
    let adapt = AdaptConfig::disabled();
    let replan = ReplanConfig::enabled_default();
    let twin = analyzer
        .simulate_repairing(
            &desc,
            config,
            &schedule,
            RetryPolicy::default(),
            &health,
            &adapt,
            &replan,
        )
        .unwrap();
    assert!(
        twin.adapt.replans >= 1,
        "the dropout must trigger plan repair: {:?}",
        twin.adapt
    );
    sweep(
        &platform,
        &analyzer,
        &desc,
        config,
        &RunSpec::repairing(schedule, health, adapt, replan),
        Some(&twin),
    );
}

/// A complete journaled plain run: (journal text, report digest).
fn complete_journal() -> (String, String) {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let mut sink = JournalSink::record();
    let report = analyzer
        .simulate_journaled(&desc, config, &RunSpec::plain(), &mut sink)
        .unwrap();
    (sink.text(), serde_json::to_string(&report).unwrap())
}

#[test]
fn salvage_recovers_a_corrupt_middle_line() {
    let (full_text, digest) = complete_journal();
    let lines: Vec<&str> = full_text.split_inclusive('\n').collect();
    assert!(
        lines.len() >= 4,
        "want several records, got {}",
        lines.len()
    );
    // Break the envelope of a middle record (journal line 4) without
    // changing its length: strict load must refuse the whole journal,
    // salvage must keep the two records before it.
    let target = 3;
    let corrupt: String = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            if i == target {
                l.replacen("\"body\"", "\"b0dy\"", 1)
            } else {
                (*l).to_string()
            }
        })
        .collect();
    assert_eq!(corrupt.len(), full_text.len());
    assert!(matches!(
        hetero_match::matchmaker::RunJournal::load(&corrupt),
        Err(JournalError::CorruptLine { line: 4 })
    ));
    let (journal, salvage) = hetero_match::matchmaker::RunJournal::load_salvaged(&corrupt).unwrap();
    let salvage = salvage.expect("a cut must be reported");
    assert_eq!(salvage.first_bad_line, 4);
    assert_eq!(salvage.discarded_lines, lines.len() - target);
    assert!(salvage.reason.contains("integrity envelope"), "{salvage}");
    assert_eq!(journal.record_count(), target - 1);
    assert!(
        journal.torn_discarded,
        "a cut prefix resumes like a torn one"
    );

    // Salvaged resume must regenerate the uninterrupted run exactly.
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let (resumed, resumed_text, report) = analyzer
        .resume_salvaged(&corrupt, &mut hetero_match::runtime::NullObserver)
        .unwrap();
    assert_eq!(serde_json::to_string(&resumed).unwrap(), digest);
    assert_eq!(resumed_text, full_text);
    assert_eq!(report.expect("a cut must be reported").first_bad_line, 4);
}

#[test]
fn salvage_stops_at_a_non_sequential_epoch() {
    let (full_text, digest) = complete_journal();
    let mut lines: Vec<String> = full_text
        .split_inclusive('\n')
        .map(str::to_string)
        .collect();
    assert!(lines.len() >= 4);
    // Swap two middle records: both lines still pass their hash check,
    // but the epoch sequence breaks at the first swapped line.
    lines.swap(2, 3);
    let corrupt: String = lines.concat();
    assert!(matches!(
        hetero_match::matchmaker::RunJournal::load(&corrupt),
        Err(JournalError::NonSequentialEpoch {
            line: 3,
            found: 2,
            expected: 1,
        })
    ));
    let (journal, salvage) = hetero_match::matchmaker::RunJournal::load_salvaged(&corrupt).unwrap();
    let salvage = salvage.expect("a cut must be reported");
    assert_eq!(salvage.first_bad_line, 3);
    assert_eq!(journal.record_count(), 1);

    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let (resumed, resumed_text, _) = analyzer
        .resume_salvaged(&corrupt, &mut hetero_match::runtime::NullObserver)
        .unwrap();
    assert_eq!(serde_json::to_string(&resumed).unwrap(), digest);
    assert_eq!(resumed_text, full_text);
}

#[test]
fn salvage_of_a_clean_journal_reports_nothing() {
    let (full_text, _) = complete_journal();
    let strict = hetero_match::matchmaker::RunJournal::load(&full_text).unwrap();
    let (salvaged, report) =
        hetero_match::matchmaker::RunJournal::load_salvaged(&full_text).unwrap();
    assert!(report.is_none());
    assert_eq!(salvaged, strict);
    // Nothing-to-salvage journals still fail typed: the header is the
    // trust anchor salvage cannot reconstruct.
    assert!(matches!(
        hetero_match::matchmaker::RunJournal::load_salvaged(""),
        Err(JournalError::Empty)
    ));
    assert!(matches!(
        hetero_match::matchmaker::RunJournal::load_salvaged("not a journal\n"),
        Err(JournalError::MissingHeader)
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded mix of transient faults and profile misprediction stays
    /// crash-consistent at every kill point.
    #[test]
    fn random_fault_mixes_stay_crash_consistent(
        seed in 0u64..1_000,
        fault_prob in 0.05f64..0.3,
        factor in prop_oneof![0.3f64..0.8, 1.3f64..2.5],
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let desc = app();
        let config = ExecutionConfig::Strategy(Strategy::SpSingle);
        let schedule = FaultSchedule::new(seed)
            .with_flaky(DeviceId(1), fault_prob, SimTime::ZERO, SimTime::from_millis(100))
            .with_profile_perturb(DeviceId(0), factor, SimTime::ZERO, SimTime::MAX);
        sweep(
            &platform,
            &analyzer,
            &desc,
            config,
            &RunSpec::adaptive(schedule, HealthConfig::disabled(), AdaptConfig::enabled_default()),
            None,
        );
    }
}
