//! Regression replay of the checked-in fuzz corpus under
//! `tests/fuzz_corpus/`: every archived scenario must stay clean under the
//! full oracle bank, deterministically. Past shrunk reproducers land here
//! so the bugs they exposed can never silently return.

use std::path::PathBuf;

use hetero_match::matchmaker::{
    load_corpus, run_oracles, save_corpus_entry, CorpusEntry, InjectedBreak, Scenario,
};
use hetero_match::platform::FaultEvent;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus")
}

#[test]
fn checked_in_corpus_replays_clean() {
    let corpus = load_corpus(&corpus_dir());
    assert!(
        corpus.len() >= 4,
        "expected at least 4 seed scenarios in tests/fuzz_corpus/, found {}",
        corpus.len()
    );
    for (path, entry) in &corpus {
        assert!(
            entry.scenario.is_valid(),
            "{} holds an invalid scenario",
            path.display()
        );
        let violations = run_oracles(&entry.scenario, &InjectedBreak::NONE);
        assert!(
            violations.is_empty(),
            "{} regressed: {violations:?}",
            path.display()
        );
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    for (path, entry) in load_corpus(&corpus_dir()) {
        let a = format!("{:?}", run_oracles(&entry.scenario, &InjectedBreak::NONE));
        let b = format!("{:?}", run_oracles(&entry.scenario, &InjectedBreak::NONE));
        assert_eq!(a, b, "{} replay differs between runs", path.display());
    }
}

/// The headline seed scenario from the ISSUE: a correlated-domain outage
/// plus a link-bandwidth degrade on a >=3-device platform.
#[test]
fn corpus_has_correlated_outage_with_link_degrade() {
    let corpus = load_corpus(&corpus_dir());
    let hit = corpus.iter().find(|(path, _)| {
        path.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains("correlated-outage-link-degrade"))
    });
    let (_, entry) = hit.expect("seed-correlated-outage-link-degrade fixture missing");
    let s = &entry.scenario;
    assert!(s.platform.device_count() >= 3, "wants a 3+-device platform");
    assert!(
        !s.schedule.domains.is_empty(),
        "wants a correlated fault domain"
    );
    assert!(
        s.schedule
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::LinkDegrade { .. })),
        "wants a LinkDegrade event"
    );
}

/// The degraded-mode plan-repair seed from the ISSUE: a mid-run permanent
/// device death on a >=3-device platform under a static hybrid strategy —
/// the envelope of the repair-never-loses oracle.
#[test]
fn corpus_has_permanent_death_replan() {
    let corpus = load_corpus(&corpus_dir());
    let hit = corpus.iter().find(|(path, _)| {
        path.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains("permanent-death-replan"))
    });
    let (_, entry) = hit.expect("seed-permanent-death-replan fixture missing");
    let s = &entry.scenario;
    assert!(s.platform.device_count() >= 3, "wants a 3+-device platform");
    assert!(
        s.schedule.events.iter().any(|e| matches!(
            e,
            FaultEvent::DeviceDropout { dev, at } if dev.0 >= 1 && at.as_nanos() > 0
        )),
        "wants a mid-run accelerator dropout"
    );
    assert!(
        matches!(
            s.config,
            hetero_match::matchmaker::ExecutionConfig::Strategy(st) if st.is_static()
        ),
        "wants a static hybrid strategy so the repair oracle arms"
    );
}

/// The crash–resume seed from the ISSUE: a mid-run permanent dropout plus
/// transient faults under a static hybrid strategy, so the corpus replay
/// sweeps every kill point of a journaled run that crosses a plan repair.
#[test]
fn corpus_has_crash_replan_resume() {
    let corpus = load_corpus(&corpus_dir());
    let hit = corpus.iter().find(|(path, _)| {
        path.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains("crash-replan-resume"))
    });
    let (_, entry) = hit.expect("seed-crash-replan-resume fixture missing");
    let s = &entry.scenario;
    assert!(
        s.schedule.events.iter().any(|e| matches!(
            e,
            FaultEvent::DeviceDropout { dev, at } if dev.0 >= 1 && at.as_nanos() > 0
        )),
        "wants a mid-run accelerator dropout so plan repair fires"
    );
    assert!(
        s.schedule
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Flaky { .. } | FaultEvent::TaskFaults { .. })),
        "wants transient fault windows so the crash sweep crosses retries"
    );
    assert!(
        matches!(
            s.config,
            hetero_match::matchmaker::ExecutionConfig::Strategy(st) if st.is_static()
        ),
        "wants a static hybrid strategy so the repairing arm of the \
         crash-resume-equivalence oracle arms"
    );
}

/// Regenerate the seed corpus. Deterministic: scans generated seeds from 0
/// upward and archives the first scenario matching each fixture's shape.
/// Run with `cargo test -q --test fuzz_corpus -- --ignored regenerate`.
#[test]
#[ignore = "writes tests/fuzz_corpus/; run manually to refresh the seed fixtures"]
fn regenerate_seed_corpus() {
    type Wants = fn(&Scenario) -> bool;
    let dir = corpus_dir();
    let fixtures: &[(&str, &str, Wants)] = &[
        (
            "seed-correlated-outage-link-degrade.json",
            "correlated fault domain armed alongside a link-bandwidth degrade \
             on a 3+-device platform; exercises sibling dropout synthesis and \
             degraded-transfer accounting together",
            |s| {
                s.platform.device_count() >= 3
                    && !s.schedule.domains.is_empty()
                    && s.schedule
                        .events
                        .iter()
                        .any(|e| matches!(e, FaultEvent::LinkDegrade { .. }))
            },
        ),
        (
            "seed-flaky-device-retry.json",
            "a flaky device with per-dispatch fault windows; exercises retry \
             accounting and the blame identity under repeated task faults",
            |s| {
                s.schedule
                    .events
                    .iter()
                    .any(|e| matches!(e, FaultEvent::Flaky { .. } | FaultEvent::TaskFaults { .. }))
            },
        ),
        (
            "seed-profile-misprediction.json",
            "a whole-run profile perturbation under a partitioning strategy; \
             exercises the adaptive and de-escalation no-regression oracles",
            |s| {
                s.schedule
                    .events
                    .iter()
                    .any(|e| matches!(e, FaultEvent::ProfilePerturb { .. }))
                    && matches!(
                        s.config,
                        hetero_match::matchmaker::ExecutionConfig::Strategy(_)
                    )
            },
        ),
        (
            "seed-permanent-death-replan.json",
            "a mid-run permanent accelerator death on a 3+-device platform \
             under a static hybrid strategy; exercises survivor re-planning \
             and the repair-never-loses oracle",
            |s| {
                s.platform.device_count() >= 3
                    && s.schedule.events.iter().any(|e| {
                        matches!(
                            e,
                            FaultEvent::DeviceDropout { dev, at }
                                if dev.0 >= 1 && at.as_nanos() > 0
                        )
                    })
                    && matches!(
                        s.config,
                        hetero_match::matchmaker::ExecutionConfig::Strategy(st)
                            if st.is_static()
                    )
            },
        ),
        (
            "seed-crash-replan-resume.json",
            "a mid-run permanent accelerator death alongside transient fault \
             windows under a static hybrid strategy; exercises every-kill-point \
             crash + resume-from-journal equivalence across degraded-mode plan \
             repair (the crash-resume-equivalence oracle's repairing arm)",
            |s| {
                s.schedule
                    .events
                    .iter()
                    .any(|e| matches!(e, FaultEvent::DeviceDropout { dev, at } if dev.0 >= 1 && at.as_nanos() > 0))
                    && s.schedule
                        .events
                        .iter()
                        .any(|e| matches!(e, FaultEvent::Flaky { .. } | FaultEvent::TaskFaults { .. }))
                    && matches!(
                        s.config,
                        hetero_match::matchmaker::ExecutionConfig::Strategy(st)
                            if st.is_static()
                    )
            },
        ),
    ];
    for (name, description, wants) in fixtures {
        let scenario = (0u64..100_000)
            .map(Scenario::generate)
            .find(|s| s.is_valid() && wants(s))
            .unwrap_or_else(|| panic!("no seed in 0..100000 matches {name}"));
        assert!(
            run_oracles(&scenario, &InjectedBreak::NONE).is_empty(),
            "{name}: candidate scenario must replay clean"
        );
        let entry = CorpusEntry {
            description: (*description).to_string(),
            oracle: None,
            scenario,
        };
        let path = save_corpus_entry(&dir, name, &entry).unwrap();
        eprintln!("wrote {}", path.display());
    }
}
