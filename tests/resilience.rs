//! Resilient execution under injected faults: retry exhaustion, device
//! dropout, epoch checkpointing, safe mode, and seeded replay.
//!
//! Companion to `failure_injection.rs` (which covers *performance*
//! degradation); these tests cover *correctness under failure* — every run
//! must terminate with every item processed exactly once, and identical
//! fault schedules must replay identical executions.

use hetero_match::matchmaker::{ExecutionConfig, Planner, Strategy};
use hetero_match::platform::{
    DeviceId, FaultSchedule, KernelProfile, Platform, RetryPolicy, SimTime,
};
use hetero_match::runtime::{
    simulate, simulate_faulty, simulate_traced, Access, PinnedScheduler, Program, Region,
    RunReport, TraceEvent,
};
use proptest::prelude::*;

fn compute_app(n: u64) -> hetero_match::matchmaker::AppDescriptor {
    hetero_match::apps::synth::single_kernel(
        "resilient",
        n,
        65536.0,
        hetero_match::matchmaker::ExecutionFlow::Sequence,
        false,
    )
}

fn sp_single_program(platform: &Platform, n: u64) -> Program {
    Planner::new(platform)
        .plan(
            &compute_app(n),
            ExecutionConfig::Strategy(Strategy::SpSingle),
        )
        .program
}

fn total_items(r: &RunReport) -> u64 {
    r.counters.devices.iter().map(|c| c.items).sum()
}

#[test]
fn retry_exhaustion_fails_over_to_survivor() {
    let platform = Platform::icpp15();
    let n = 1u64 << 18;
    let program = sp_single_program(&platform, n);

    // Every attempt on the GPU fails; the CPU is healthy. GPU-bound tasks
    // exhaust their retries and must fail over.
    let schedule = FaultSchedule::new(11).with_task_faults(
        Some(DeviceId(1)),
        1.0,
        SimTime::ZERO,
        SimTime::MAX,
    );
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(total_items(&report), n, "every item processed exactly once");
    assert_eq!(
        report.counters.devices[1].items, 0,
        "nothing can complete on the faulting GPU"
    );
    assert_eq!(report.counters.devices[0].items, n);
    assert!(report.faults.failovers >= 1, "{:?}", report.faults);
    // Each failed-over task burned a full retry budget first.
    assert!(report.faults.task_faults >= u64::from(RetryPolicy::default().max_attempts));
    assert!(report.faults.task_retries >= 1);
    assert!(report.faults.backoff_time > SimTime::ZERO);
    assert_eq!(report.faults.safe_mode_tasks, 0, "the CPU side is healthy");

    // The healthy run is strictly faster, and a healthy report carries
    // all-zero fault counters.
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);
    assert!(report.makespan > healthy.makespan);
    assert_eq!(healthy.faults, Default::default());
}

#[test]
fn all_device_faults_end_in_safe_mode() {
    let platform = Platform::icpp15();
    let n = 1u64 << 16;
    let program = sp_single_program(&platform, n);

    // Every attempt fails on *every* device: after one failover the retry
    // budget runs out with nowhere left to go, and safe mode must step in
    // to guarantee termination.
    let schedule = FaultSchedule::new(12).with_task_faults(None, 1.0, SimTime::ZERO, SimTime::MAX);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(total_items(&report), n);
    assert!(report.faults.safe_mode_tasks >= 1, "{:?}", report.faults);
    assert!(report.faults.failovers >= 1);
}

#[test]
fn gpu_dropout_mid_run_completes_on_cpu() {
    let platform = Platform::icpp15();
    let n = 1u64 << 18;
    let program = sp_single_program(&platform, n);
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);

    // The GPU dies halfway through the healthy makespan, taking its
    // in-flight partition with it.
    let at = SimTime::from_secs_f64(healthy.makespan.as_secs_f64() / 2.0);
    let schedule = FaultSchedule::new(13).with_dropout(DeviceId(1), at);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(report.faults.device_dropouts, 1);
    assert_eq!(total_items(&report), n, "no item lost, none double-counted");
    assert_eq!(
        report.counters.devices[1].items, 0,
        "the single epoch never committed, so all GPU work re-ran on the CPU"
    );
    assert_eq!(report.counters.devices[0].items, n);
    assert!(
        report.makespan > healthy.makespan,
        "failover cannot be free: {} vs {}",
        report.makespan,
        healthy.makespan
    );
    // Identical schedule, identical replay.
    let again = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert_eq!(again.makespan, report.makespan);
    assert_eq!(again.faults, report.faults);
}

#[test]
fn committed_epochs_survive_dropout() {
    // Two taskwait-separated epochs, each with one GPU and one CPU task.
    // The GPU dies during epoch 2: epoch 1 reached its barrier (a
    // committed checkpoint) and must keep its GPU attribution; only epoch
    // 2's GPU work re-executes.
    let platform = Platform::icpp15();
    let build = || {
        let mut b = Program::builder();
        let x = b.buffer("x", 4000, 8);
        let k = b.kernel("k", KernelProfile::compute_only(100_000.0));
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 0, 1000))],
            DeviceId(1),
        );
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 1000, 2000))],
            DeviceId(0),
        );
        b.taskwait();
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 2000, 3000))],
            DeviceId(1),
        );
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 3000, 4000))],
            DeviceId(0),
        );
        b.build()
    };
    let program = build();
    let (healthy, trace) = simulate_traced(&program, &platform, &mut PinnedScheduler);

    // Drop the GPU midway between epoch 1's commit (its flush completing)
    // and the end of the run — i.e. somewhere inside epoch 2.
    let epoch1_committed = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Flush { epoch: 0, end, .. } => Some(*end),
            _ => None,
        })
        .next()
        .expect("epoch 1 must flush");
    let at = SimTime::from_secs_f64(
        (epoch1_committed.as_secs_f64() + healthy.makespan.as_secs_f64()) / 2.0,
    );
    let schedule = FaultSchedule::new(14).with_dropout(DeviceId(1), at);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(report.faults.device_dropouts, 1);
    assert_eq!(total_items(&report), 4000);
    assert_eq!(
        report.counters.devices[1].items, 1000,
        "epoch 1's GPU work is checkpointed and keeps its attribution"
    );
    assert_eq!(report.counters.devices[0].items, 3000);
}

#[test]
fn dropout_with_inflight_consumer_of_reset_producer() {
    // RAW chain across devices: a fast GPU producer finishes, then its
    // slow CPU consumer reads the result and runs long; the GPU drops out
    // while the consumer is still in flight. The producer must re-execute
    // (its output lived in the dead memory), while the consumer's standing
    // result is left alone — and the producer's re-completion must not
    // corrupt the consumer's dependence count (regression: underflow of
    // `remaining_preds` panicked in debug builds).
    let platform = Platform::icpp15();
    let mut b = Program::builder();
    let x = b.buffer("x", 2000, 8);
    let fast = b.kernel("fast", KernelProfile::compute_only(10_000.0));
    let slow = b.kernel("slow", KernelProfile::compute_only(50_000_000.0));
    b.submit_pinned(
        fast,
        1000,
        vec![Access::read_write(Region::new(x, 0, 1000))],
        DeviceId(1),
    );
    b.submit_pinned(
        slow,
        1000,
        vec![
            Access::read(Region::new(x, 0, 1000)),
            Access::write(Region::new(x, 1000, 2000)),
        ],
        DeviceId(0),
    );
    let program = b.build();

    let (healthy, trace) = simulate_traced(&program, &platform, &mut PinnedScheduler);
    let task_ends: Vec<SimTime> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Task { end, .. } => Some(*end),
            _ => None,
        })
        .collect();
    let producer_end = *task_ends.iter().min().expect("two tasks ran");
    let consumer_end = *task_ends.iter().max().expect("two tasks ran");
    assert!(producer_end < consumer_end);
    // Strictly after the producer committed its (uncheckpointed) result,
    // strictly while the consumer is running.
    let at =
        SimTime::from_secs_f64((producer_end.as_secs_f64() + consumer_end.as_secs_f64()) / 2.0);
    let schedule = FaultSchedule::new(15).with_dropout(DeviceId(1), at);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(report.faults.device_dropouts, 1);
    assert_eq!(report.faults.reexecutions, 1, "{:?}", report.faults);
    assert_eq!(
        total_items(&report),
        2000,
        "no item lost, none double-counted"
    );
    assert_eq!(
        report.counters.devices[1].items, 0,
        "the producer's GPU attribution is discarded with its re-execution"
    );
    assert_eq!(report.counters.devices[0].items, 2000);
    assert!(report.makespan >= healthy.makespan);
    // Identical schedule, identical replay.
    let again = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert_eq!(again.makespan, report.makespan);
    assert_eq!(again.faults, report.faults);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism: the same seed and schedule replay a byte-identical
    /// `RunReport` — makespan, counters, fault counters, everything.
    #[test]
    fn same_seed_replays_byte_identical_reports(seed in 0u64..1_000) {
        let platform = Platform::test_small();
        let program = sp_single_program(&platform, 1 << 14);
        let schedule = FaultSchedule::new(seed)
            .with_task_faults(None, 0.3, SimTime::ZERO, SimTime::MAX)
            .with_transfer_faults(0.3, SimTime::ZERO, SimTime::MAX)
            .with_throttle(
                DeviceId(1),
                SimTime::ZERO,
                SimTime::from_millis(1),
                1.0,
                4.0,
            );
        let a = simulate_faulty(
            &program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
        );
        let b = simulate_faulty(
            &program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
        );
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        prop_assert_eq!(total_items(&a), 1 << 14);
    }
}
