//! Resilient execution under injected faults: retry exhaustion, device
//! dropout, epoch checkpointing, safe mode, and seeded replay.
//!
//! Companion to `failure_injection.rs` (which covers *performance*
//! degradation); these tests cover *correctness under failure* — every run
//! must terminate with every item processed exactly once, and identical
//! fault schedules must replay identical executions.

use hetero_match::matchmaker::{ExecutionConfig, Planner, Strategy};
use hetero_match::platform::{
    DeviceId, Efficiency, FaultSchedule, KernelProfile, Platform, Precision, RetryPolicy, SimTime,
};
use hetero_match::runtime::{
    simulate, simulate_faulty, simulate_resilient, simulate_resilient_traced, simulate_traced,
    Access, BreakerConfig, HealthConfig, PinnedScheduler, Program, Region, RunReport, TraceEvent,
    VerificationPolicy, WatchdogConfig,
};
use proptest::prelude::*;

fn compute_app(n: u64) -> hetero_match::matchmaker::AppDescriptor {
    hetero_match::apps::synth::single_kernel(
        "resilient",
        n,
        65536.0,
        hetero_match::matchmaker::ExecutionFlow::Sequence,
        false,
    )
}

fn sp_single_program(platform: &Platform, n: u64) -> Program {
    Planner::new(platform)
        .plan(
            &compute_app(n),
            ExecutionConfig::Strategy(Strategy::SpSingle),
        )
        .program
}

fn total_items(r: &RunReport) -> u64 {
    r.counters.devices.iter().map(|c| c.items).sum()
}

/// A compute-bound kernel whose effective rate is identical on
/// `Platform::test_small`'s GPU and on one of its CPU slots (both
/// 25 Gflop/s), so a hedge or verification replica costs exactly what the
/// unthrottled primary would have.
fn balanced_profile(flops_per_item: f64) -> KernelProfile {
    KernelProfile {
        flops_per_item,
        bytes_per_item: 0.0,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency {
            compute: 1.0,
            bandwidth: 1.0,
        },
        // 400 Gflop/s peak x 0.0625 = 25 Gflop/s effective.
        gpu_efficiency: Efficiency {
            compute: 0.0625,
            bandwidth: 1.0,
        },
    }
}

/// Straggler hedging only: no verification, no breaker, so the comparison
/// against the fail-stop executor isolates the watchdog.
fn hedging_only() -> HealthConfig {
    HealthConfig {
        watchdog: Some(WatchdogConfig {
            slack: 1.5,
            hedging: true,
        }),
        ..HealthConfig::disabled()
    }
}

#[test]
fn retry_exhaustion_fails_over_to_survivor() {
    let platform = Platform::icpp15();
    let n = 1u64 << 18;
    let program = sp_single_program(&platform, n);

    // Every attempt on the GPU fails; the CPU is healthy. GPU-bound tasks
    // exhaust their retries and must fail over.
    let schedule = FaultSchedule::new(11).with_task_faults(
        Some(DeviceId(1)),
        1.0,
        SimTime::ZERO,
        SimTime::MAX,
    );
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(total_items(&report), n, "every item processed exactly once");
    assert_eq!(
        report.counters.devices[1].items, 0,
        "nothing can complete on the faulting GPU"
    );
    assert_eq!(report.counters.devices[0].items, n);
    assert!(report.faults.failovers >= 1, "{:?}", report.faults);
    // Each failed-over task burned a full retry budget first.
    assert!(report.faults.task_faults >= u64::from(RetryPolicy::default().max_attempts));
    assert!(report.faults.task_retries >= 1);
    assert!(report.faults.backoff_time > SimTime::ZERO);
    assert_eq!(report.faults.safe_mode_tasks, 0, "the CPU side is healthy");

    // The healthy run is strictly faster, and a healthy report carries
    // all-zero fault counters.
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);
    assert!(report.makespan > healthy.makespan);
    assert_eq!(healthy.faults, Default::default());
}

#[test]
fn all_device_faults_end_in_safe_mode() {
    let platform = Platform::icpp15();
    let n = 1u64 << 16;
    let program = sp_single_program(&platform, n);

    // Every attempt fails on *every* device: after one failover the retry
    // budget runs out with nowhere left to go, and safe mode must step in
    // to guarantee termination.
    let schedule = FaultSchedule::new(12).with_task_faults(None, 1.0, SimTime::ZERO, SimTime::MAX);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(total_items(&report), n);
    assert!(report.faults.safe_mode_tasks >= 1, "{:?}", report.faults);
    assert!(report.faults.failovers >= 1);
}

#[test]
fn gpu_dropout_mid_run_completes_on_cpu() {
    let platform = Platform::icpp15();
    let n = 1u64 << 18;
    let program = sp_single_program(&platform, n);
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);

    // The GPU dies halfway through the healthy makespan, taking its
    // in-flight partition with it.
    let at = SimTime::from_secs_f64(healthy.makespan.as_secs_f64() / 2.0);
    let schedule = FaultSchedule::new(13).with_dropout(DeviceId(1), at);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(report.faults.device_dropouts, 1);
    assert_eq!(total_items(&report), n, "no item lost, none double-counted");
    assert_eq!(
        report.counters.devices[1].items, 0,
        "the single epoch never committed, so all GPU work re-ran on the CPU"
    );
    assert_eq!(report.counters.devices[0].items, n);
    assert!(
        report.makespan > healthy.makespan,
        "failover cannot be free: {} vs {}",
        report.makespan,
        healthy.makespan
    );
    // Identical schedule, identical replay.
    let again = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert_eq!(again.makespan, report.makespan);
    assert_eq!(again.faults, report.faults);
}

#[test]
fn committed_epochs_survive_dropout() {
    // Two taskwait-separated epochs, each with one GPU and one CPU task.
    // The GPU dies during epoch 2: epoch 1 reached its barrier (a
    // committed checkpoint) and must keep its GPU attribution; only epoch
    // 2's GPU work re-executes.
    let platform = Platform::icpp15();
    let build = || {
        let mut b = Program::builder();
        let x = b.buffer("x", 4000, 8);
        let k = b.kernel("k", KernelProfile::compute_only(100_000.0));
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 0, 1000))],
            DeviceId(1),
        );
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 1000, 2000))],
            DeviceId(0),
        );
        b.taskwait();
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 2000, 3000))],
            DeviceId(1),
        );
        b.submit_pinned(
            k,
            1000,
            vec![Access::read_write(Region::new(x, 3000, 4000))],
            DeviceId(0),
        );
        b.build()
    };
    let program = build();
    let (healthy, trace) = simulate_traced(&program, &platform, &mut PinnedScheduler);

    // Drop the GPU midway between epoch 1's commit (its flush completing)
    // and the end of the run — i.e. somewhere inside epoch 2.
    let epoch1_committed = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Flush { epoch: 0, end, .. } => Some(*end),
            _ => None,
        })
        .next()
        .expect("epoch 1 must flush");
    let at = SimTime::from_secs_f64(
        (epoch1_committed.as_secs_f64() + healthy.makespan.as_secs_f64()) / 2.0,
    );
    let schedule = FaultSchedule::new(14).with_dropout(DeviceId(1), at);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(report.faults.device_dropouts, 1);
    assert_eq!(total_items(&report), 4000);
    assert_eq!(
        report.counters.devices[1].items, 1000,
        "epoch 1's GPU work is checkpointed and keeps its attribution"
    );
    assert_eq!(report.counters.devices[0].items, 3000);
}

#[test]
fn dropout_with_inflight_consumer_of_reset_producer() {
    // RAW chain across devices: a fast GPU producer finishes, then its
    // slow CPU consumer reads the result and runs long; the GPU drops out
    // while the consumer is still in flight. The producer must re-execute
    // (its output lived in the dead memory), while the consumer's standing
    // result is left alone — and the producer's re-completion must not
    // corrupt the consumer's dependence count (regression: underflow of
    // `remaining_preds` panicked in debug builds).
    let platform = Platform::icpp15();
    let mut b = Program::builder();
    let x = b.buffer("x", 2000, 8);
    let fast = b.kernel("fast", KernelProfile::compute_only(10_000.0));
    let slow = b.kernel("slow", KernelProfile::compute_only(50_000_000.0));
    b.submit_pinned(
        fast,
        1000,
        vec![Access::read_write(Region::new(x, 0, 1000))],
        DeviceId(1),
    );
    b.submit_pinned(
        slow,
        1000,
        vec![
            Access::read(Region::new(x, 0, 1000)),
            Access::write(Region::new(x, 1000, 2000)),
        ],
        DeviceId(0),
    );
    let program = b.build();

    let (healthy, trace) = simulate_traced(&program, &platform, &mut PinnedScheduler);
    let task_ends: Vec<SimTime> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Task { end, .. } => Some(*end),
            _ => None,
        })
        .collect();
    let producer_end = *task_ends.iter().min().expect("two tasks ran");
    let consumer_end = *task_ends.iter().max().expect("two tasks ran");
    assert!(producer_end < consumer_end);
    // Strictly after the producer committed its (uncheckpointed) result,
    // strictly while the consumer is running.
    let at =
        SimTime::from_secs_f64((producer_end.as_secs_f64() + consumer_end.as_secs_f64()) / 2.0);
    let schedule = FaultSchedule::new(15).with_dropout(DeviceId(1), at);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(report.faults.device_dropouts, 1);
    assert_eq!(report.faults.reexecutions, 1, "{:?}", report.faults);
    assert_eq!(
        total_items(&report),
        2000,
        "no item lost, none double-counted"
    );
    assert_eq!(
        report.counters.devices[1].items, 0,
        "the producer's GPU attribution is discarded with its re-execution"
    );
    assert_eq!(report.counters.devices[0].items, 2000);
    assert!(report.makespan >= healthy.makespan);
    // Identical schedule, identical replay.
    let again = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert_eq!(again.makespan, report.makespan);
    assert_eq!(again.faults, report.faults);
}

#[test]
fn throttle_ramp_lengthens_makespan_end_to_end() {
    let platform = Platform::icpp15();
    let n = 1u64 << 18;
    let program = sp_single_program(&platform, n);
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);

    // The GPU ramps from full speed toward 8x slower across twice the
    // healthy makespan: early tasks barely notice, late tasks crawl.
    let until = SimTime::from_secs_f64(2.0 * healthy.makespan.as_secs_f64());
    let schedule =
        FaultSchedule::new(31).with_throttle(DeviceId(1), SimTime::ZERO, until, 1.0, 8.0);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );

    assert_eq!(total_items(&report), n, "throttling never loses work");
    assert!(
        report.makespan > healthy.makespan,
        "a ramped straggler must lengthen the makespan: {} vs {}",
        report.makespan,
        healthy.makespan
    );
    assert_eq!(report.faults.task_faults, 0, "throttling is not a fault");

    // A steeper ramp is strictly worse.
    let steeper =
        FaultSchedule::new(31).with_throttle(DeviceId(1), SimTime::ZERO, until, 1.0, 16.0);
    let worse = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &steeper,
        RetryPolicy::default(),
    );
    assert!(worse.makespan > report.makespan);

    // Identical schedule, identical replay.
    let again = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert_eq!(again.makespan, report.makespan);
}

#[test]
fn hedging_beats_fail_stop_executor_on_mid_run_straggler() {
    let platform = Platform::test_small();
    let per_task = 1u64 << 16;
    // Four serialized tasks pinned to the single-slot GPU; the CPU's four
    // slots sit idle, ready to absorb hedges.
    let mut b = Program::builder();
    let x = b.buffer("x", 4 * per_task, 4);
    let k = b.kernel("k", balanced_profile(400_000.0));
    for i in 0..4 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(Region::new(
                x,
                i * per_task,
                (i + 1) * per_task,
            ))],
            DeviceId(1),
        );
    }
    let program = b.build();
    let healthy = simulate(&program, &platform, &mut PinnedScheduler);

    // The GPU throttles 4x from mid-run onward: every attempt still
    // succeeds, so the fail-stop executor never reacts.
    let mid = SimTime::from_secs_f64(healthy.makespan.as_secs_f64() / 2.0);
    let schedule = FaultSchedule::new(41).with_throttle(DeviceId(1), mid, SimTime::MAX, 4.0, 4.0);

    let fail_stop = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    let (hedged, trace) = simulate_resilient_traced(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &hedging_only(),
    );

    assert_eq!(total_items(&fail_stop), 4 * per_task);
    assert_eq!(total_items(&hedged), 4 * per_task);
    assert_eq!(fail_stop.health.hedges_issued, 0);
    assert!(hedged.health.hedges_issued >= 1, "{:?}", hedged.health);
    assert!(hedged.health.hedges_won >= 1, "{:?}", hedged.health);
    assert!(hedged.health.time_hedged > SimTime::ZERO);
    assert!(
        hedged.makespan < fail_stop.makespan,
        "hedging around the straggler must beat the fail-stop executor: {} vs {}",
        hedged.makespan,
        fail_stop.makespan
    );
    assert!(
        hedged.makespan > healthy.makespan,
        "hedging is not free: the straggled prefix still costs time"
    );
    // Won hedges re-attribute the straggler's work to the CPU.
    assert!(hedged.counters.devices[0].items >= per_task);
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::HedgeLaunched { .. })));
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::HedgeWon { .. })));

    // Identical schedule, identical replay.
    let again = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &hedging_only(),
    );
    assert_eq!(again.makespan, hedged.makespan);
    assert_eq!(again.health, hedged.health);
}

#[test]
fn dup_check_detects_silent_corruption_and_recommits_clean() {
    let platform = Platform::test_small();
    let per_task = 1000u64;
    // Two taskwait-separated epochs, each with two GPU and two CPU tasks.
    let mut b = Program::builder();
    let x = b.buffer("x", 8 * per_task, 4);
    let k = b.kernel("k", balanced_profile(2500.0));
    for epoch in 0..2u64 {
        for i in 0..4u64 {
            let j = epoch * 4 + i;
            b.submit_pinned(
                k,
                per_task,
                vec![Access::read_write(Region::new(
                    x,
                    j * per_task,
                    (j + 1) * per_task,
                ))],
                DeviceId(if i < 2 { 1 } else { 0 }),
            );
        }
        if epoch == 0 {
            b.taskwait();
        }
    }
    let program = b.build();

    // Every successful GPU attempt silently corrupts its output.
    let schedule = FaultSchedule::new(51).with_silent_corruption(
        DeviceId(1),
        1.0,
        SimTime::ZERO,
        SimTime::MAX,
    );

    // Fail-stop baseline: nothing ever faults, so the corruption commits
    // silently — the run "succeeds" with wrong results.
    let silent = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert_eq!(silent.health.corruptions_detected, 0);
    assert!(silent.health.corruptions_injected >= 1);
    assert!(silent.health.corrupt_committed >= 1, "{:?}", silent.health);
    assert_eq!(silent.faults.task_faults, 0, "SDC is not a fail-stop fault");

    // DupCheck re-executes every task on a peer at the barrier, catches the
    // mismatch, rolls the epoch back, and (after the per-epoch rollback
    // budget) re-runs it with injection suppressed — the SDC analog of safe
    // mode — so the final commit is clean.
    let verified = HealthConfig {
        verification: VerificationPolicy::DupCheck { sample_rate: 1.0 },
        ..HealthConfig::disabled()
    };
    let checked = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &verified,
    );
    assert!(
        checked.health.corruptions_detected >= 1,
        "{:?}",
        checked.health
    );
    assert!(checked.health.epoch_rollbacks >= 1, "{:?}", checked.health);
    assert_eq!(
        checked.health.corrupt_committed, 0,
        "every epoch must re-commit clean: {:?}",
        checked.health
    );
    assert!(checked.health.tasks_verified >= 1);
    assert!(checked.health.time_verifying > SimTime::ZERO);
    assert!(checked.health.corruptions_detected <= checked.health.corruptions_injected);
    assert_eq!(
        total_items(&checked),
        8 * per_task,
        "rollback re-runs must not double-count items"
    );
    assert!(
        checked.makespan > silent.makespan,
        "verification and rollback cost simulated time"
    );

    // Identical schedule, identical replay.
    let again = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &verified,
    );
    assert_eq!(again.makespan, checked.makespan);
    assert_eq!(again.health, checked.health);
}

#[test]
fn circuit_breaker_quarantines_flaky_gpu_and_recloses_after_probe() {
    let platform = Platform::test_small();
    let per_task = 1000u64;
    // Epoch 1: 8 GPU-pinned tasks (the first three each burn a full retry
    // budget on the flaky GPU — three consecutive exhaustions trip the
    // breaker — and the rest drain to the CPU) plus 16 CPU-pinned tasks
    // that keep the barrier far enough out for the cool-down to elapse
    // first. Epoch 2: 4 GPU-pinned tasks that arrive half-open — one goes
    // through as the probe.
    let mut b = Program::builder();
    let x = b.buffer("x", 28 * per_task, 4);
    let k = b.kernel("k", balanced_profile(2500.0));
    let mut next = 0u64;
    let region = |next: &mut u64| {
        let r = Region::new(x, *next * per_task, (*next + 1) * per_task);
        *next += 1;
        r
    };
    for _ in 0..8 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(region(&mut next))],
            DeviceId(1),
        );
    }
    for _ in 0..16 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(region(&mut next))],
            DeviceId(0),
        );
    }
    b.taskwait();
    for _ in 0..4 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(region(&mut next))],
            DeviceId(1),
        );
    }
    let program = b.build();

    // The GPU is flaky (every attempt fails) for the first millisecond —
    // long enough for three 100us-per-attempt retry storms — then recovers
    // for good, well before the half-open probe dispatches at the epoch
    // barrier.
    let schedule =
        FaultSchedule::new(61).with_flaky(DeviceId(1), 1.0, SimTime::ZERO, SimTime::from_millis(1));
    let health = HealthConfig {
        breaker: Some(BreakerConfig {
            trip_after: 3,
            cooldown: SimTime::from_micros(150),
        }),
        ..HealthConfig::disabled()
    };
    let report = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &health,
    );

    assert_eq!(total_items(&report), 28 * per_task);
    assert!(report.faults.task_faults >= 3, "{:?}", report.faults);
    assert_eq!(report.health.circuit_opens, 1, "{:?}", report.health);
    assert!(report.health.probes >= 1);
    assert_eq!(
        report.health.circuit_closes, 1,
        "a clean probe after the flaky window must re-close the circuit: {:?}",
        report.health
    );
    assert_eq!(report.health.quarantine.len(), 1);
    assert_eq!(report.health.quarantine[0].dev, DeviceId(1));
    assert!(report.health.quarantine[0].until.is_some());
    assert!(
        report.faults.failovers >= 7,
        "the quarantined queue drains to the CPU: {:?}",
        report.faults
    );
    assert!(
        report.counters.devices[1].items >= per_task,
        "the re-closed GPU must be readmitted to useful work"
    );
    assert!(
        report.health.scores[1] < 1.0,
        "the flaky window leaves a scar on the EWMA score: {:?}",
        report.health.scores
    );

    // Identical schedule, identical replay.
    let again = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &health,
    );
    assert_eq!(again.makespan, report.makespan);
    assert_eq!(again.health, report.health);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism: the same seed and schedule replay a byte-identical
    /// `RunReport` — makespan, counters, fault counters, everything.
    #[test]
    fn same_seed_replays_byte_identical_reports(seed in 0u64..1_000) {
        let platform = Platform::test_small();
        let program = sp_single_program(&platform, 1 << 14);
        let schedule = FaultSchedule::new(seed)
            .with_task_faults(None, 0.3, SimTime::ZERO, SimTime::MAX)
            .with_transfer_faults(0.3, SimTime::ZERO, SimTime::MAX)
            .with_throttle(
                DeviceId(1),
                SimTime::ZERO,
                SimTime::from_millis(1),
                1.0,
                4.0,
            );
        let a = simulate_faulty(
            &program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
        );
        let b = simulate_faulty(
            &program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
        );
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        prop_assert_eq!(total_items(&a), 1 << 14);
    }

    /// Any valid gray-failure schedule terminates under full monitoring
    /// with every item processed, never reports more detected corruptions
    /// than were injected, and replays byte-identical reports *and traces*
    /// from the same seed.
    #[test]
    fn gray_schedules_terminate_and_replay_byte_identical(
        seed in 0u64..1_000,
        corrupt_prob in 0.0f64..=1.0,
        flaky_prob in 0.0f64..=0.8,
        end_factor in 1.0f64..8.0,
        until_us in 1u64..2_000,
    ) {
        let platform = Platform::test_small();
        let program = sp_single_program(&platform, 1 << 14);
        let until = SimTime::from_micros(until_us);
        let schedule = FaultSchedule::new(seed)
            .with_throttle(DeviceId(1), SimTime::ZERO, until, 1.0, end_factor)
            .with_flaky(DeviceId(1), flaky_prob, SimTime::ZERO, until)
            .with_silent_corruption(DeviceId(1), corrupt_prob, SimTime::ZERO, until);
        prop_assert!(schedule.validate().is_ok());
        let health = HealthConfig::monitored();
        let (a, ta) = simulate_resilient_traced(
            &program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
            &health,
        );
        prop_assert_eq!(total_items(&a), 1 << 14);
        prop_assert!(a.makespan > SimTime::ZERO);
        prop_assert!(a.health.corruptions_detected <= a.health.corruptions_injected);
        let (b, tb) = simulate_resilient_traced(
            &program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
            &health,
        );
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&ta).unwrap(),
            serde_json::to_string(&tb).unwrap()
        );
    }
}

/// A device that dies *while quarantined* must not confuse the breaker:
/// the circuit stays open (no reclose, no healing readmission), the run
/// still completes every item on the survivors, and the open quarantine
/// span is closed at the makespan.
#[test]
fn death_while_quarantined_keeps_circuit_open() {
    use hetero_match::runtime::{simulate_repairing, AdaptConfig, ReplanConfig};
    let platform = Platform::test_small();
    let per_task = 1000u64;
    // Same shape as the breaker-reclose test: epoch 1 trips the breaker
    // with three consecutive retry exhaustions on the flaky GPU; epoch 2
    // arrives while the device is quarantined.
    let mut b = Program::builder();
    let x = b.buffer("x", 28 * per_task, 4);
    let k = b.kernel("k", balanced_profile(2500.0));
    let mut next = 0u64;
    let region = |next: &mut u64| {
        let r = Region::new(x, *next * per_task, (*next + 1) * per_task);
        *next += 1;
        r
    };
    for _ in 0..8 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(region(&mut next))],
            DeviceId(1),
        );
    }
    for _ in 0..16 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(region(&mut next))],
            DeviceId(0),
        );
    }
    b.taskwait();
    for _ in 0..4 {
        b.submit_pinned(
            k,
            per_task,
            vec![Access::read_write(region(&mut next))],
            DeviceId(1),
        );
    }
    let program = b.build();

    // Flaky for the first millisecond — two ~330us retry storms trip the
    // breaker around 660us — then the quarantined device dies outright at
    // 800us. The cool-down is far longer than the run: without the dropout
    // the circuit would stay half-open-pending; with it there is nothing
    // left to probe.
    let schedule = FaultSchedule::new(61)
        .with_flaky(DeviceId(1), 1.0, SimTime::ZERO, SimTime::from_millis(1))
        .with_dropout(DeviceId(1), SimTime::from_micros(800));
    let health = HealthConfig {
        breaker: Some(BreakerConfig {
            trip_after: 2,
            cooldown: SimTime::from_millis(50),
        }),
        ..HealthConfig::disabled()
    };
    let report = simulate_repairing(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &health,
        &AdaptConfig::disabled(),
        None,
        &ReplanConfig::enabled_default(),
    );

    assert_eq!(total_items(&report), 28 * per_task);
    assert_eq!(report.health.circuit_opens, 1, "{:?}", report.health);
    assert_eq!(
        report.health.circuit_closes, 0,
        "death during quarantine must not reclose the circuit: {:?}",
        report.health
    );
    assert_eq!(
        report.adapt.readmissions, 0,
        "no healing re-plan may readmit a dead device: {:?}",
        report.adapt
    );
    assert_eq!(report.health.quarantine.len(), 1);
    let span = &report.health.quarantine[0];
    assert_eq!(span.dev, DeviceId(1));
    assert!(
        span.from <= SimTime::from_micros(800),
        "the breaker tripped before the dropout: {span:?}"
    );
    assert_eq!(
        span.until,
        Some(report.makespan),
        "an open quarantine closes at run end: {span:?}"
    );
    assert_eq!(
        report.counters.devices[1].items, 0,
        "nothing may commit on the dead quarantined device"
    );

    // Identical schedule, identical replay.
    let again = simulate_repairing(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &health,
        &AdaptConfig::disabled(),
        None,
        &ReplanConfig::enabled_default(),
    );
    assert_eq!(again.makespan, report.makespan);
    assert_eq!(again.health, report.health);
    assert_eq!(again.adapt, report.adapt);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With plan repair active, no task is ever dispatched to a dead
    /// device, and dispatches to a quarantined (Open-breaker) device are
    /// at most the breaker's own half-open probes — across random
    /// dropout-plus-flaky schedules on the three-device preset.
    #[test]
    fn repair_never_dispatches_to_dead_or_quarantined(
        seed in 0u64..10_000,
        drop_us in 20u64..400,
        flaky_prob in 0.0f64..=1.0,
        drop_dev in 1usize..=2,
    ) {
        use hetero_match::runtime::{simulate_repairing_traced, AdaptConfig, ReplanConfig};
        let platform = Platform::icpp15_with_phi();
        let desc = compute_app(1 << 16);
        let planner = Planner::new(&platform);
        let config = ExecutionConfig::Strategy(Strategy::SpSingle);
        let plan = planner.plan(&desc, config);
        let flaky_dev = if drop_dev == 1 { 2 } else { 1 };
        let schedule = FaultSchedule::new(seed)
            .with_dropout(DeviceId(drop_dev), SimTime::from_micros(drop_us))
            .with_flaky(
                DeviceId(flaky_dev),
                flaky_prob,
                SimTime::ZERO,
                SimTime::from_micros(300),
            );
        let health = HealthConfig {
            breaker: Some(BreakerConfig {
                trip_after: 2,
                cooldown: SimTime::from_micros(100),
            }),
            ..HealthConfig::disabled()
        };
        let (report, trace) = simulate_repairing_traced(
            &plan.program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            RetryPolicy::default(),
            &health,
            &AdaptConfig::disabled(),
            planner.adapt_plan(&desc, config),
            &ReplanConfig::enabled_default(),
        );
        let ndev = platform.devices.len();
        let mut death: Vec<Option<SimTime>> = vec![None; ndev];
        let mut open_at: Vec<Option<SimTime>> = vec![None; ndev];
        let mut windows: Vec<(usize, SimTime, SimTime)> = Vec::new();
        let mut dispatches: Vec<(usize, SimTime)> = Vec::new();
        for ev in &trace.events {
            match ev {
                TraceEvent::DeviceDropout { dev, at } => death[dev.0] = Some(*at),
                TraceEvent::CircuitOpen { dev, at } => open_at[dev.0] = Some(*at),
                TraceEvent::CircuitClose { dev, at } => {
                    if let Some(from) = open_at[dev.0].take() {
                        windows.push((dev.0, from, *at));
                    }
                }
                TraceEvent::Task { dev, start, .. } => dispatches.push((dev.0, *start)),
                _ => {}
            }
        }
        for (d, from) in open_at.iter().enumerate() {
            if let Some(from) = from {
                windows.push((d, *from, SimTime::MAX));
            }
        }
        for &(d, start) in &dispatches {
            if let Some(at) = death[d] {
                prop_assert!(
                    start <= at,
                    "task dispatched to device {d} at {start} after its death at {at}"
                );
            }
        }
        let quarantined_dispatches = dispatches
            .iter()
            .filter(|&&(d, start)| {
                windows
                    .iter()
                    .any(|&(wd, from, until)| wd == d && from < start && start < until)
            })
            .count() as u64;
        prop_assert!(
            quarantined_dispatches <= report.health.probes,
            "{quarantined_dispatches} dispatches inside quarantine windows, \
             but only {} half-open probes",
            report.health.probes
        );
        prop_assert_eq!(total_items(&report), 1 << 16);
    }
}
