//! End-to-end tests of the scenario-fuzzing harness: clean campaigns,
//! deterministic summaries, planted invariant breaks caught and shrunk to
//! small reproducers, and shrinker soundness under proptest.

use std::fs;
use std::path::PathBuf;

use hetero_match::matchmaker::{
    fuzz_campaign, load_corpus, run_oracles, run_seed, shrink, Analyzer, FuzzConfig, InjectedBreak,
    OracleKind, Scenario,
};
use proptest::prelude::*;

/// A private scratch directory under the system temp dir, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("hetero-fuzz-test-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

#[test]
fn small_campaign_is_clean_and_summary_deterministic() {
    let cfg = FuzzConfig::new(8, 0xC0FFEE);
    let a = fuzz_campaign(&cfg);
    let b = fuzz_campaign(&cfg);
    assert!(
        a.failures.is_empty(),
        "clean seeds must produce no failures:\n{}",
        a.summary()
    );
    assert_eq!(a.summary(), b.summary(), "summary must be byte-identical");
    // Every oracle family was exercised at least once over 8 seeds.
    assert!(a.checks.contains_key("differential"));
    assert!(a.checks.contains_key("blame-identity"));
    assert!(a.checks.contains_key("double-run-determinism"));
    assert!(a.checks.contains_key("replay-determinism"));
    assert!(a.checks.contains_key("crash-resume-equivalence"));
}

#[test]
fn fuzz_one_matches_campaign_verdict() {
    for seed in [1u64, 2, 3] {
        let outcome = Analyzer::fuzz_one(seed);
        assert!(
            outcome.violations.is_empty(),
            "seed {seed} violated: {:?}",
            outcome.violations
        );
        assert!(outcome.scenario.is_valid());
    }
}

#[test]
fn planted_blame_break_is_caught_shrunk_and_archived() {
    let scratch = ScratchDir::new("blame");
    let cfg = FuzzConfig {
        shrink: true,
        corpus: Some(scratch.0.clone()),
        inject: InjectedBreak {
            skip_blame_component: true,
            ..InjectedBreak::NONE
        },
        max_failures: 1,
        ..FuzzConfig::new(10, 0xC0FFEE)
    };
    let report = fuzz_campaign(&cfg);
    let f = report
        .failures
        .first()
        .expect("planted blame break must be caught");
    assert_eq!(f.oracle, OracleKind::BlameIdentity);
    // The ISSUE acceptance bound: a <=5-task, <=2-device reproducer.
    assert!(f.tasks <= 5, "want <=5 tasks, got {}", f.tasks);
    assert!(f.devices <= 2, "want <=2 devices, got {}", f.devices);
    // The archived reproducer loads back and still fails the same oracle.
    let corpus = load_corpus(&scratch.0);
    assert_eq!(corpus.len(), 1);
    let (_, entry) = &corpus[0];
    assert_eq!(entry.oracle, Some(OracleKind::BlameIdentity));
    assert!(entry.scenario.is_valid());
    assert!(run_oracles(&entry.scenario, &cfg.inject)
        .iter()
        .any(|v| v.oracle == OracleKind::BlameIdentity));
    // And without the injection the reproducer is clean.
    assert!(run_oracles(&entry.scenario, &InjectedBreak::NONE).is_empty());
}

#[test]
fn planted_nondeterminism_is_caught() {
    let inject = InjectedBreak {
        break_double_run: true,
        ..InjectedBreak::NONE
    };
    let outcome = run_seed(5, &inject);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.oracle == OracleKind::DoubleRunDeterminism),
        "planted double-run break must be caught: {:?}",
        outcome.violations
    );
}

#[test]
fn planted_resume_divergence_is_caught() {
    let inject = InjectedBreak {
        break_resume: true,
        ..InjectedBreak::NONE
    };
    let outcome = run_seed(5, &inject);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.oracle == OracleKind::CrashResumeEquivalence),
        "planted resume break must be caught: {:?}",
        outcome.violations
    );
}

#[test]
fn planted_stream_fold_break_is_caught() {
    let inject = InjectedBreak {
        break_stream_fold: true,
        ..InjectedBreak::NONE
    };
    let outcome = run_seed(5, &inject);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.oracle == OracleKind::StreamFoldEquivalence),
        "planted stream-fold break must be caught: {:?}",
        outcome.violations
    );
}

#[test]
fn planted_service_drop_is_caught() {
    let inject = InjectedBreak {
        break_service: true,
        ..InjectedBreak::NONE
    };
    let outcome = run_seed(5, &inject);
    assert!(
        outcome
            .violations
            .iter()
            .any(|v| v.oracle == OracleKind::ShedOrServe),
        "planted service drop must be caught: {:?}",
        outcome.violations
    );
    // And the clean bank holds shed-or-serve on the same scenario.
    assert!(run_seed(5, &InjectedBreak::NONE).violations.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shrinker soundness: for any seed and any planted break the shrunk
    /// scenario is still valid, still fails the *same* oracle, and is no
    /// larger than the original along every shrink axis.
    #[test]
    fn shrinker_preserves_failure_and_never_grows(
        seed in 0u64..1_000,
        break_blame in any::<bool>(),
    ) {
        let inject = InjectedBreak {
            skip_blame_component: break_blame,
            break_double_run: !break_blame,
            ..InjectedBreak::NONE
        };
        let scenario = Scenario::generate(seed);
        let target = if break_blame {
            OracleKind::BlameIdentity
        } else {
            OracleKind::DoubleRunDeterminism
        };
        let before = run_oracles(&scenario, &inject);
        if !before.iter().any(|v| v.oracle == target) {
            // Not every scenario trips every planted break (e.g. a config
            // that never reaches the broken component) — nothing to shrink.
            return Ok(());
        }
        let (shrunk, _) = shrink(&scenario, target, 200, &|s| run_oracles(s, &inject));
        prop_assert!(shrunk.is_valid());
        prop_assert!(run_oracles(&shrunk, &inject).iter().any(|v| v.oracle == target));
        prop_assert!(shrunk.descriptor.kernels.len() <= scenario.descriptor.kernels.len());
        prop_assert!(shrunk.platform.device_count() <= scenario.platform.device_count());
        prop_assert!(shrunk.schedule.events.len() <= scenario.schedule.events.len());
        prop_assert!(shrunk.task_count() <= scenario.task_count());
    }
}
