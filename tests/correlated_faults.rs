//! Correlated fault domains, link degradation, and disturbance-aware
//! de-escalation: the PR-5 invariants.
//!
//! - a recorded [`FaultTrace`] replays the run byte-identically with
//!   conditional triggering disabled, over arbitrary seeds and trigger
//!   probabilities;
//! - the blame identity (`compute + transfer + link_degraded + … ==
//!   makespan × slots`) survives arbitrary `LinkDegrade` windows, and a
//!   degraded link never makes a pinned plan faster;
//! - de-escalation never loses to staying escalated (the no-regression
//!   guard), and an open disturbance window blocks reinstatement.

use hetero_match::apps::synth;
use hetero_match::matchmaker::{Analyzer, ExecutionConfig, ExecutionFlow, Strategy};
use hetero_match::platform::{DeviceId, FaultSchedule, FaultTrace, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{AdaptConfig, HealthConfig, TraceEvent, TraceObserver};
use proptest::prelude::*;

const GPU: DeviceId = DeviceId(1);

/// A transfer-carrying loop app: SP-Single emits one pinned GPU chunk and a
/// CPU tail per epoch, so both sides fault, transfer, and show up in blame.
fn loop_app(name: &str, iterations: u32) -> hetero_match::matchmaker::AppDescriptor {
    synth::single_kernel(
        name,
        1 << 18,
        8192.0,
        ExecutionFlow::Loop { iterations },
        true,
    )
}

/// The stale-profile planning disturbance of the de-escalation scenario:
/// the planner sees the GPU at `factor` of its real speed, drowns the CPU
/// tail, and the plan escalates once re-solves are exhausted.
fn stale_profile(factor: f64) -> FaultSchedule {
    FaultSchedule::new(42).with_profile_perturb(GPU, factor, SimTime::ZERO, SimTime::MAX)
}

fn stay_escalated() -> AdaptConfig {
    AdaptConfig {
        repartition: false,
        max_resolves: 1,
        reinstate_after: 0,
        ..AdaptConfig::enabled_default()
    }
}

fn reinstate_after(calm: u32) -> AdaptConfig {
    AdaptConfig {
        reinstate_after: calm,
        ..stay_escalated()
    }
}

#[test]
fn deescalation_runs_the_full_lifecycle_and_is_visible_in_the_trace() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = loop_app("lifecycle", 10);
    let sp = ExecutionConfig::Strategy(Strategy::SpSingle);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();
    // A real fault window that has *closed* by escalation time rides along
    // with the stale profile: reinstatement must wait for calm, not for a
    // fault-free schedule.
    let schedule = stale_profile(0.02).with_task_faults(
        Some(GPU),
        0.2,
        SimTime::ZERO,
        SimTime::from_millis(5),
    );

    let mut tobs = TraceObserver::new();
    let report = analyzer.simulate_adaptive_observed(
        &desc,
        sp,
        &schedule,
        policy,
        &health,
        &reinstate_after(2),
        &mut tobs,
    );
    let escalated_at = report.adapt.escalated_at_epoch.expect("must escalate");
    let reinstated_at = report.adapt.reinstated_at_epoch.expect("must reinstate");
    assert!(report.adapt.escalated && report.adapt.reinstated);
    assert!(reinstated_at > escalated_at);
    assert!(report.breakdown.identity_holds());

    // Both transitions appear in the trace, in order.
    let mut saw_escalate = None;
    let mut saw_reinstate = None;
    for e in &tobs.trace().events {
        match e {
            TraceEvent::StrategyEscalated { epoch, .. } => saw_escalate = Some(*epoch),
            TraceEvent::StrategyReinstated { epoch, .. } => saw_reinstate = Some(*epoch),
            _ => {}
        }
    }
    assert_eq!(saw_escalate, Some(escalated_at));
    assert_eq!(saw_reinstate, Some(reinstated_at));
}

#[test]
fn open_disturbance_window_blocks_reinstatement() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = loop_app("blocked", 10);
    let sp = ExecutionConfig::Strategy(Strategy::SpSingle);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();
    // Identical stale profile, but the fault window never closes: however
    // calm the skew runs, the platform is not quiet, so the controller
    // must stay escalated to the end.
    let schedule =
        stale_profile(0.02).with_task_faults(Some(GPU), 0.01, SimTime::ZERO, SimTime::MAX);

    let report =
        analyzer.simulate_adaptive(&desc, sp, &schedule, policy, &health, &reinstate_after(2));
    assert!(report.adapt.escalated, "the stale plan must still escalate");
    assert!(
        !report.adapt.reinstated && report.adapt.reinstated_at_epoch.is_none(),
        "an open fault window must block reinstatement"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Recording a correlated run and replaying its trace — triggers baked
    /// in as ordinary windowed events, conditional triggering disabled —
    /// reproduces the run byte-identically, and the JSON form re-renders
    /// to identical bytes.
    #[test]
    fn correlated_schedules_replay_deterministically(
        seed in 0u64..500,
        fault_prob in 0.05f64..0.5,
        trigger_prob in 0.3f64..1.0,
        window_ms in 1u64..10,
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let desc = loop_app("replay", 3);
        let config = ExecutionConfig::Strategy(Strategy::SpSingle);
        let policy = RetryPolicy::default();
        let schedule = FaultSchedule::new(seed)
            .with_task_faults(Some(GPU), fault_prob, SimTime::ZERO, SimTime::from_millis(20))
            .with_domain(
                "switch",
                vec![DeviceId(0), GPU],
                trigger_prob,
                0.5,
                SimTime::from_millis(window_ms),
            );

        let (recorded, trace) = analyzer.record_fault_trace(&desc, config, &schedule, policy);
        prop_assert_eq!(
            trace.synthesized.len() as u64,
            recorded.faults.correlated_triggers
        );

        let json = trace.to_json();
        let parsed = FaultTrace::from_json(&json).unwrap();
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.to_json(), json);

        let replayed =
            analyzer.simulate_faulty(&desc, config, &parsed.replay_schedule(), policy);
        prop_assert_eq!(replayed.makespan, recorded.makespan);
        prop_assert_eq!(replayed.breakdown, recorded.breakdown);
        prop_assert_eq!(replayed.faults.task_faults, recorded.faults.task_faults);
        prop_assert_eq!(replayed.faults.failovers, recorded.faults.failovers);
        prop_assert_eq!(replayed.faults.correlated_triggers, 0);
    }

    /// The blame identity holds under arbitrary `LinkDegrade` windows, the
    /// degradation shows up in the `link_degraded` component, and a
    /// degraded link never makes the pinned plan faster.
    #[test]
    fn blame_identity_holds_under_link_degradation(
        bw_factor in 0.05f64..0.9,
        lat_factor in 1.0f64..8.0,
        until_ms in prop_oneof![Just(u64::MAX), 1u64..50],
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let desc = loop_app("degraded-link", 4);
        let config = ExecutionConfig::Strategy(Strategy::SpSingle);
        let policy = RetryPolicy::default();
        let until = if until_ms == u64::MAX {
            SimTime::MAX
        } else {
            SimTime::from_millis(until_ms)
        };
        let schedule = FaultSchedule::new(5)
            .with_link_degrade(GPU, bw_factor, lat_factor, SimTime::ZERO, until);

        let healthy = analyzer.simulate_faulty(&desc, config, &FaultSchedule::new(5), policy);
        let degraded = analyzer.simulate_faulty(&desc, config, &schedule, policy);

        prop_assert!(degraded.breakdown.identity_holds());
        prop_assert!(degraded.makespan >= healthy.makespan);
        let slowdown: SimTime = degraded
            .breakdown
            .per_device
            .iter()
            .map(|b| b.link_degraded)
            .sum();
        prop_assert!(
            slowdown > SimTime::ZERO,
            "a window open at t=0 must charge link_degraded time"
        );
        // The healthy run's wire is nominal: nothing to blame on the link.
        let nominal: SimTime = healthy
            .breakdown
            .per_device
            .iter()
            .map(|b| b.link_degraded)
            .sum();
        prop_assert_eq!(nominal, SimTime::ZERO);
    }

    /// The reinstatement no-regression guard: handing the remaining epochs
    /// back to the static plan never loses to staying escalated, for any
    /// misprediction severity — including ones where calm is never reached
    /// and the two runs coincide.
    #[test]
    fn deescalation_never_loses_to_staying_escalated(
        factor in 0.02f64..0.5,
        calm in 1u32..4,
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let desc = loop_app("no-regression", 10);
        let sp = ExecutionConfig::Strategy(Strategy::SpSingle);
        let policy = RetryPolicy::default();
        let health = HealthConfig::disabled();
        let schedule = stale_profile(factor);

        let stayed =
            analyzer.simulate_adaptive(&desc, sp, &schedule, policy, &health, &stay_escalated());
        let deescalated = analyzer.simulate_adaptive(
            &desc,
            sp,
            &schedule,
            policy,
            &health,
            &reinstate_after(calm),
        );

        prop_assert!(
            deescalated.makespan <= stayed.makespan,
            "reinstating ({}) must not lose to staying escalated ({})",
            deescalated.makespan,
            stayed.makespan
        );
        if deescalated.adapt.reinstated {
            let esc = deescalated.adapt.escalated_at_epoch.unwrap();
            let rei = deescalated.adapt.reinstated_at_epoch.unwrap();
            prop_assert!(rei > esc);
        } else {
            // No reinstatement → the two configurations ran identically.
            prop_assert_eq!(deescalated.makespan, stayed.makespan);
        }
        prop_assert!(deescalated.breakdown.identity_holds());
    }
}
