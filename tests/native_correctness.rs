//! Semantic validation: every partitioning strategy computes the same
//! result as an unpartitioned sequential run, for every application, at
//! reduced problem sizes. This proves the planner's region arithmetic, the
//! dependence analysis, and the taskwait semantics preserve program
//! meaning — partitioning must never change the answer.

use hetero_match::apps::native_outputs;
use hetero_match::apps::{blackscholes, hotspot, matrixmul, nbody, stream};
use hetero_match::matchmaker::{AppDescriptor, ExecutionConfig, Planner, Strategy};
use hetero_match::platform::Platform;
use hetero_match::runtime::{ExecOrder, HostBuffers, KernelFn};

/// All configurations applicable to a descriptor.
fn configs_for(desc: &AppDescriptor) -> Vec<ExecutionConfig> {
    let class = hetero_match::matchmaker::classify(desc);
    let mut out = vec![ExecutionConfig::OnlyCpu, ExecutionConfig::OnlyGpu];
    out.extend(
        Strategy::ALL
            .iter()
            .filter(|s| s.applicable(class))
            .map(|&s| ExecutionConfig::Strategy(s)),
    );
    out.push(ExecutionConfig::ConvertedStatic);
    out
}

/// Run every configuration in both execution orders and assert all buffer
/// snapshots are identical to the Only-GPU (single whole-domain instance)
/// reference.
fn assert_all_configs_match(
    desc: &AppDescriptor,
    kernels: &[KernelFn<'_>],
    init: impl Fn(&HostBuffers) + Copy,
) {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let reference = native_outputs(
        desc,
        kernels,
        init,
        &planner,
        ExecutionConfig::OnlyGpu,
        ExecOrder::Submission,
    );
    for config in configs_for(desc) {
        for order in [ExecOrder::Submission, ExecOrder::ReadyLifo] {
            let outputs = native_outputs(desc, kernels, init, &planner, config, order);
            for (b, (got, want)) in outputs.iter().zip(&reference).enumerate() {
                assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(want).enumerate() {
                    assert!(
                        (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                        "{} under {config} ({order:?}): buffer {b} item {i}: {g} vs {w}",
                        desc.name
                    );
                }
            }
        }
    }
}

#[test]
fn matrixmul_partitionings_agree() {
    let n = 96u64;
    let desc = matrixmul::descriptor(n);
    let kernels = matrixmul::host_kernels(n);
    assert_all_configs_match(&desc, &kernels, |hb| matrixmul::init(hb, n));
}

#[test]
fn matrixmul_native_matches_parallel_reference() {
    let n = 64u64;
    let desc = matrixmul::descriptor(n);
    let kernels = matrixmul::host_kernels(n);
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let outputs = native_outputs(
        &desc,
        &kernels,
        |hb| matrixmul::init(hb, n),
        &planner,
        ExecutionConfig::Strategy(Strategy::SpSingle),
        ExecOrder::Submission,
    );
    // Independent reference from the raw arrays.
    let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    matrixmul::init(&hb, n);
    let a = hb.snapshot(hetero_match::runtime::BufferId(matrixmul::BUF_A));
    let b = hb.snapshot(hetero_match::runtime::BufferId(matrixmul::BUF_B));
    let want = matrixmul::reference(&a, &b, n as usize);
    assert_eq!(outputs[matrixmul::BUF_C], want);
}

#[test]
fn blackscholes_partitionings_agree() {
    let n = 10_000u64;
    let desc = blackscholes::descriptor(n);
    let kernels = blackscholes::host_kernels();
    assert_all_configs_match(&desc, &kernels, |hb| blackscholes::init(hb, n));
}

#[test]
fn blackscholes_native_matches_reference_pricing() {
    let n = 5_000u64;
    let desc = blackscholes::descriptor(n);
    let kernels = blackscholes::host_kernels();
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let outputs = native_outputs(
        &desc,
        &kernels,
        |hb| blackscholes::init(hb, n),
        &planner,
        ExecutionConfig::Strategy(Strategy::DpPerf),
        ExecOrder::ReadyLifo,
    );
    let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    blackscholes::init(&hb, n);
    let input = hb.snapshot(hetero_match::runtime::BufferId(blackscholes::BUF_IN));
    let want = blackscholes::reference(&input, n as usize);
    assert_eq!(outputs[blackscholes::BUF_OUT], want);
}

#[test]
fn nbody_partitionings_agree() {
    let n = 256u64;
    let interactions = 32u64;
    let desc = nbody::descriptor(n, interactions, 3);
    let kernels = nbody::host_kernels(n, interactions);
    assert_all_configs_match(&desc, &kernels, |hb| nbody::init(hb, n));
}

#[test]
fn hotspot_partitionings_agree() {
    let n = 64u64;
    let desc = hotspot::descriptor(n, 3);
    let kernels = hotspot::host_kernels(n);
    assert_all_configs_match(&desc, &kernels, |hb| hotspot::init(hb, n));
}

#[test]
fn hotspot_native_matches_reference_step() {
    let n = 48u64;
    let desc = hotspot::descriptor(n, 1);
    let kernels = hotspot::host_kernels(n);
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let outputs = native_outputs(
        &desc,
        &kernels,
        |hb| hotspot::init(hb, n),
        &planner,
        ExecutionConfig::Strategy(Strategy::SpSingle),
        ExecOrder::Submission,
    );
    let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    hotspot::init(&hb, n);
    let t = hb.snapshot(hetero_match::runtime::BufferId(hotspot::BUF_TEMP_IN));
    let p = hb.snapshot(hetero_match::runtime::BufferId(hotspot::BUF_POWER));
    let want = hotspot::reference_step(&t, &p, n as usize);
    assert_eq!(outputs[hotspot::BUF_TEMP_OUT], want);
}

#[test]
fn stream_seq_partitionings_agree() {
    for sync in [false, true] {
        let n = 20_000u64;
        let desc = stream::descriptor(n, None, sync);
        let kernels = stream::host_kernels();
        assert_all_configs_match(&desc, &kernels, |hb| stream::init(hb, n));
    }
}

#[test]
fn stream_loop_matches_closed_form_under_every_strategy() {
    let n = 4_096u64;
    let iters = 3u32;
    let desc = stream::descriptor(n, Some(iters), true);
    let kernels = stream::host_kernels();
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    for config in configs_for(&desc) {
        let outputs = native_outputs(
            &desc,
            &kernels,
            |hb| stream::init(hb, n),
            &planner,
            config,
            ExecOrder::Submission,
        );
        let a = &outputs[stream::BUF_A];
        for i in (0..n as usize).step_by(131) {
            let a0 = 1.0 + (i % 100) as f32 * 0.01;
            let want = stream::expected_a(a0, iters);
            assert!(
                (a[i] - want).abs() / want.abs() < 1e-5,
                "{config}: a[{i}] = {} vs {want}",
                a[i]
            );
        }
    }
}

#[test]
fn trisolve_partitionings_agree() {
    use hetero_match::apps::trisolve;
    let n = 96u64;
    let desc = trisolve::descriptor(n);
    let kernels = trisolve::host_kernels(n);
    assert_all_configs_match(&desc, &kernels, |hb| trisolve::init(hb, n));
}

#[test]
fn trisolve_native_matches_reference() {
    use hetero_match::apps::trisolve;
    let n = 64u64;
    let desc = trisolve::descriptor(n);
    let kernels = trisolve::host_kernels(n);
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let outputs = native_outputs(
        &desc,
        &kernels,
        |hb| trisolve::init(hb, n),
        &planner,
        ExecutionConfig::Strategy(Strategy::SpSingle),
        ExecOrder::Submission,
    );
    let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
    let hb = HostBuffers::for_program(&plan.program);
    trisolve::init(&hb, n);
    let l = hb.snapshot(hetero_match::runtime::BufferId(trisolve::BUF_L));
    let x = hb.snapshot(hetero_match::runtime::BufferId(trisolve::BUF_X));
    let want = trisolve::reference(&l, &x, n as usize);
    assert_eq!(outputs[trisolve::BUF_OUT], want);
}

#[test]
fn binomial_partitionings_agree() {
    use hetero_match::apps::binomial;
    let n = 512u64;
    let spread = 96;
    let desc = binomial::descriptor(n, spread);
    let kernels = binomial::host_kernels(n, spread);
    assert_all_configs_match(&desc, &kernels, |hb| binomial::init(hb, n));
}

#[test]
fn parallel_native_runner_agrees_on_real_apps() {
    // The multi-threaded native runner must produce bit-identical results
    // to the sequential one, across apps and strategies.
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);

    // STREAM under SP-Varied (multi-kernel, taskwaits, chains).
    {
        let n = 8_000u64;
        let desc = stream::descriptor(n, Some(2), true);
        let kernels = stream::host_kernels();
        let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpVaried));
        let seq = {
            let hb = HostBuffers::for_program(&plan.program);
            stream::init(&hb, n);
            hetero_match::runtime::run_native(&plan.program, &kernels, &hb, ExecOrder::Submission);
            hb.snapshot(hetero_match::runtime::BufferId(stream::BUF_A))
        };
        let par = {
            let hb = HostBuffers::for_program(&plan.program);
            stream::init(&hb, n);
            hetero_match::runtime::run_native_parallel(&plan.program, &kernels, &hb, 6);
            hb.snapshot(hetero_match::runtime::BufferId(stream::BUF_A))
        };
        assert_eq!(seq, par);
    }

    // MatrixMul under DP-Perf (single kernel, many instances).
    {
        let n = 64u64;
        let desc = matrixmul::descriptor(n);
        let kernels = matrixmul::host_kernels(n);
        let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::DpPerf));
        let seq = {
            let hb = HostBuffers::for_program(&plan.program);
            matrixmul::init(&hb, n);
            hetero_match::runtime::run_native(&plan.program, &kernels, &hb, ExecOrder::Submission);
            hb.snapshot(hetero_match::runtime::BufferId(matrixmul::BUF_C))
        };
        let par = {
            let hb = HostBuffers::for_program(&plan.program);
            matrixmul::init(&hb, n);
            hetero_match::runtime::run_native_parallel(&plan.program, &kernels, &hb, 8);
            hb.snapshot(hetero_match::runtime::BufferId(matrixmul::BUF_C))
        };
        assert_eq!(seq, par);
    }

    // HotSpot under SP-Single (halo reads across partition boundaries).
    {
        let n = 64u64;
        let desc = hotspot::descriptor(n, 3);
        let kernels = hotspot::host_kernels(n);
        let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
        let seq = {
            let hb = HostBuffers::for_program(&plan.program);
            hotspot::init(&hb, n);
            hetero_match::runtime::run_native(&plan.program, &kernels, &hb, ExecOrder::Submission);
            hb.snapshot(hetero_match::runtime::BufferId(hotspot::BUF_TEMP_OUT))
        };
        let par = {
            let hb = HostBuffers::for_program(&plan.program);
            hotspot::init(&hb, n);
            hetero_match::runtime::run_native_parallel(&plan.program, &kernels, &hb, 4);
            hb.snapshot(hetero_match::runtime::BufferId(hotspot::BUF_TEMP_OUT))
        };
        assert_eq!(seq, par);
    }
}
