//! End-to-end matchmaking: the analyzer pipeline (classify → rank → select
//! → plan → execute) on all eight paper application variants, checked
//! against the paper's stated results.

use hetero_match::apps::{blackscholes, hotspot, matrixmul, nbody, stream};
use hetero_match::matchmaker::{Analyzer, AppClass, Strategy};
use hetero_match::platform::Platform;

#[test]
fn analyzer_selects_the_papers_best_strategy_per_app() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let cases = [
        (
            matrixmul::paper_descriptor(),
            AppClass::SkOne,
            Strategy::SpSingle,
        ),
        (
            blackscholes::paper_descriptor(),
            AppClass::SkOne,
            Strategy::SpSingle,
        ),
        (
            nbody::paper_descriptor(),
            AppClass::SkLoop,
            Strategy::SpSingle,
        ),
        (
            hotspot::paper_descriptor(),
            AppClass::SkLoop,
            Strategy::SpSingle,
        ),
        (
            stream::paper_seq(false),
            AppClass::MkSeq,
            Strategy::SpUnified,
        ),
        (stream::paper_seq(true), AppClass::MkSeq, Strategy::SpVaried),
        (
            stream::paper_loop(false),
            AppClass::MkLoop,
            Strategy::SpUnified,
        ),
        (
            stream::paper_loop(true),
            AppClass::MkLoop,
            Strategy::SpVaried,
        ),
    ];
    for (desc, class, best) in cases {
        let analysis = analyzer.analyze(&desc);
        assert_eq!(analysis.class, class, "{}", desc.name);
        assert_eq!(analysis.best, best, "{}", desc.name);
    }
}

#[test]
fn best_strategy_beats_both_baselines_everywhere() {
    // The premise of Figure 12: co-execution with the matched strategy is
    // at least as fast as the better single device, for every application.
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    for run in &runs {
        let og = run.get("Only-GPU").unwrap().time_ms;
        let oc = run.get("Only-CPU").unwrap().time_ms;
        let best = run.best_strategy();
        assert!(
            best.time_ms <= og.min(oc) * 1.001,
            "{}: best {} = {:.1} ms vs OG {:.1} / OC {:.1}",
            run.app,
            best.config,
            best.time_ms,
            og,
            oc
        );
    }
}

#[test]
fn analyzer_choice_is_empirically_fastest_strategy() {
    // The matchmaking claim itself: the Table-I-selected strategy is the
    // fastest of the suitable strategies (within the tie tolerance used in
    // the paper's own comparisons).
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    for run in &runs {
        let selected = run.get(&run.ranking[0]).unwrap();
        let fastest = run.best_strategy();
        assert!(
            selected.time_ms <= fastest.time_ms * 1.02,
            "{}: selected {} ({:.1} ms) vs fastest {} ({:.1} ms)",
            run.app,
            selected.config,
            selected.time_ms,
            fastest.config,
            fastest.time_ms
        );
    }
}

#[test]
fn table_i_empirical_ranking_has_no_violations() {
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    let checks = bench::validate_rankings(&runs);
    let violations: Vec<_> = checks
        .iter()
        .filter(|c| c.outcome == bench::validation::PairOutcome::Violation)
        .collect();
    assert!(violations.is_empty(), "violations: {violations:#?}");
    // And the two documented deviations are present, no more.
    let deviations = checks
        .iter()
        .filter(|c| c.outcome == bench::validation::PairOutcome::Deviation)
        .count();
    assert!(deviations <= 2, "unexpected extra deviations");
}

#[test]
fn headline_speedups_match_paper_magnitudes() {
    // Paper: average 3.0x vs Only-GPU and 5.3x vs Only-CPU. The simulated
    // platform reproduces the shape; assert the averages fall in the same
    // band (2x-4.5x and 3.5x-8x).
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    let (rows, avg_og, avg_oc) = bench::fig12_speedups(&runs);
    assert!((2.0..=4.5).contains(&avg_og), "avg vs OG = {avg_og}");
    assert!((3.5..=8.0).contains(&avg_oc), "avg vs OC = {avg_oc}");
    // Spot facts from the paper's text.
    let by = |name: &str| rows.iter().find(|r| r.app == name).unwrap();
    // Nbody's best-vs-OC is the figure's ~22x outlier.
    assert!(by("Nbody").vs_only_cpu > 15.0);
    // MatrixMul gains little over Only-GPU (SP-Single ≈ Only-GPU).
    assert!(by("MatrixMul").vs_only_gpu < 1.3);
}

#[test]
fn paper_partitioning_ratios_reproduced() {
    // The ratios the paper states in its text, within tolerance.
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    let share = |app: &str, cfg: &str| {
        runs.iter()
            .find(|r| r.app == app)
            .unwrap()
            .get(cfg)
            .unwrap()
            .gpu_item_share
    };
    // MatrixMul: "approximately 90% of the data to the GPU".
    assert!((share("MatrixMul", "SP-Single") - 0.90).abs() < 0.03);
    // BlackScholes: "a 41%/59% assignment to the CPU/GPU".
    assert!((share("BlackScholes", "SP-Single") - 0.59).abs() < 0.03);
    // STREAM-Seq: "44% of the elements on the GPU and 56% on the CPU".
    assert!((share("STREAM-Seq-w/o", "SP-Unified") - 0.44).abs() < 0.03);
    // HotSpot: "assigns a large partition to the CPU".
    assert!(share("HotSpot", "SP-Single") < 0.35);
    // Nbody: "assigns most of the work to the GPU".
    assert!(share("Nbody", "SP-Single") > 0.85);
}

#[test]
fn transfer_dominated_facts_reproduced() {
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    // BlackScholes Only-GPU: transfer takes ~37.5x the kernel time.
    let bs = runs.iter().find(|r| r.app == "BlackScholes").unwrap();
    let og = bs.get("Only-GPU").unwrap();
    let kernel_ms = og.time_ms - og.transfer_ms;
    let ratio = og.transfer_ms / kernel_ms;
    assert!(
        (20.0..=55.0).contains(&ratio),
        "transfer/kernel = {ratio:.1}"
    );
    // STREAM-Seq Only-GPU: transfers ~88% of the execution time.
    let st = runs.iter().find(|r| r.app == "STREAM-Seq-w/o").unwrap();
    let og = st.get("Only-GPU").unwrap();
    let frac = og.transfer_ms / og.time_ms;
    assert!(
        (0.80..=0.95).contains(&frac),
        "transfer fraction = {frac:.2}"
    );
}

#[test]
fn sync_serialization_degrades_dynamic_partitioning() {
    // Paper: "the synchronization serializes the kernel execution flow,
    // leading to 35% performance degradation" for dynamic partitioning on
    // STREAM. Assert a substantial (>15%) degradation with sync.
    let platform = Platform::icpp15();
    let runs = bench::run_all(&platform);
    let t = |app: &str, cfg: &str| {
        runs.iter()
            .find(|r| r.app == app)
            .unwrap()
            .get(cfg)
            .unwrap()
            .time_ms
    };
    let loop_deg = t("STREAM-Loop-w", "DP-Perf") / t("STREAM-Loop-w/o", "DP-Perf");
    assert!(loop_deg > 1.15, "loop degradation {loop_deg:.2}");
}
