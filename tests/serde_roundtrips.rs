//! Serde round-trips for every serialisable boundary type: the CLI feeds
//! descriptors through JSON, the harness dumps run matrices, and traces
//! export to Chrome JSON — all of these must survive a round trip intact.

use hetero_match::apps::{blackscholes, stream, synth};
use hetero_match::matchmaker::{
    Analyzer, AppDescriptor, ExecutionConfig, ExecutionFlow, Planner, Strategy,
};
use hetero_match::platform::{
    DeviceId, FaultCounters, FaultSchedule, FaultTrace, Platform, RetryPolicy, SimTime,
};
use hetero_match::runtime::{
    simulate_faulty, simulate_resilient, simulate_traced, AdaptConfig, AdaptReport, BreakerConfig,
    HealthConfig, HealthReport, PinnedScheduler, Program, RunReport, Trace, VerificationPolicy,
    WatchdogConfig,
};

#[test]
fn descriptor_roundtrips_through_json() {
    for desc in [
        blackscholes::paper_descriptor(),
        stream::paper_loop(true),
        hetero_match::apps::binomial::descriptor(4096, 128),
        hetero_match::apps::synth::dag("d", 1024, 4, 32.0),
    ] {
        let json = serde_json::to_string(&desc).unwrap();
        let back: AppDescriptor = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.name, desc.name);
        assert_eq!(back.kernels.len(), desc.kernels.len());
        assert_eq!(back.buffers.len(), desc.buffers.len());
        assert_eq!(back.flow, desc.flow);
        assert_eq!(back.sync, desc.sync);
        for (a, b) in back.kernels.iter().zip(&desc.kernels) {
            assert_eq!(a.profile, b.profile);
            assert_eq!(a.domain, b.domain);
            assert_eq!(a.weights, b.weights);
        }
        // And the round-tripped descriptor plans to an identical program.
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let p1 = planner.plan(&desc, ExecutionConfig::OnlyCpu).program;
        let p2 = planner.plan(&back, ExecutionConfig::OnlyCpu).program;
        assert_eq!(p1.task_count(), p2.task_count());
        for ((_, t1), (_, t2)) in p1.tasks().iter().zip(p2.tasks().iter()) {
            assert_eq!(t1.items, t2.items);
            assert_eq!(t1.accesses, t2.accesses);
            assert_eq!(t1.cost_scale, t2.cost_scale);
        }
    }
}

#[test]
fn program_and_report_roundtrip() {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = stream::descriptor(1 << 16, None, true);
    let program = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpVaried))
        .program;

    let json = serde_json::to_string(&program).unwrap();
    let back: Program = serde_json::from_str(&json).unwrap();
    back.validate().unwrap();
    assert_eq!(back.task_count(), program.task_count());
    assert_eq!(back.epochs(), program.epochs());

    // Simulating the round-tripped program is identical.
    let r1 = hetero_match::runtime::simulate(&program, &platform, &mut PinnedScheduler);
    let r2 = hetero_match::runtime::simulate(&back, &platform, &mut PinnedScheduler);
    assert_eq!(r1.makespan, r2.makespan);
    assert_eq!(r1.counters, r2.counters);

    // Reports round-trip too.
    let rj = serde_json::to_string(&r1).unwrap();
    let rb: RunReport = serde_json::from_str(&rj).unwrap();
    assert_eq!(rb.makespan, r1.makespan);
    assert_eq!(rb.counters, r1.counters);
    assert_eq!(rb.gpu_item_share(), r1.gpu_item_share());
}

#[test]
fn trace_roundtrips_and_chrome_export_parses() {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = blackscholes::descriptor(1 << 18);
    let program = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let (_, trace) = simulate_traced(&program, &platform, &mut PinnedScheduler);
    assert!(!trace.events.is_empty());

    let json = serde_json::to_string(&trace).unwrap();
    let back: Trace = serde_json::from_str(&json).unwrap();
    assert_eq!(back.events, trace.events);

    let chrome = trace.to_chrome_json(&platform);
    let parsed: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    assert!(parsed.as_array().unwrap().len() >= trace.events.len());
}

#[test]
fn fault_schedule_and_retry_policy_roundtrip() {
    // A schedule exercising every event kind and a correlated domain.
    let schedule = FaultSchedule::new(42)
        .with_profile_perturb(
            DeviceId(1),
            0.75,
            SimTime::from_millis(2),
            SimTime::from_millis(9),
        )
        .with_task_faults(
            Some(DeviceId(1)),
            0.25,
            SimTime::ZERO,
            SimTime::from_millis(5),
        )
        .with_task_faults(None, 0.1, SimTime::from_millis(1), SimTime::from_millis(2))
        .with_transfer_faults(0.5, SimTime::ZERO, SimTime::MAX)
        .with_dropout(DeviceId(1), SimTime::from_millis(3))
        .with_throttle(
            DeviceId(1),
            SimTime::ZERO,
            SimTime::from_millis(10),
            1.0,
            8.0,
        )
        .with_silent_corruption(DeviceId(1), 0.2, SimTime::ZERO, SimTime::from_millis(4))
        .with_flaky(
            DeviceId(1),
            0.4,
            SimTime::from_millis(1),
            SimTime::from_millis(6),
        )
        .with_link_degrade(
            DeviceId(1),
            0.25,
            2.0,
            SimTime::from_millis(2),
            SimTime::from_millis(7),
        )
        .with_domain(
            "rail-a",
            vec![DeviceId(1), DeviceId(2)],
            0.5,
            0.3,
            SimTime::from_millis(2),
        )
        .with_domain_dropout(0, SimTime::from_millis(8))
        .with_domain_throttle(0, SimTime::from_millis(4), SimTime::from_millis(6), 2.0);
    schedule.validate().unwrap();

    let json = serde_json::to_string(&schedule).unwrap();
    let back: FaultSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back, schedule);
    // Behavioural equality too: the round-tripped schedule samples the
    // same probabilities and replays the same RNG stream.
    assert_eq!(
        back.task_fault_prob(DeviceId(1), SimTime::from_micros(1500)),
        schedule.task_fault_prob(DeviceId(1), SimTime::from_micros(1500))
    );
    assert_eq!(
        back.corruption_prob(DeviceId(1), SimTime::from_micros(1500)),
        schedule.corruption_prob(DeviceId(1), SimTime::from_micros(1500))
    );
    assert_eq!(
        back.profile_factor(DeviceId(1), SimTime::from_millis(5)),
        schedule.profile_factor(DeviceId(1), SimTime::from_millis(5))
    );
    assert_eq!(back.dropouts(), schedule.dropouts());
    assert_eq!(
        back.link_factors(DeviceId(1), SimTime::from_millis(3)),
        schedule.link_factors(DeviceId(1), SimTime::from_millis(3))
    );
    assert_eq!(
        back.link_factors(DeviceId(1), SimTime::from_millis(3)),
        (0.25, 2.0)
    );
    assert_eq!(back.rng().next_u64(), schedule.rng().next_u64());

    let policy = RetryPolicy {
        max_attempts: 5,
        backoff: SimTime::from_micros(25),
        backoff_multiplier: 1.5,
    };
    let pj = serde_json::to_string(&policy).unwrap();
    let pb: RetryPolicy = serde_json::from_str(&pj).unwrap();
    assert_eq!(pb, policy);
    assert_eq!(pb.backoff_for(3), policy.backoff_for(3));
}

#[test]
fn fault_trace_roundtrips_and_replays() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "trace",
        1 << 16,
        4096.0,
        ExecutionFlow::Loop { iterations: 3 },
        true,
    );
    // A single-pass strategy: DP-Perf's warm-up pass would synthesize its
    // own trigger windows, which a baked replay schedule cannot reproduce.
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let policy = RetryPolicy::default();
    let schedule = FaultSchedule::new(7)
        .with_task_faults(
            Some(DeviceId(1)),
            0.3,
            SimTime::ZERO,
            SimTime::from_millis(20),
        )
        .with_domain(
            "switch",
            vec![DeviceId(0), DeviceId(1)],
            0.9,
            0.5,
            SimTime::from_millis(2),
        );
    let (report, trace) = analyzer.record_fault_trace(&desc, config, &schedule, policy);
    assert!(report.faults.correlated_triggers > 0);
    assert_eq!(
        trace.synthesized.len() as u64,
        report.faults.correlated_triggers
    );

    // The trace round-trips structurally and byte-identically.
    let json = trace.to_json();
    let back = FaultTrace::from_json(&json).unwrap();
    assert_eq!(back, trace);
    assert_eq!(back.to_json(), json);

    // Replaying the parsed trace reproduces the recorded run without any
    // live conditional triggering.
    let replay = analyzer.simulate_faulty(&desc, config, &back.replay_schedule(), policy);
    assert_eq!(replay.makespan, report.makespan);
    assert_eq!(replay.breakdown, report.breakdown);
    assert_eq!(replay.faults.task_faults, report.faults.task_faults);
    assert_eq!(replay.faults.correlated_triggers, 0);
}

#[test]
fn faulty_report_and_counters_roundtrip() {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = blackscholes::descriptor(1 << 16);
    let program = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let schedule =
        FaultSchedule::new(9).with_task_faults(Some(DeviceId(1)), 1.0, SimTime::ZERO, SimTime::MAX);
    let report = simulate_faulty(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
    );
    assert!(report.faults.faults_injected() > 0);

    // The full report, fault counters included, survives a round trip.
    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.makespan, report.makespan);
    assert_eq!(back.counters, report.counters);
    assert_eq!(back.faults, report.faults);

    // FaultCounters stand alone too.
    let cj = serde_json::to_string(&report.faults).unwrap();
    let cb: FaultCounters = serde_json::from_str(&cj).unwrap();
    assert_eq!(cb, report.faults);
}

#[test]
fn health_config_roundtrips() {
    for config in [
        HealthConfig::disabled(),
        HealthConfig::monitored(),
        HealthConfig {
            watchdog: Some(WatchdogConfig {
                slack: 2.5,
                hedging: false,
            }),
            verification: VerificationPolicy::DupCheck { sample_rate: 0.5 },
            breaker: Some(BreakerConfig {
                trip_after: 5,
                cooldown: SimTime::from_micros(250),
            }),
            ewma_alpha: 0.1,
            max_rollbacks_per_epoch: 4,
        },
    ] {
        config.validate().unwrap();
        let json = serde_json::to_string(&config).unwrap();
        let back: HealthConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.enabled(), config.enabled());
    }
}

#[test]
fn adapt_config_and_report_roundtrip() {
    for config in [
        AdaptConfig::disabled(),
        AdaptConfig::enabled_default(),
        AdaptConfig {
            skew_threshold: 0.4,
            balance_target: 0.2,
            hysteresis: 2,
            max_resolves: 3,
            repartition: true,
            escalation: false,
            reinstate_after: 3,
        },
    ] {
        config.validate().unwrap();
        let json = serde_json::to_string(&config).unwrap();
        let back: AdaptConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.enabled(), config.enabled());
    }

    // A real adaptive run's report survives a round trip, adapt section
    // included.
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "roundtrip",
        1 << 20,
        65536.0,
        ExecutionFlow::Loop { iterations: 4 },
        true,
    );
    let schedule =
        FaultSchedule::new(11).with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX);
    let report = analyzer.simulate_adaptive(
        &desc,
        ExecutionConfig::Strategy(Strategy::SpSingle),
        &schedule,
        RetryPolicy::default(),
        &HealthConfig::disabled(),
        &AdaptConfig::enabled_default(),
    );
    assert!(report.adapt.barriers_observed > 0);
    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.makespan, report.makespan);
    assert_eq!(back.adapt, report.adapt);

    // AdaptReport stands alone too.
    let aj = serde_json::to_string(&report.adapt).unwrap();
    let ab: AdaptReport = serde_json::from_str(&aj).unwrap();
    assert_eq!(ab, report.adapt);
}

#[test]
fn replan_types_and_repairing_report_roundtrip() {
    use hetero_match::matchmaker::SurvivorPlan;
    use hetero_match::runtime::{AdaptPlan, ReplanConfig, ReplanError, TraceEvent};

    for config in [
        ReplanConfig::disabled(),
        ReplanConfig::enabled_default(),
        ReplanConfig {
            enabled: true,
            max_replans: 2,
            heal_on_reclose: false,
        },
    ] {
        let json = serde_json::to_string(&config).unwrap();
        let back: ReplanConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        assert_eq!(back.enabled(), config.enabled());
    }

    for error in [
        ReplanError::NoSurvivingAccelerator,
        ReplanError::SolverInfeasible {
            detail: "no static plan".into(),
        },
        ReplanError::BudgetExhausted { max_replans: 4 },
    ] {
        let json = serde_json::to_string(&error).unwrap();
        let back: ReplanError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, error);
        assert_eq!(back.to_string(), error.to_string());
    }

    // A survivor plan and a multi-accelerator adapt plan, produced by the
    // real planner on the 3-device preset, survive round trips.
    let platform = Platform::icpp15_with_phi();
    let planner = Planner::new(&platform);
    let desc = blackscholes::descriptor(1 << 18);
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let survivors: Vec<DeviceId> = platform.devices.iter().map(|d| d.id).collect();
    let plan = planner
        .replan_surviving(&desc, config, &survivors, None, &[None, None])
        .unwrap();
    let json = serde_json::to_string(&plan).unwrap();
    let back: SurvivorPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);

    let adapt = planner.adapt_plan(&desc, config).unwrap();
    assert!(adapt.multi.is_some(), "3-device platform must plan N-way");
    let aj = serde_json::to_string(&adapt).unwrap();
    let ab: AdaptPlan = serde_json::from_str(&aj).unwrap();
    assert_eq!(ab, adapt);

    // A repairing run's report — replan counters populated — and its
    // trace events survive round trips.
    let analyzer = Analyzer::new(&platform);
    let schedule = FaultSchedule::new(7).with_dropout(DeviceId(1), SimTime::from_micros(100));
    let mut obs = hetero_match::runtime::TraceObserver::new();
    let report = analyzer
        .simulate_repairing_observed(
            &desc,
            config,
            &schedule,
            RetryPolicy::default(),
            &HealthConfig::disabled(),
            &AdaptConfig::disabled(),
            &ReplanConfig::enabled_default(),
            &mut obs,
        )
        .unwrap();
    assert!(report.adapt.replans >= 1, "the dropout must trigger repair");
    let rj = serde_json::to_string(&report).unwrap();
    let rb: RunReport = serde_json::from_str(&rj).unwrap();
    assert_eq!(rb.makespan, report.makespan);
    assert_eq!(rb.adapt, report.adapt);

    let trace = obs.into_trace();
    assert!(trace
        .events
        .iter()
        .any(|e| matches!(e, TraceEvent::PlanRepaired { .. })));
    let tj = serde_json::to_string(&trace).unwrap();
    let tb: Trace = serde_json::from_str(&tj).unwrap();
    assert_eq!(tb.events, trace.events);
}

#[test]
fn resilient_report_health_roundtrips() {
    let platform = Platform::test_small();
    let planner = Planner::new(&platform);
    let desc = blackscholes::descriptor(1 << 14);
    let program = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    // A gray schedule that exercises the whole health report: a straggling
    // window for the watchdog, silent corruption for DupCheck, flakiness
    // for the breaker.
    let schedule = FaultSchedule::new(7)
        .with_throttle(
            DeviceId(1),
            SimTime::ZERO,
            SimTime::from_millis(1),
            4.0,
            4.0,
        )
        .with_silent_corruption(DeviceId(1), 1.0, SimTime::ZERO, SimTime::MAX)
        .with_flaky(DeviceId(1), 0.5, SimTime::ZERO, SimTime::from_micros(500));
    let report = simulate_resilient(
        &program,
        &platform,
        &mut PinnedScheduler,
        &schedule,
        RetryPolicy::default(),
        &HealthConfig::monitored(),
    );
    assert!(report.health.corruptions_injected >= 1);
    assert!(!report.health.scores.is_empty());

    // The full report, health included, survives a round trip.
    let json = serde_json::to_string(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.makespan, report.makespan);
    assert_eq!(back.health, report.health);

    // HealthReport stands alone too.
    let hj = serde_json::to_string(&report.health).unwrap();
    let hb: HealthReport = serde_json::from_str(&hj).unwrap();
    assert_eq!(hb, report.health);
    assert_eq!(
        hb.detection_shortfall(),
        report.health.detection_shortfall()
    );
}
