//! Failure injection / robustness: performance variability and degraded
//! hardware, the scenarios that motivate dynamic partitioning (cf. Boyer et
//! al. "Load Balancing in a Changing World" and Grewe et al.'s GPU
//! contention work cited in §VI).
//!
//! The static strategies bake profiling results into the plan; if the
//! hardware then degrades (thermal throttling, contention from another
//! tenant), the static split goes stale. A performance-aware dynamic
//! scheduler re-learns the rates at runtime. These tests inject such
//! perturbations through the runtime's `FaultSchedule` — the same seeded
//! fault machinery the resilience tests use — and verify both sides of the
//! trade-off.

use hetero_match::matchmaker::{Analyzer, ExecutionConfig, Planner, Strategy};
use hetero_match::platform::{FaultSchedule, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{
    simulate, simulate_dp_perf_warmed, simulate_dp_perf_warmed_faulty, simulate_faulty,
    PinnedScheduler,
};

/// The perturbation: from t=0 the GPU runs `slowdown` times slower than the
/// rates every plan was built against (contention from a co-tenant). The
/// schedule carries no transient faults, so runs under it are purely
/// throttled — deterministic for any seed.
fn gpu_contention(slowdown: f64) -> FaultSchedule {
    FaultSchedule::new(7).with_throttle(
        hetero_match::platform::DeviceId(1),
        SimTime::ZERO,
        SimTime::MAX,
        slowdown,
        slowdown,
    )
}

/// A compute-heavy single-kernel app where the (healthy) GPU dominates.
fn compute_app(n: u64) -> hetero_match::matchmaker::AppDescriptor {
    hetero_match::apps::synth::single_kernel(
        "contended",
        n,
        65536.0,
        hetero_match::matchmaker::ExecutionFlow::Sequence,
        false,
    )
}

#[test]
fn stale_static_plan_suffers_under_gpu_contention() {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = compute_app(1 << 20);

    // Plan SP-Single against the healthy platform, then throttle the GPU 8x.
    let stale = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let healthy = simulate(&stale, &platform, &mut PinnedScheduler);
    let degraded = simulate_faulty(
        &stale,
        &platform,
        &mut PinnedScheduler,
        &gpu_contention(8.0),
        RetryPolicy::default(),
    );

    // The stale plan's makespan balloons (the GPU partition was sized for a
    // healthy GPU).
    assert!(
        degraded.makespan.as_secs_f64() > 3.0 * healthy.makespan.as_secs_f64(),
        "healthy {} vs degraded {}",
        healthy.makespan,
        degraded.makespan
    );
    // Throttling is not a fault: nothing retried, nothing failed over.
    assert_eq!(degraded.faults.faults_injected(), 0);
}

#[test]
fn dp_perf_adapts_to_gpu_contention() {
    let platform = Platform::icpp15();
    let planner = Planner::new(&platform);
    let desc = compute_app(1 << 20);
    let contention = gpu_contention(8.0);

    // Both plans built healthy; the world degrades before execution.
    let static_prog = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let dynamic_prog = planner
        .plan(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
        .program;

    let stale_static = simulate_faulty(
        &static_prog,
        &platform,
        &mut PinnedScheduler,
        &contention,
        RetryPolicy::default(),
    );
    // DP-Perf profiles at runtime (warm-up run also sees the throttled GPU).
    let adaptive = simulate_dp_perf_warmed_faulty(
        &dynamic_prog,
        &platform,
        &contention,
        RetryPolicy::default(),
    );

    assert!(
        adaptive.makespan < stale_static.makespan,
        "adaptive {} vs stale static {}",
        adaptive.makespan,
        stale_static.makespan
    );
    // And DP-Perf's placement shifted towards the CPU relative to the
    // healthy-world optimum.
    let healthy_share = {
        let healthy_prog = planner
            .plan(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
            .program;
        simulate_dp_perf_warmed(&healthy_prog, &platform).gpu_item_share()
    };
    assert!(
        adaptive.gpu_item_share() < healthy_share,
        "degraded share {} vs healthy share {}",
        adaptive.gpu_item_share(),
        healthy_share
    );
}

#[test]
fn replanning_restores_static_performance() {
    // The analyzer's answer to contention: re-profile and re-plan. A fresh
    // SP-Single plan on the degraded platform matches or beats adaptive
    // dynamic execution (Proposition 2 re-established).
    let degraded_platform = {
        let healthy = Platform::icpp15();
        let mut p = Platform::builder()
            .cpu(healthy.cpu().spec.clone())
            .accelerator(
                {
                    let mut g = healthy.gpu().unwrap().spec.clone();
                    g.peak_gflops_sp /= 8.0;
                    g.peak_gflops_dp /= 8.0;
                    g.mem_bandwidth_gbs /= 8.0;
                    g
                },
                healthy
                    .link(
                        hetero_match::platform::MemSpaceId::HOST,
                        healthy.gpu().unwrap().mem_space,
                    )
                    .unwrap()
                    .clone(),
            )
            .sched_overhead(healthy.sched_overhead)
            .build();
        p.sched_overhead = healthy.sched_overhead;
        p
    };
    let desc = compute_app(1 << 20);
    let analyzer = Analyzer::new(&degraded_platform);
    let fresh_static = analyzer.simulate(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
    let dynamic = analyzer.simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf));
    assert!(
        fresh_static.makespan <= dynamic.makespan + SimTime::from_millis(1),
        "fresh static {} vs dynamic {}",
        fresh_static.makespan,
        dynamic.makespan
    );
}

#[test]
fn link_degradation_shifts_partitioning_to_cpu() {
    // PCIe contention: halving the link bandwidth must move the predicted
    // split towards the CPU for transfer-bound kernels (the G metric).
    let healthy = Platform::icpp15();
    let desc = hetero_match::apps::stream::descriptor(1 << 22, None, false);

    let slow_link = Platform::builder()
        .cpu(healthy.cpu().spec.clone())
        .accelerator(
            healthy.gpu().unwrap().spec.clone(),
            hetero_match::platform::LinkSpec::new(1.5, SimTime::from_micros(15)),
        )
        .sched_overhead(healthy.sched_overhead)
        .build();

    let healthy_share = Planner::new(&healthy)
        .decide_unified(&desc)
        .gpu_items(1 << 22) as f64;
    let slow_share = Planner::new(&slow_link)
        .decide_unified(&desc)
        .gpu_items(1 << 22) as f64;
    assert!(
        slow_share < healthy_share,
        "slow-link share {slow_share} vs healthy {healthy_share}"
    );
}
