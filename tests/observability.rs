//! The observability layer end to end: blame attribution balances its books
//! on every strategy/app pair of the repro corpus, observers never perturb
//! the simulation, exports are byte-deterministic, kernel-rate profiles
//! survive persistence, causal span trees tile device capacity against the
//! blame identity, and streamed metrics deltas fold back to the end-of-run
//! registry on every execution path.

use hetero_match::apps::{paper_apps, synth};
use hetero_match::matchmaker::{
    Analyzer, ExecutionConfig, ExecutionFlow, JournalSink, Planner, ProfileStore, RunSpec, Strategy,
};
use hetero_match::platform::{DeviceId, FaultSchedule, Platform, RetryPolicy, SimTime};
use hetero_match::runtime::{
    fold_stream, simulate, simulate_observed, simulate_traced, AdaptConfig, CriticalPath,
    HealthConfig, MetricsObserver, MetricsRegistry, MultiObserver, NullObserver, PinnedScheduler,
    ReplanConfig, SpanTree, TimeBreakdown, TraceObserver,
};
use proptest::prelude::*;

/// Acceptance criterion: for every application in the repro corpus and
/// every execution configuration the analyzer would compare (both
/// baselines plus the full Table I ranking), the blame components sum to
/// `makespan × slots` on each device.
#[test]
fn breakdown_components_sum_to_makespan_for_whole_corpus() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    for desc in paper_apps() {
        for (config, report) in analyzer.compare_all(&desc) {
            assert!(
                report.breakdown.identity_holds(),
                "{} under {config}: blame books must balance",
                desc.name
            );
            assert_eq!(report.breakdown.makespan, report.makespan);
            for (d, b) in report.breakdown.per_device.iter().enumerate() {
                assert_eq!(
                    b.accounted(),
                    report.makespan * b.slots,
                    "{} under {config}, device {d}: components must sum to makespan × slots",
                    desc.name
                );
            }
        }
    }
}

/// The identity also holds under faults: dropped capacity lands in `dead`,
/// retries in `fault_loss`, and the books still balance for every ranked
/// configuration.
#[test]
fn breakdown_identity_holds_under_faults() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "faulty-blame",
        1 << 18,
        8192.0,
        ExecutionFlow::Loop { iterations: 4 },
        true,
    );
    let schedule = FaultSchedule::new(99)
        .with_dropout(DeviceId(1), SimTime::from_millis(2))
        .with_task_faults(None, 0.05, SimTime::ZERO, SimTime::MAX)
        .with_transfer_faults(0.05, SimTime::ZERO, SimTime::MAX);
    for e in analyzer.rank_by_degradation(&desc, &schedule, RetryPolicy::default()) {
        assert!(e.healthy.breakdown.identity_holds(), "{}", e.config);
        assert!(e.faulty.breakdown.identity_holds(), "{}", e.config);
        assert!(e.resilience_overhead() >= SimTime::ZERO);
    }
}

/// Observers are strictly observational: a [`NullObserver`] run, an
/// observed run with active sinks, and a traced run all produce the same
/// report (makespan, counters, and breakdown).
#[test]
fn observers_do_not_perturb_the_simulation() {
    let platform = Platform::icpp15();
    let desc = synth::single_kernel(
        "observed",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 3 },
        true,
    );
    let program = Planner::new(&platform)
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let plain = simulate(&program, &platform, &mut PinnedScheduler);
    let mut null = NullObserver;
    let nulled = simulate_observed(&program, &platform, &mut PinnedScheduler, &mut null);
    let (traced_report, trace) = simulate_traced(&program, &platform, &mut PinnedScheduler);
    let mut metrics = MetricsObserver::new(&platform, "SP-Single");
    let mut tracer = TraceObserver::new();
    let multi_report = {
        let mut multi = MultiObserver::new().with(&mut metrics).with(&mut tracer);
        simulate_observed(&program, &platform, &mut PinnedScheduler, &mut multi)
    };
    for other in [&nulled, &traced_report, &multi_report] {
        assert_eq!(other.makespan, plain.makespan);
        assert_eq!(other.counters, plain.counters);
        assert_eq!(other.breakdown, plain.breakdown);
    }
    // The fanned-out trace is the trace.
    assert_eq!(tracer.trace().events.len(), trace.events.len());
    assert_eq!(tracer.trace().events, trace.events);
    // And the critical path it extracts ends at the makespan.
    let path = CriticalPath::from_trace(&trace);
    assert_eq!(path.end(), plain.makespan);
}

/// Golden-file style determinism: two identical runs render byte-identical
/// Prometheus text, metrics JSON, and Chrome-trace JSON.
#[test]
fn exports_are_byte_deterministic_across_replays() {
    let platform = Platform::icpp15();
    let desc = synth::single_kernel(
        "export-twice",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 2 },
        true,
    );
    let program = Planner::new(&platform)
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let run = || {
        let mut metrics = MetricsObserver::new(&platform, "SP-Single");
        let mut tracer = TraceObserver::new();
        {
            let mut multi = MultiObserver::new().with(&mut metrics).with(&mut tracer);
            simulate_observed(&program, &platform, &mut PinnedScheduler, &mut multi);
        }
        let registry = metrics.into_registry();
        (
            registry.to_prometheus(),
            registry.to_json(),
            tracer.into_trace().to_chrome_json(&platform),
        )
    };
    let (prom1, json1, chrome1) = run();
    let (prom2, json2, chrome2) = run();
    assert_eq!(prom1, prom2);
    assert_eq!(json1, json2);
    assert_eq!(chrome1, chrome2);
    assert!(prom1.contains("# TYPE hm_makespan_seconds gauge"));
    assert!(chrome1.contains("\"ph\": \"C\""), "counter track present");
}

/// Serde round-trips for the new boundary types.
#[test]
fn observability_types_roundtrip_through_json() {
    let platform = Platform::icpp15();
    let desc = synth::single_kernel("roundtrip", 1 << 18, 4096.0, ExecutionFlow::Sequence, false);
    let program = Planner::new(&platform)
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .program;
    let mut metrics = MetricsObserver::new(&platform, "SP-Single");
    let report = simulate_observed(&program, &platform, &mut PinnedScheduler, &mut metrics);

    let json = serde_json::to_string(&report.breakdown).unwrap();
    let back: TimeBreakdown = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report.breakdown);

    let registry = metrics.into_registry();
    let back: MetricsRegistry = serde_json::from_str(&registry.to_json()).unwrap();
    assert_eq!(back, registry);
}

/// Profile persistence: recorded kernel rates survive a save/load cycle,
/// and a planner seeded from the loaded store plans exactly like the
/// planner that probed them.
#[test]
fn profiles_persist_and_reproduce_plans() {
    let platform = Platform::icpp15();
    let desc = synth::single_kernel("profiled", 1 << 19, 8192.0, ExecutionFlow::Sequence, false);
    let probing = Planner::new(&platform);
    let store = probing.record_profiles(&desc);
    assert_eq!(store.len(), desc.kernels.len());

    let path = std::env::temp_dir().join("hetero-match-obs-test-profile.json");
    store.save(&path).unwrap();
    let loaded = ProfileStore::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(loaded, store);

    let mut seeded = Planner::new(&platform);
    seeded.profiles = Some(loaded);
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let probed_plan = probing.plan(&desc, config);
    let seeded_plan = seeded.plan(&desc, config);
    let a = simulate(&probed_plan.program, &platform, &mut PinnedScheduler);
    let b = simulate(&seeded_plan.program, &platform, &mut PinnedScheduler);
    assert_eq!(
        a.makespan, b.makespan,
        "seeded planner must replan identically"
    );
    assert_eq!(a.counters, b.counters);
}

/// Acceptance criterion (PR 9): the causal span tree's per-kind durations
/// exactly tile `makespan × slots` against the blame identity — `task`
/// slot time equals the sum of the active blame components, and `dead` and
/// `idle` match the blame books — for every app/config pair of the repro
/// corpus.
#[test]
fn span_tree_tiles_capacity_against_blame_for_whole_corpus() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    for desc in paper_apps() {
        for (config, _) in analyzer.compare_all(&desc) {
            let mut tobs = TraceObserver::new();
            let report = analyzer.simulate_observed(&desc, config, &mut tobs);
            let tree = SpanTree::from_trace(tobs.trace(), &platform);
            assert_eq!(tree.end, report.makespan, "{} under {config}", desc.name);
            for (d, s) in tree.device_span_seconds().iter().enumerate() {
                let b = &report.breakdown.per_device[d];
                assert_eq!(
                    s.task + s.dead + s.idle,
                    report.makespan * b.slots,
                    "{} under {config}, device {d}: span kinds must tile capacity",
                    desc.name
                );
                assert_eq!(
                    s.task,
                    b.active(),
                    "{} under {config}, device {d}: task spans must equal active blame",
                    desc.name
                );
                assert_eq!(s.dead, b.dead, "{} under {config}, device {d}", desc.name);
                assert_eq!(s.idle, b.idle, "{} under {config}, device {d}", desc.name);
            }
        }
    }
}

/// Span tiling also survives faults: a dropout leaves its post-death
/// capacity in `dead`, retries stretch task slots, and the three span
/// kinds still tile `makespan × slots` exactly as the blame books do.
#[test]
fn span_tree_tiles_capacity_under_faults() {
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "span-faulty",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 4 },
        true,
    );
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let schedule = FaultSchedule::new(7)
        .with_flaky(DeviceId(2), 0.2, SimTime::ZERO, SimTime::from_millis(1))
        .with_dropout(DeviceId(1), SimTime::from_micros(400));
    let mut tobs = TraceObserver::new();
    let mut sink = JournalSink::record();
    let report = analyzer
        .simulate_journaled_observed(
            &desc,
            config,
            &RunSpec::faulty(schedule),
            &mut sink,
            &mut tobs,
        )
        .unwrap();
    assert!(report.faults.task_faults > 0 || report.faults.device_dropouts > 0);
    let tree = SpanTree::from_trace(tobs.trace(), &platform);
    for (d, s) in tree.device_span_seconds().iter().enumerate() {
        let b = &report.breakdown.per_device[d];
        assert_eq!(
            s.task + s.dead + s.idle,
            report.makespan * b.slots,
            "device {d}: span kinds must tile capacity under faults"
        );
        assert_eq!(s.task, b.active(), "device {d}");
        assert_eq!(s.dead, b.dead, "device {d}");
        assert_eq!(s.idle, b.idle, "device {d}");
    }
    // The dropout shows up as a causal child of its epoch.
    let folded = tree.to_folded();
    assert!(!folded.is_empty());
}

/// Acceptance criterion (PR 9): folding the streamed `EpochSnapshot`
/// deltas reproduces the end-of-run registry byte-for-byte on all five
/// journaled execution paths.
#[test]
fn stream_fold_equivalence_across_all_run_modes() {
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "stream-modes",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 4 },
        true,
    );
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);
    let schedule = || {
        FaultSchedule::new(29)
            .with_flaky(DeviceId(2), 0.2, SimTime::ZERO, SimTime::from_millis(1))
            .with_dropout(DeviceId(1), SimTime::from_micros(400))
    };
    let specs = [
        ("plain", RunSpec::plain()),
        ("faulty", RunSpec::faulty(schedule())),
        (
            "resilient",
            RunSpec::resilient(schedule(), HealthConfig::monitored()),
        ),
        (
            "adaptive",
            RunSpec::adaptive(
                schedule(),
                HealthConfig::monitored(),
                AdaptConfig::enabled_default(),
            ),
        ),
        (
            "repairing",
            RunSpec::repairing(
                schedule(),
                HealthConfig::disabled(),
                AdaptConfig::disabled(),
                ReplanConfig::enabled_default(),
            ),
        ),
    ];
    for (what, spec) in specs {
        let (_, obs) = analyzer
            .simulate_streamed(&desc, config, &spec)
            .unwrap_or_else(|e| panic!("{what}: streamed run failed: {e}"));
        assert!(
            obs.lines().len() >= 2,
            "{what}: expected per-epoch lines plus the run-end line"
        );
        let folded = fold_stream(&obs.stream())
            .unwrap_or_else(|e| panic!("{what}: stream does not fold: {e}"));
        assert_eq!(
            folded.to_json(),
            obs.registry().to_json(),
            "{what}: folded stream must reproduce the registry byte-for-byte"
        );
        // The stream itself is byte-deterministic across replays.
        let (_, again) = analyzer.simulate_streamed(&desc, config, &spec).unwrap();
        assert_eq!(obs.stream(), again.stream(), "{what}: stream must replay");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: the blame identity holds for arbitrary synthetic
    /// applications across flows, intensities and strategies — including
    /// under seeded task faults.
    #[test]
    fn breakdown_identity_is_universal(
        log_items in 14u32..19,
        flops in 64.0f64..16384.0,
        iterations in 1u32..4,
        strategy in prop_oneof![
            Just(Strategy::SpSingle),
            Just(Strategy::DpDep),
            Just(Strategy::DpPerf),
        ],
        seed in 0u64..1024,
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let flow = if iterations == 1 {
            ExecutionFlow::Sequence
        } else {
            ExecutionFlow::Loop { iterations }
        };
        let desc = synth::single_kernel("prop", 1u64 << log_items, flops, flow, iterations > 1);
        let config = ExecutionConfig::Strategy(strategy);
        let healthy = analyzer.simulate(&desc, config);
        prop_assert!(healthy.breakdown.identity_holds());
        prop_assert_eq!(healthy.breakdown.makespan, healthy.makespan);
        let schedule =
            FaultSchedule::new(seed).with_task_faults(None, 0.1, SimTime::ZERO, SimTime::MAX);
        let faulty = analyzer.simulate_resilient(
            &desc,
            config,
            &schedule,
            RetryPolicy::default(),
            &HealthConfig::disabled(),
        );
        prop_assert!(faulty.breakdown.identity_holds());
    }

    /// Property: span-kind durations tile `makespan × slots` against the
    /// blame identity for any repro-corpus app under any suitable
    /// strategy, fault-free or seeded-faulty.
    #[test]
    fn span_tiling_matches_blame_identity(
        app_idx in 0usize..64,
        strategy in prop_oneof![
            Just(Strategy::SpSingle),
            Just(Strategy::DpDep),
            Just(Strategy::DpPerf),
        ],
        fault_prob in prop_oneof![Just(0.0f64), 0.05f64..0.2],
        seed in 0u64..1024,
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let corpus = paper_apps();
        let desc = &corpus[app_idx % corpus.len()];
        let config = ExecutionConfig::Strategy(strategy);
        if analyzer.planner().try_plan(desc, config).is_err() {
            // Not every strategy suits every corpus app (e.g. SP-Single
            // targets single-kernel applications) — nothing to check.
            return Ok(());
        }
        let mut tobs = TraceObserver::new();
        let report = if fault_prob == 0.0 {
            analyzer.simulate_observed(desc, config, &mut tobs)
        } else {
            let schedule = FaultSchedule::new(seed)
                .with_task_faults(None, fault_prob, SimTime::ZERO, SimTime::MAX);
            let mut sink = JournalSink::record();
            analyzer
                .simulate_journaled_observed(
                    desc,
                    config,
                    &RunSpec::faulty(schedule),
                    &mut sink,
                    &mut tobs,
                )
                .unwrap()
        };
        let tree = SpanTree::from_trace(tobs.trace(), &platform);
        for (d, s) in tree.device_span_seconds().iter().enumerate() {
            let b = &report.breakdown.per_device[d];
            prop_assert_eq!(s.task + s.dead + s.idle, report.makespan * b.slots);
            prop_assert_eq!(s.task, b.active());
            prop_assert_eq!(s.dead, b.dead);
            prop_assert_eq!(s.idle, b.idle);
        }
    }
}
