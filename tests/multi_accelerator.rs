//! Multi-accelerator partitioning (Glinda's "one or more accelerators,
//! identical or non-identical" and the paper's future-work direction):
//! end-to-end tests on the CPU + K20m + Phi-class preset.

use hetero_match::matchmaker::{ExecutionConfig, KernelSplit, Planner, Strategy};
use hetero_match::platform::{DeviceId, Platform};
use hetero_match::runtime::{simulate, PinnedScheduler};

fn compute_app(n: u64) -> hetero_match::matchmaker::AppDescriptor {
    hetero_match::apps::synth::single_kernel(
        "triple",
        n,
        16384.0,
        hetero_match::matchmaker::ExecutionFlow::Sequence,
        false,
    )
}

#[test]
fn preset_has_three_devices_and_two_links() {
    let p = Platform::icpp15_with_phi();
    assert_eq!(p.devices.len(), 3);
    assert_eq!(p.accelerators().count(), 2);
    assert_eq!(p.mem_spaces, 3);
    assert_eq!(p.total_slots(), 14);
}

#[test]
fn planner_produces_a_three_way_split() {
    let platform = Platform::icpp15_with_phi();
    let planner = Planner::new(&platform);
    let desc = compute_app(1 << 21);
    let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));

    let split = plan.kernel_configs[0].as_ref().unwrap();
    let KernelSplit::Multi(m) = split else {
        panic!("expected multi split on a 2-accelerator platform");
    };
    // Every device gets a share of this compute-bound kernel.
    assert!(m.cpu_items > 0, "{m:?}");
    assert!(m.accel_items.iter().all(|&x| x > 0), "{m:?}");
    assert_eq!(m.cpu_items + m.accel_items.iter().sum::<u64>(), 1 << 21);
    // The K20m (3519 GF) outweighs the Phi-class card (2147 GF).
    assert!(m.accel_items[0] > m.accel_items[1], "{m:?}");

    // Program emission: instances pinned to all three devices.
    let mut devices_seen = std::collections::BTreeSet::new();
    for (_, t) in plan.program.tasks() {
        devices_seen.insert(t.pinned.expect("static plan pins everything"));
    }
    assert!(devices_seen.contains(&DeviceId(0)));
    assert!(devices_seen.contains(&DeviceId(1)));
    assert!(devices_seen.contains(&DeviceId(2)));
}

#[test]
fn three_way_split_beats_every_pairwise_configuration() {
    let platform = Platform::icpp15_with_phi();
    let planner = Planner::new(&platform);
    let desc = compute_app(1 << 21);

    let three_way = {
        let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
        simulate(&plan.program, &platform, &mut PinnedScheduler)
    };
    // Baselines on the same platform.
    let only_gpu = {
        let plan = planner.plan(&desc, ExecutionConfig::OnlyGpu);
        simulate(&plan.program, &platform, &mut PinnedScheduler)
    };
    let only_cpu = {
        let plan = planner.plan(&desc, ExecutionConfig::OnlyCpu);
        simulate(&plan.program, &platform, &mut PinnedScheduler)
    };
    assert!(three_way.makespan < only_gpu.makespan);
    assert!(three_way.makespan < only_cpu.makespan);

    // And it beats the two-device split computed on the single-GPU paper
    // platform executed here (i.e. adding the Phi genuinely helps).
    let single_gpu_platform = Platform::icpp15();
    let two_way_plan = Planner::new(&single_gpu_platform)
        .plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
    let two_way = simulate(&two_way_plan.program, &platform, &mut PinnedScheduler);
    assert!(
        three_way.makespan < two_way.makespan,
        "3-way {} vs 2-way {}",
        three_way.makespan,
        two_way.makespan
    );
}

#[test]
fn dynamic_schedulers_use_all_three_devices() {
    let platform = Platform::icpp15_with_phi();
    let planner = Planner::new(&platform);
    let desc = compute_app(1 << 21);
    let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::DpPerf));
    let report = hetero_match::runtime::simulate_dp_perf_warmed(&plan.program, &platform);
    // The compute-bound kernel should spread across both accelerators.
    assert!(report.counters.devices[1].tasks > 0);
    assert!(report.counters.devices[2].tasks > 0);
}

#[test]
fn transfer_bound_kernel_drops_both_accelerators_sensibly() {
    // A pure-streaming kernel with heavy transfers: the multi-way solver
    // should keep nearly everything on the CPU.
    let platform = Platform::icpp15_with_phi();
    let planner = Planner::new(&platform);
    let mut desc = hetero_match::apps::stream::descriptor(1 << 22, None, false);
    desc.kernels.truncate(1); // just `copy`
    desc.flow = hetero_match::matchmaker::ExecutionFlow::Sequence;
    let split = planner.decide_kernel(&desc, 0);
    let offload = split.gpu_items(1 << 22) as f64 / (1 << 22) as f64;
    assert!(offload < 0.5, "offload fraction {offload}");
}

#[test]
fn weighted_kernel_on_multi_accelerator_platform_still_plans_soundly() {
    // Weights + multiple accelerators: the N-way count split applies (see
    // `Planner::decide_kernel` docs) but instance costs stay weighted and
    // the plan conserves the domain.
    let platform = Platform::icpp15_with_phi();
    let planner = Planner::new(&platform);
    let n = 1 << 14;
    let desc = hetero_match::apps::binomial::descriptor(n, 480);
    let plan = planner.plan(&desc, ExecutionConfig::Strategy(Strategy::SpSingle));
    let total: u64 = plan.program.tasks().iter().map(|(_, t)| t.items).sum();
    assert_eq!(total, n);
    // Weighted cost scales survive the multi split.
    let scales: Vec<f64> = plan
        .program
        .tasks()
        .iter()
        .map(|(_, t)| t.cost_scale)
        .collect();
    assert!(scales.iter().any(|&s| (s - 1.0).abs() > 0.05));
    let weighted: f64 = plan
        .program
        .tasks()
        .iter()
        .map(|(_, t)| t.cost_scale * t.items as f64)
        .sum();
    assert!((weighted / n as f64 - 1.0).abs() < 1e-9);
}
