//! Planning-service robustness (DESIGN.md §8.9, PROPERTY-TESTS.md §10):
//! the wire codec never panics on arbitrary bytes — every malformed frame
//! becomes a typed [`ServiceError`] — and the shed-or-serve oracle holds
//! over seeded chaos schedules: every arrival gets exactly one terminal
//! response, sheds are typed, and same-seed runs are byte-identical on
//! the wire and in the exported registry.

use hetero_match::matchmaker::{
    check_shed_or_serve, decode_request, encode_request, encode_response, run_load, template_app,
    Arrival, ChaosSchedule, LoadConfig, PlanRequest, PlanService, ServiceConfig,
};
use hetero_match::platform::{Platform, SimTime};
use proptest::prelude::*;

fn frame(template: u64, what_if: bool) -> Vec<u8> {
    encode_request(&PlanRequest {
        id: template,
        client: "t".into(),
        app: template_app(template),
        config: None,
        what_if,
        deadline_us: None,
    })
}

/// Re-encoded wire transcript of a whole run — the byte-level identity
/// the determinism CI job diffs.
fn wire(outcomes: &[hetero_match::matchmaker::ServiceOutcome]) -> String {
    outcomes
        .iter()
        .map(|o| encode_response(&o.result))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn directed_malformed_frames_are_typed_not_panics() {
    for (bytes, want) in [
        (&b""[..], "bad_frame"),
        (&b"POST /plan HTTP/1.1"[..], "bad_frame"),
        (&b"GET /plan HTTP/1.1\r\n\r\n"[..], "bad_frame"),
        (
            &b"POST /plan HTTP/1.1\r\ncontent-length: 99\r\n\r\n{}"[..],
            "torn_body",
        ),
        (
            &b"POST /plan HTTP/1.1\r\ncontent-length: 4\r\n\r\n{{{{"[..],
            "bad_json",
        ),
        (
            &b"POST /plan HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n"[..],
            "oversized",
        ),
    ] {
        let err = decode_request(bytes, 64 * 1024).expect_err("malformed frame must fail");
        assert_eq!(
            err.verdict(),
            want,
            "for {:?}",
            String::from_utf8_lossy(bytes)
        );
    }
}

#[test]
fn burst_chaos_load_sheds_typed_and_stays_deterministic() {
    let platform = Platform::icpp15();
    let load = LoadConfig {
        requests: 2_000,
        seed: 9,
        ..LoadConfig::default()
    };
    let span = SimTime::from_micros(load.requests * load.mean_gap_us);
    let chaos = ChaosSchedule::burst(9, 10, span);
    let a = run_load(&platform, &ServiceConfig::default(), &load, &chaos);
    let b = run_load(&platform, &ServiceConfig::default(), &load, &chaos);

    check_shed_or_serve(load.requests as usize, &a.outcomes).expect("shed-or-serve");
    assert_eq!(
        wire(&a.outcomes),
        wire(&b.outcomes),
        "wire transcripts diverged"
    );
    assert_eq!(a.summary, b.summary, "summaries diverged");
    assert_eq!(
        a.registry.to_json(),
        b.registry.to_json(),
        "registries diverged"
    );
    // Under 10x burst something must actually shed, and every shed is a
    // recognised typed verdict — never a silent drop or a panic.
    let sheds: Vec<&'static str> = a
        .outcomes
        .iter()
        .filter_map(|o| o.result.as_ref().err().map(|e| e.verdict()))
        .collect();
    assert!(!sheds.is_empty(), "10x burst chaos must shed");
    const VERDICTS: &[&str] = &[
        "bad_frame",
        "oversized",
        "torn_body",
        "bad_json",
        "invalid_request",
        "queue_full",
        "rate_limited",
        "deadline_queue",
        "deadline_solve",
    ];
    for v in &sheds {
        assert!(VERDICTS.contains(v), "unknown shed verdict {v}");
    }
}

#[test]
fn saturated_warm_cache_serves_degraded() {
    let platform = Platform::icpp15();
    let cfg = ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        degrade_depth: 2,
        rate_limit: None,
        default_deadline_us: None,
        ..ServiceConfig::default()
    };
    let mut svc = PlanService::new(&platform, cfg, ChaosSchedule::calm(0));
    // Saturating volley at t=1us, then a second volley after the first
    // solves complete in virtual time: cache warm, pool still draining.
    let mut arrivals: Vec<Arrival> = (0..8)
        .map(|_| Arrival {
            at: SimTime::from_micros(1),
            client: "c0".into(),
            bytes: frame(0, false),
        })
        .collect();
    arrivals.push(Arrival {
        at: SimTime::from_micros(205),
        client: "c0".into(),
        bytes: frame(0, false),
    });
    let outcomes = svc.run(&arrivals);
    check_shed_or_serve(arrivals.len(), &outcomes).expect("shed-or-serve");
    let last = outcomes.last().expect("second volley answered");
    let resp = last.result.as_ref().expect("degraded serve, not shed");
    assert!(
        resp.degraded && resp.cached,
        "saturated warm cache must degrade"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The codec never panics: arbitrary bytes decode to a request or a
    /// typed error whose verdict and HTTP status are well-formed.
    #[test]
    fn codec_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        max_body in 0u64..100_000,
    ) {
        match decode_request(&bytes, max_body) {
            // A random frame that happens to parse must re-encode into a
            // frame that parses back to the same request.
            Ok(req) => prop_assert_eq!(decode_request(&encode_request(&req), u64::MAX), Ok(req)),
            Err(e) => {
                prop_assert!(!e.verdict().is_empty());
                prop_assert!((400..=503).contains(&e.status()));
            }
        }
    }

    /// Prefixes of a *valid* frame also never panic — the torn-body and
    /// truncated-header paths return typed errors, the full frame round
    /// trips.
    #[test]
    fn codec_handles_every_truncation_of_a_valid_frame(
        template in 0u64..60,
        what_if in any::<bool>(),
    ) {
        let full = frame(template, what_if);
        let req = decode_request(&full, 1 << 20).expect("full frame round trips");
        prop_assert_eq!(&req.app, &template_app(template));
        for cut in (0..full.len()).step_by(7) {
            match decode_request(&full[..cut], 1 << 20) {
                Ok(_) => prop_assert_eq!(cut, full.len()),
                Err(e) => prop_assert!(!e.verdict().is_empty()),
            }
        }
    }

    /// Shed-or-serve over seeded chaos: for any seed and burst factor the
    /// service answers every arrival exactly once, in causal order, and a
    /// same-seed re-run reproduces the wire transcript byte for byte.
    #[test]
    fn shed_or_serve_holds_over_seeded_chaos(
        seed in 0u64..1_000,
        factor in 1u32..12,
        calm in any::<bool>(),
    ) {
        let platform = Platform::icpp15();
        let load = LoadConfig { requests: 96, seed, ..LoadConfig::default() };
        let span = SimTime::from_micros(load.requests * load.mean_gap_us);
        let chaos = if calm {
            ChaosSchedule::calm(seed)
        } else {
            ChaosSchedule::burst(seed, factor, span)
        };
        let a = run_load(&platform, &ServiceConfig::default(), &load, &chaos);
        prop_assert!(check_shed_or_serve(load.requests as usize, &a.outcomes).is_ok());
        let b = run_load(&platform, &ServiceConfig::default(), &load, &chaos);
        prop_assert_eq!(wire(&a.outcomes), wire(&b.outcomes));
        prop_assert_eq!(a.summary, b.summary);
    }
}
