//! The metrics catalog (`docs/METRICS.md`) is bidirectionally complete: a
//! scenario battery covering every emission site must emit exactly the
//! documented `hm_*` series — nothing undocumented goes out, and nothing
//! documented is dead. Adding a metric without its catalog row (or the
//! other way round) fails here.

use std::collections::BTreeSet;

use hetero_match::apps::synth;
use hetero_match::matchmaker::{
    encode_request, run_load, Analyzer, Arrival, ChaosSchedule, ExecutionConfig, ExecutionFlow,
    LoadConfig, PlanService, RunSpec, ServiceConfig, Strategy, STREAM_STRATEGY_LABEL,
};
use hetero_match::platform::{DeviceId, FaultSchedule, Platform, SimTime};
use hetero_match::runtime::{
    AdaptConfig, HealthConfig, MetricsRegistry, ReplanConfig, SpanTree, TraceObserver,
};

/// Every series name a registry holds (base names, labels stripped).
fn emitted(registry: &MetricsRegistry) -> BTreeSet<String> {
    registry.series.values().map(|s| s.name.clone()).collect()
}

/// Every `hm_*` name documented in a catalog table row.
fn documented() -> BTreeSet<String> {
    let text = include_str!("../docs/METRICS.md");
    let mut names = BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `hm_") else {
            continue;
        };
        let name = rest.split('`').next().expect("split yields a head");
        names.insert(format!("hm_{name}"));
    }
    names
}

#[test]
fn catalog_matches_emitted_series_in_both_directions() {
    let platform = Platform::icpp15_with_phi();
    let analyzer = Analyzer::new(&platform);
    let desc = synth::single_kernel(
        "catalog",
        1 << 18,
        4096.0,
        ExecutionFlow::Loop { iterations: 6 },
        true,
    );
    let config = ExecutionConfig::Strategy(Strategy::SpSingle);

    let mut all: BTreeSet<String> = BTreeSet::new();

    // Faulty resilient run: task faults, retries, a failover and a heavy
    // flaky window that trips the circuit breaker (quarantine seconds),
    // plus the per-event, per-epoch and run-end families.
    let breaker = FaultSchedule::new(11)
        .with_flaky(DeviceId(1), 1.0, SimTime::ZERO, SimTime::from_millis(200))
        .with_transfer_faults(0.05, SimTime::ZERO, SimTime::MAX);
    let (report, obs) = analyzer
        .simulate_streamed(
            &desc,
            ExecutionConfig::Strategy(Strategy::SpVaried),
            &RunSpec::resilient(breaker, HealthConfig::monitored()),
        )
        .expect("resilient streamed run");
    assert!(
        !report.health.quarantine.is_empty(),
        "battery must quarantine a device so hm_quarantine_seconds is exercised"
    );
    all.extend(emitted(obs.registry()));

    // Repairing run with a dropout: device death, survivor re-plan
    // (hm_adapt_total) and the degraded-mode counters.
    let dropout = FaultSchedule::new(7)
        .with_flaky(DeviceId(2), 0.2, SimTime::ZERO, SimTime::from_millis(1))
        .with_dropout(DeviceId(1), SimTime::from_micros(400));
    let (report, obs) = analyzer
        .simulate_streamed(
            &desc,
            config,
            &RunSpec::repairing(
                dropout,
                HealthConfig::disabled(),
                AdaptConfig::disabled(),
                ReplanConfig::enabled_default(),
            ),
        )
        .expect("repairing streamed run");
    assert!(report.faults.device_dropouts > 0);
    all.extend(emitted(obs.registry()));

    // Span profile: lift a traced fault-free run into a span tree and
    // export hm_span_seconds.
    let mut tobs = TraceObserver::new();
    analyzer.simulate_observed(&desc, config, &mut tobs);
    let tree = SpanTree::from_trace(tobs.trace(), &platform);
    let mut registry = MetricsRegistry::new();
    tree.export_metrics(&mut registry, STREAM_STRATEGY_LABEL);
    all.extend(emitted(&registry));

    // Planning-service battery: a seeded burst-chaos load saturates the
    // pool (requests, admission verdicts incl. degraded serves, cache
    // hits/misses, queue depth/wait, latency), and a directed tight-budget
    // volley against a single worker fires hm_service_deadline_miss_total.
    let load = LoadConfig {
        requests: 500,
        seed: 42,
        ..LoadConfig::default()
    };
    let span = hetero_match::platform::SimTime::from_micros(load.requests * load.mean_gap_us);
    let out = run_load(
        &platform,
        &ServiceConfig::default(),
        &load,
        &ChaosSchedule::burst(42, 10, span),
    );
    all.extend(emitted(&out.registry));

    let tight = ServiceConfig {
        workers: 1,
        rate_limit: None,
        default_deadline_us: Some(300),
        base_solve_us: 200,
        per_kernel_solve_us: 0,
        ..ServiceConfig::default()
    };
    let mut svc = PlanService::new(&platform, tight, ChaosSchedule::calm(0));
    let arrivals: Vec<Arrival> = (0..4)
        .map(|i| Arrival {
            at: SimTime::from_micros(1),
            client: "catalog".into(),
            bytes: encode_request(&hetero_match::matchmaker::PlanRequest {
                id: i,
                client: "catalog".into(),
                app: hetero_match::matchmaker::template_app(i),
                config: None,
                what_if: true,
                deadline_us: None,
            }),
        })
        .collect();
    let outcomes = svc.run(&arrivals);
    assert!(
        outcomes
            .iter()
            .any(|o| matches!(o.result, Err(ref e) if e.verdict().starts_with("deadline"))),
        "battery must miss a deadline so hm_service_deadline_miss_total is exercised"
    );
    all.extend(emitted(svc.registry()));

    let catalog = documented();
    assert!(!catalog.is_empty(), "docs/METRICS.md catalog parsed empty");

    let undocumented: Vec<_> = all.difference(&catalog).collect();
    assert!(
        undocumented.is_empty(),
        "series emitted but missing from docs/METRICS.md: {undocumented:?}"
    );
    let dead: Vec<_> = catalog.difference(&all).collect();
    assert!(
        dead.is_empty(),
        "series documented in docs/METRICS.md but never emitted by the battery: {dead:?}"
    );
}
