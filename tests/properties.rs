//! Property-based tests (proptest) over the core invariants, spanning the
//! solver, planner, dependence analysis, coherence, and executor.

use hetero_match::glinda::{solve, PartitionProblem, TransferModel};
use hetero_match::matchmaker::{
    classify, ratio_to_counts, AppClass, ExecutionConfig, Planner, Strategy as PartStrategy,
};
use hetero_match::platform::{DeviceId, KernelProfile, Platform, SimTime};
use hetero_match::runtime::{
    simulate, split_even, Access, DepScheduler, PerfScheduler, PinnedScheduler, Program, Region,
    TaskGraph,
};
use proptest::prelude::*;

fn arb_problem() -> impl proptest::strategy::Strategy<Value = PartitionProblem> {
    (
        1u64..2_000_000,
        1e3f64..1e9,
        1e3f64..1e10,
        0.0f64..64.0,
        0.0f64..64.0,
        0.0f64..1e7,
        1e6f64..1e11,
        prop_oneof![Just(1u64), Just(32u64), Just(64u64)],
    )
        .prop_map(
            |(items, cpu, gpu, h2d, d2h, fixed, bw, gran)| PartitionProblem {
                items,
                cpu_rate: cpu,
                gpu_rate: gpu,
                transfer: TransferModel {
                    h2d_bytes_per_item: h2d,
                    d2h_bytes_per_item: d2h,
                    fixed_bytes: fixed,
                },
                link_bandwidth: bw,
                gpu_granularity: gran,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_split_conserves_items_and_bounds_beta(p in arb_problem()) {
        let s = solve(&p);
        prop_assert_eq!(s.gpu_items + s.cpu_items, p.items);
        prop_assert!((0.0..=1.0).contains(&s.beta));
        prop_assert!(s.predicted_time.is_finite());
        prop_assert!(s.predicted_time >= 0.0);
    }

    #[test]
    fn solver_never_beats_exhaustive_granule_sweep(
        mut p in arb_problem(),
        small_items in 1u64..100_000,
    ) {
        // The rounded solution must be optimal among granule multiples
        // (checked on problems small enough to sweep).
        p.items = small_items;
        let s = solve(&p);
        let g = p.gpu_granularity.max(1);
        let mut ng = 0;
        let mut best = f64::INFINITY;
        while ng <= p.items {
            best = best.min(p.hybrid_time(ng));
            ng += g;
        }
        best = best.min(p.hybrid_time(p.items));
        prop_assert!(
            s.predicted_time <= best * (1.0 + 1e-9) + 1e-12,
            "solver {} vs sweep {}", s.predicted_time, best
        );
    }

    #[test]
    fn beta_monotone_in_gpu_rate(p in arb_problem(), factor in 1.1f64..16.0) {
        let s1 = solve(&p);
        let mut faster = p;
        faster.gpu_rate *= factor;
        let s2 = solve(&faster);
        prop_assert!(s2.beta >= s1.beta - 1e-12);
    }

    #[test]
    fn ratio_conversion_is_sound(beta in 0.0f64..=1.0, m in 1u64..512) {
        let (g, c) = ratio_to_counts(beta, m);
        prop_assert_eq!(g + c, m);
        let realized = g as f64 / m as f64;
        prop_assert!((realized - beta).abs() <= 0.5 / m as f64 + 1e-12);
    }

    #[test]
    fn split_even_partitions_exactly(items in 0u64..1_000_000, parts in 1u64..1000) {
        let chunks = split_even(items, parts);
        let total: u64 = chunks.iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(total, items);
        let mut cursor = 0;
        for &(s, e) in &chunks {
            prop_assert_eq!(s, cursor);
            prop_assert!(e > s);
            cursor = e;
        }
        // Balance: sizes differ by at most 1.
        if let (Some(max), Some(min)) = (
            chunks.iter().map(|(s, e)| e - s).max(),
            chunks.iter().map(|(s, e)| e - s).min(),
        ) {
            prop_assert!(max - min <= 1);
        }
    }
}

/// A random task program over a handful of buffers: tasks read/write random
/// regions; taskwaits sprinkled in.
fn arb_program() -> impl proptest::strategy::Strategy<Value = Program> {
    let task = (
        0usize..3,                                    // buffer
        0u64..900,                                    // start
        1u64..100,                                    // len
        prop_oneof![Just(0u8), Just(1u8), Just(2u8)], // mode
        any::<bool>(),                                // pinned to cpu?
        prop_oneof![Just(0u8), Just(1u8), Just(2u8)], // pin choice: none/cpu/gpu
    );
    proptest::collection::vec((task, any::<bool>()), 1..60).prop_map(|specs| {
        let mut b = Program::builder();
        let bufs = [
            b.buffer("b0", 1000, 4),
            b.buffer("b1", 1000, 8),
            b.buffer("b2", 1000, 4),
        ];
        let k = b.kernel("k", KernelProfile::compute_only(1e5));
        for ((buf, start, len, mode, _, pin), wait) in specs {
            let region = Region::new(bufs[buf], start, (start + len).min(1000));
            let access = match mode {
                0 => Access::read(region),
                1 => Access::write(region),
                _ => Access::read_write(region),
            };
            let items = region.len();
            match pin {
                0 => {
                    b.submit_dynamic(k, items, vec![access]);
                }
                1 => {
                    b.submit_pinned(k, items, vec![access], DeviceId(0));
                }
                _ => {
                    b.submit_pinned(k, items, vec![access], DeviceId(1));
                }
            }
            if wait {
                b.taskwait();
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dependence_edges_point_backwards_and_are_acyclic(p in arb_program()) {
        let g = TaskGraph::build(&p);
        for (t, preds) in g.preds.iter().enumerate() {
            for pr in preds {
                prop_assert!(pr.0 < t, "edge {} -> {} points forward", pr.0, t);
            }
        }
        // Symmetric succ/pred consistency.
        for (t, succs) in g.succs.iter().enumerate() {
            for s in succs {
                prop_assert!(g.preds[s.0].iter().any(|x| x.0 == t));
            }
        }
    }

    #[test]
    fn simulation_completes_and_conserves_items(p in arb_program()) {
        let platform = Platform::test_small();
        let submitted: u64 = p.tasks().iter().map(|(_, t)| t.items).sum();
        for sched_kind in 0..3 {
            let report = match sched_kind {
                0 => {
                    // Pinned scheduler needs all tasks pinned; pin the free ones.
                    let mut pp = p.clone();
                    for op in &mut pp.ops {
                        if let hetero_match::runtime::Op::Submit(t) = op {
                            t.pinned.get_or_insert(DeviceId(0));
                        }
                    }
                    simulate(&pp, &platform, &mut PinnedScheduler)
                }
                1 => {
                    let mut s = DepScheduler::new(&platform);
                    simulate(&p, &platform, &mut s)
                }
                _ => {
                    let mut s = PerfScheduler::new(&platform);
                    simulate(&p, &platform, &mut s)
                }
            };
            let processed: u64 = report.counters.devices.iter().map(|d| d.items).sum();
            prop_assert_eq!(processed, submitted);
            let tasks: u64 = report.counters.devices.iter().map(|d| d.tasks).sum();
            prop_assert_eq!(tasks as usize, p.task_count());
        }
    }

    #[test]
    fn simulation_is_deterministic(p in arb_program()) {
        let platform = Platform::test_small();
        let r1 = {
            let mut s = DepScheduler::new(&platform);
            simulate(&p, &platform, &mut s)
        };
        let r2 = {
            let mut s = DepScheduler::new(&platform);
            simulate(&p, &platform, &mut s)
        };
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.counters, r2.counters);
    }

    #[test]
    fn makespan_bounded_by_critical_path_and_serial_time(p in arb_program()) {
        let platform = Platform::test_small();
        let mut s = DepScheduler::new(&platform);
        let report = simulate(&p, &platform, &mut s);
        // Lower bound: the largest single-task busy time is on some slot.
        // Upper bound: everything serialised on the slowest device plus all
        // transfer time plus overheads (loose but must hold).
        let total_busy: SimTime = report.counters.devices.iter().map(|d| d.busy).sum();
        prop_assert!(report.makespan <= total_busy + report.counters.transfers.time + SimTime::from_millis(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planner_conserves_domain_for_every_strategy(
        n in 1_000u64..2_000_000,
        kernels in 1usize..4,
        iterations in 1u32..4,
        sync in any::<bool>(),
    ) {
        let desc = hetero_match::apps::synth::multi_kernel(
            "prop",
            n,
            kernels,
            256.0,
            if iterations > 1 {
                hetero_match::matchmaker::ExecutionFlow::Loop { iterations }
            } else {
                hetero_match::matchmaker::ExecutionFlow::Sequence
            },
            sync,
        );
        let class = classify(&desc);
        let platform = Platform::icpp15();
        let planner = Planner::new(&platform);
        let mut configs = vec![ExecutionConfig::OnlyCpu, ExecutionConfig::OnlyGpu];
        configs.extend(
            PartStrategy::ALL.iter().filter(|s| s.applicable(class)).map(|&s| ExecutionConfig::Strategy(s)),
        );
        for config in configs {
            let plan = planner.plan(&desc, config);
            plan.program.validate().unwrap();
            let invocations = desc.kernels.len() as u64 * iterations as u64;
            let total: u64 = plan.program.tasks().iter().map(|(_, t)| t.items).sum();
            prop_assert_eq!(total, n * invocations, "config {}", config);
        }
    }

    #[test]
    fn classifier_is_total_and_stable(nk in 1usize..6, flow_kind in 0u8..3, iters in 1u32..5) {
        let flow = match flow_kind {
            0 => hetero_match::matchmaker::ExecutionFlow::Sequence,
            1 => hetero_match::matchmaker::ExecutionFlow::Loop { iterations: iters },
            _ => hetero_match::matchmaker::ExecutionFlow::Dag {
                edges: (1..nk).map(|i| (0, i)).collect(),
            },
        };
        let desc = hetero_match::apps::synth::multi_kernel(
            "prop", 1024, nk, 16.0,
            flow.clone(), false,
        );
        let c1 = classify(&desc);
        let c2 = classify(&desc);
        prop_assert_eq!(c1, c2);
        prop_assert!(AppClass::ALL.contains(&c1));
        // Ranking is non-empty and every entry applicable.
        let ranking = hetero_match::matchmaker::ranking(c1, hetero_match::matchmaker::SyncMode::WithoutSync);
        prop_assert!(!ranking.is_empty());
        for s in ranking {
            prop_assert!(s.applicable(c1));
        }
    }
}
