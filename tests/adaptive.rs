//! End-to-end acceptance for adaptive repartitioning (PR 3).
//!
//! A seeded `ProfilePerturb` halves the planner's GPU-throughput estimate:
//! the static SP-Single plan under-offloads, and the run is imbalanced at
//! every taskwait barrier while execution proceeds at the platform's true
//! rates. The adaptive controller must (a) detect the skew, (b) re-solve
//! the split from observed throughputs and recover most of the makespan
//! gap versus the oracle (unskewed) plan, (c) escalate to DP-Perf *only*
//! when re-solving is exhausted, and (d) replay byte-identically from the
//! same seed. With adaptation off and no perturbation, the adaptive entry
//! point must be byte-identical to the resilient executor.

use hetero_match::apps::synth;
use hetero_match::matchmaker::{
    AccessPattern, Analyzer, AppDescriptor, BufferSpec, ExecutionConfig, ExecutionFlow, KernelSpec,
    Planner, Strategy, SyncPolicy,
};
use hetero_match::platform::{
    DeviceId, Efficiency, FaultSchedule, KernelProfile, Platform, Precision, RetryPolicy, SimTime,
};
use hetero_match::runtime::{
    simulate_adaptive, AccessMode, AdaptConfig, AdaptPlan, HealthConfig, PinnedScheduler,
};
use proptest::prelude::*;

/// SK-Loop: 8 iterations of a compute-heavy kernel with a taskwait between
/// iterations, so the controller gets 7 barriers to observe and correct.
fn app() -> AppDescriptor {
    synth::single_kernel(
        "adaptive",
        1 << 20,
        65536.0,
        ExecutionFlow::Loop { iterations: 8 },
        true,
    )
}

/// The planner-visible GPU rate is halved for the whole run; true
/// execution rates are untouched (that is the point of `ProfilePerturb`).
fn halved_gpu_profile(seed: u64) -> FaultSchedule {
    FaultSchedule::new(seed).with_profile_perturb(DeviceId(1), 0.5, SimTime::ZERO, SimTime::MAX)
}

const CONFIG: ExecutionConfig = ExecutionConfig::Strategy(Strategy::SpSingle);

#[test]
fn misprediction_hurts_and_repartitioning_recovers_the_gap() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let schedule = halved_gpu_profile(42);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();

    // Oracle: the faithful plan. The perturbation only skews profiling, so
    // executing the unskewed plan under the schedule costs nothing.
    let oracle = analyzer.simulate_resilient(&desc, CONFIG, &schedule, policy, &health);
    assert_eq!(oracle.makespan, analyzer.simulate(&desc, CONFIG).makespan);

    // Mispredicted baseline: the skewed plan, no mitigation.
    let mis = analyzer.simulate_adaptive(
        &desc,
        CONFIG,
        &schedule,
        policy,
        &health,
        &AdaptConfig::disabled(),
    );
    assert!(
        mis.makespan > oracle.makespan,
        "halving the planner's GPU estimate must cost makespan \
         (mis {:?} vs oracle {:?})",
        mis.makespan,
        oracle.makespan
    );

    // Adaptive run: detect, re-solve, re-pin.
    let adaptive = analyzer.simulate_adaptive(
        &desc,
        CONFIG,
        &schedule,
        policy,
        &health,
        &AdaptConfig::enabled_default(),
    );
    assert!(adaptive.adapt.imbalances_detected >= 1);
    assert!(adaptive.adapt.repartitions >= 1, "{:?}", adaptive.adapt);
    assert!(adaptive.adapt.items_moved > 0);
    // Re-solving fixed the balance, so escalation never became legal.
    assert!(!adaptive.adapt.escalated, "{:?}", adaptive.adapt);
    assert!(adaptive.adapt.final_skew < adaptive.adapt.max_skew);

    let gap = mis.makespan.as_secs_f64() - oracle.makespan.as_secs_f64();
    let recovered = mis.makespan.as_secs_f64() - adaptive.makespan.as_secs_f64();
    assert!(
        recovered >= 0.6 * gap,
        "adaptation must recover >= 60% of the misprediction gap \
         (recovered {:.3e} of {:.3e}s, {:.0}%)",
        recovered,
        gap,
        100.0 * recovered / gap
    );
}

#[test]
fn escalation_fires_only_when_resolves_are_exhausted() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let schedule = halved_gpu_profile(42);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();

    // Repartitioning disabled: every trigger burns a "re-solve" that
    // cannot help, so after `max_resolves` misses the plan escalates.
    let cfg = AdaptConfig {
        repartition: false,
        max_resolves: 1,
        ..AdaptConfig::enabled_default()
    };
    let escalated = analyzer.simulate_adaptive(&desc, CONFIG, &schedule, policy, &health, &cfg);
    assert!(escalated.adapt.escalated, "{:?}", escalated.adapt);
    assert_eq!(escalated.adapt.repartitions, 0);
    assert!(escalated.adapt.escalated_at_epoch.is_some());
    assert!(escalated.adapt.escalated_tasks > 0);

    // The escalated DP-Perf (seeded from the run's own observations)
    // still beats riding the mispredicted plan to the end.
    let mis = analyzer.simulate_adaptive(
        &desc,
        CONFIG,
        &schedule,
        policy,
        &health,
        &AdaptConfig::disabled(),
    );
    assert!(
        escalated.makespan < mis.makespan,
        "escalated {:?} vs mispredicted {:?}",
        escalated.makespan,
        mis.makespan
    );

    // Plenty of re-solve budget with working repartitioning: the balance
    // target is met again before the budget runs out, so no escalation.
    let repaired = analyzer.simulate_adaptive(
        &desc,
        CONFIG,
        &schedule,
        policy,
        &health,
        &AdaptConfig::enabled_default(),
    );
    assert!(!repaired.adapt.escalated);
}

#[test]
fn adaptive_runs_replay_byte_identically() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();
    for cfg in [
        AdaptConfig::enabled_default(),
        AdaptConfig {
            repartition: false,
            max_resolves: 1,
            ..AdaptConfig::enabled_default()
        },
    ] {
        let a = analyzer.simulate_adaptive(
            &desc,
            CONFIG,
            &halved_gpu_profile(42),
            policy,
            &health,
            &cfg,
        );
        let b = analyzer.simulate_adaptive(
            &desc,
            CONFIG,
            &halved_gpu_profile(42),
            policy,
            &health,
            &cfg,
        );
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same seed must replay the identical run ({cfg:?})"
        );
    }
}

#[test]
fn disabled_adaptation_without_perturbation_matches_resilient_exactly() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let schedule = FaultSchedule::new(7); // no events at all
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();

    let resilient = analyzer.simulate_resilient(&desc, CONFIG, &schedule, policy, &health);
    let adaptive_off = analyzer.simulate_adaptive(
        &desc,
        CONFIG,
        &schedule,
        policy,
        &health,
        &AdaptConfig::disabled(),
    );
    assert_eq!(
        serde_json::to_string(&resilient).unwrap(),
        serde_json::to_string(&adaptive_off).unwrap(),
        "adaptation off + no perturbation must be byte-identical to the resilient path"
    );

    // A well-predicted plan stays balanced: the controller observes but
    // never escalates.
    let adaptive_on = analyzer.simulate_adaptive(
        &desc,
        CONFIG,
        &schedule,
        policy,
        &health,
        &AdaptConfig::enabled_default(),
    );
    assert!(adaptive_on.adapt.barriers_observed > 0);
    assert!(!adaptive_on.adapt.escalated);
}

#[test]
fn degradation_ranking_with_adaptation_is_deterministic_and_complete() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = app();
    let schedule = halved_gpu_profile(42);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();
    let adapt = AdaptConfig::enabled_default();

    let entries = analyzer.rank_by_degradation_adaptive(&desc, &schedule, policy, &health, &adapt);
    // Baselines + the SK-Loop ranking (SP-Single, DP-Perf, DP-Dep).
    assert_eq!(entries.len(), 5);
    assert!(entries
        .iter()
        .any(|e| e.config == ExecutionConfig::Strategy(Strategy::SpSingle)));
    // Sorted by degradation, most robust first.
    for w in entries.windows(2) {
        assert!(w[0].degradation() <= w[1].degradation() + 1e-12);
    }
    // The single-device baselines never consulted the mispredicted model.
    for e in &entries {
        if matches!(
            e.config,
            ExecutionConfig::OnlyCpu | ExecutionConfig::OnlyGpu
        ) {
            assert!((e.degradation() - 1.0).abs() < 1e-9, "{}", e.config);
        }
    }
    let again = analyzer.rank_by_degradation_adaptive(&desc, &schedule, policy, &health, &adapt);
    for (a, b) in entries.iter().zip(&again) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.faulty.makespan, b.faulty.makespan);
    }
}

/// MK-Loop with two kernels of *opposite* device affinity over the same
/// buffer: `gpu_leaning` is compute-dense and efficient on the GPU,
/// `cpu_leaning` runs its best on the host. SP-Varied gives each kernel
/// its own split; what the adaptation controller must preserve.
fn opposed_affinity_app() -> AppDescriptor {
    let n = 1u64 << 20;
    let profile = |cpu: f64, gpu: f64| KernelProfile {
        flops_per_item: 65536.0,
        bytes_per_item: 8.0,
        fixed_flops: 0.0,
        fixed_bytes: 0.0,
        precision: Precision::Single,
        cpu_efficiency: Efficiency {
            compute: cpu,
            bandwidth: 0.6,
        },
        gpu_efficiency: Efficiency {
            compute: gpu,
            bandwidth: 0.7,
        },
    };
    AppDescriptor {
        name: "opposed".into(),
        buffers: vec![BufferSpec {
            name: "data".into(),
            items: n,
            item_bytes: 8,
        }],
        kernels: vec![
            KernelSpec {
                name: "gpu_leaning".into(),
                profile: profile(0.15, 0.45),
                domain: n,
                accesses: vec![AccessPattern::part(0, AccessMode::InOut)],
                weights: None,
            },
            KernelSpec {
                name: "cpu_leaning".into(),
                profile: profile(0.60, 0.02),
                domain: n,
                accesses: vec![AccessPattern::part(0, AccessMode::InOut)],
                weights: None,
            },
        ],
        flow: ExecutionFlow::Loop { iterations: 4 },
        sync: SyncPolicy::FULL,
    }
}

/// PR 8 satellite regression: SP-Varied adaptation must re-solve *each
/// kernel's own* problem against that kernel's observed rates. The old
/// SP-Single projection (kernel 0's problem, whole-device aggregate
/// rates) mis-repins when kernels have opposite affinities — the blended
/// CPU rate, inflated by `cpu_leaning`'s throughput, drags the
/// GPU-friendly epochs toward the host. Both paths face the same
/// mispredicted profile; the per-kernel re-solve must strictly beat the
/// projection.
#[test]
fn sp_varied_adaptation_resolves_each_kernel_not_the_sp_single_projection() {
    let platform = Platform::icpp15();
    let desc = opposed_affinity_app();
    let config = ExecutionConfig::Strategy(Strategy::SpVaried);
    // The planner profiled a perturbed platform: its GPU estimate is half
    // the true rate, so every kernel's static split under-offloads.
    let mut planner = Planner::new(&platform);
    planner.profile_skew = (1.0, 0.5);
    let plan = planner.plan(&desc, config);
    let adapt_plan = planner
        .adapt_plan(&desc, config)
        .expect("SP-Varied on a hybrid app yields an adapt plan");
    let per_kernel = adapt_plan
        .per_kernel
        .as_ref()
        .expect("multi-kernel SP-Varied plan must carry per-kernel splits");
    assert_eq!(per_kernel.len(), 2);
    assert_ne!(
        per_kernel[0].solution.gpu_items, per_kernel[1].solution.gpu_items,
        "opposite affinities must produce different splits"
    );

    // Execution itself is fault-free: the error lives in the profile.
    let schedule = FaultSchedule::new(3);
    let policy = RetryPolicy::default();
    let health = HealthConfig::disabled();
    let adapt = AdaptConfig {
        escalation: false,
        ..AdaptConfig::enabled_default()
    };
    let run = |cfg: &AdaptConfig, ap: Option<AdaptPlan>| {
        simulate_adaptive(
            &plan.program,
            &platform,
            &mut PinnedScheduler,
            &schedule,
            policy,
            &health,
            cfg,
            ap,
        )
    };

    let mis = run(&AdaptConfig::disabled(), None);
    // The old approximation: strip the per-kernel splits, leaving kernel
    // 0's problem and the aggregate-rate re-solve.
    let projected = run(
        &adapt,
        Some(AdaptPlan {
            per_kernel: None,
            ..adapt_plan.clone()
        }),
    );
    let varied = run(&adapt, Some(adapt_plan.clone()));

    assert!(
        varied.adapt.repartitions >= 1,
        "per-kernel re-solve must fire: {:?}",
        varied.adapt
    );
    assert!(
        varied.makespan < mis.makespan,
        "per-kernel adaptation must recover misprediction (varied {:?} vs mispredicted {:?})",
        varied.makespan,
        mis.makespan
    );
    assert!(
        varied.makespan < projected.makespan,
        "per-kernel re-solve must beat the SP-Single projection \
         (varied {:?} vs projected {:?})",
        varied.makespan,
        projected.makespan
    );

    // Byte-determinism of the new path: same seed, same run.
    let again = run(&adapt, Some(adapt_plan.clone()));
    assert_eq!(
        serde_json::to_string(&varied).unwrap(),
        serde_json::to_string(&again).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The controller never oscillates: every corrective action consumes a
    /// fresh imbalance trigger, so actions are bounded by detections, which
    /// are bounded by the program's barriers — on any seeded mix of
    /// profile misprediction and mid-run throttling. And the whole run is
    /// a pure function of the seed.
    #[test]
    fn controller_actions_are_bounded_and_deterministic(
        seed in 0u64..1_000,
        factor in prop_oneof![0.25f64..0.8, 1.25f64..4.0],
        ramp in any::<bool>(),
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let desc = app();
        let mut schedule = FaultSchedule::new(seed)
            .with_profile_perturb(DeviceId(1), factor, SimTime::ZERO, SimTime::MAX);
        if ramp {
            schedule = schedule.with_throttle(
                DeviceId(0),
                SimTime::ZERO,
                SimTime::from_millis(200),
                1.0,
                2.0,
            );
        }
        let policy = RetryPolicy::default();
        let health = HealthConfig::disabled();
        let adapt = AdaptConfig::enabled_default();

        let r = analyzer.simulate_adaptive(&desc, CONFIG, &schedule, policy, &health, &adapt);
        // 8 epochs: 7 taskwait barriers plus the end-of-program flush.
        prop_assert!(r.adapt.barriers_observed <= 8);
        prop_assert!(r.adapt.imbalances_detected <= r.adapt.barriers_observed);
        let actions = r.adapt.repartitions + u64::from(r.adapt.escalated);
        prop_assert!(
            actions <= r.adapt.imbalances_detected,
            "{} actions from {} detections: {:?}",
            actions, r.adapt.imbalances_detected, r.adapt
        );
        prop_assert_eq!(r.adapt.escalated, r.adapt.escalated_at_epoch.is_some());
        prop_assert!(r.adapt.final_skew <= r.adapt.max_skew);

        let r2 = analyzer.simulate_adaptive(&desc, CONFIG, &schedule, policy, &health, &adapt);
        prop_assert_eq!(
            serde_json::to_string(&r).unwrap(),
            serde_json::to_string(&r2).unwrap()
        );
    }

    /// With escalation off, every correction passes the no-regression
    /// guard, so adaptation never loses to riding the mispredicted plan.
    #[test]
    fn repartitioning_never_loses_to_the_mispredicted_plan(
        seed in 0u64..1_000,
        factor in prop_oneof![0.3f64..0.85, 1.2f64..3.0],
    ) {
        let platform = Platform::icpp15();
        let analyzer = Analyzer::new(&platform);
        let desc = app();
        let schedule = FaultSchedule::new(seed)
            .with_profile_perturb(DeviceId(1), factor, SimTime::ZERO, SimTime::MAX);
        let policy = RetryPolicy::default();
        let health = HealthConfig::disabled();

        let mis = analyzer.simulate_adaptive(
            &desc, CONFIG, &schedule, policy, &health, &AdaptConfig::disabled(),
        );
        let cfg = AdaptConfig { escalation: false, ..AdaptConfig::enabled_default() };
        let adaptive = analyzer.simulate_adaptive(&desc, CONFIG, &schedule, policy, &health, &cfg);
        prop_assert!(
            adaptive.makespan.as_secs_f64() <= mis.makespan.as_secs_f64() * (1.0 + 1e-9),
            "adaptive {:?} worse than mispredicted {:?} (factor {}, {:?})",
            adaptive.makespan, mis.makespan, factor, adaptive.adapt
        );
    }
}
