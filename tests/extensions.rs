//! End-to-end tests of the implemented extensions: task-size auto-tuning
//! (§V), MK-DAG refinement (§VII future work), and the §V
//! dynamic-behaves-static conversion, each validated through the full
//! analyze → plan → simulate pipeline.

use hetero_match::apps::{stream, synth};
use hetero_match::matchmaker::{
    classify, tune_task_size, Analyzer, AppClass, AppDescriptor, ExecutionConfig, ExecutionFlow,
    Strategy,
};
use hetero_match::platform::Platform;

/// A chain-shaped DAG application: three kernels piped through distinct
/// buffers, declared as a DAG (the paper's classifier calls it MK-DAG).
fn chain_dag(n: u64) -> AppDescriptor {
    let mut d = synth::multi_kernel("chain-as-dag", n, 3, 128.0, ExecutionFlow::Sequence, false);
    d.flow = ExecutionFlow::Dag {
        edges: vec![(0, 1), (1, 2)],
    };
    d
}

#[test]
fn dag_refinement_unlocks_static_strategies_for_chains() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = chain_dag(4 << 20);

    // The paper's classifier: MK-DAG, dynamic strategies only.
    let plain = analyzer.analyze(&desc);
    assert_eq!(plain.class, AppClass::MkDag);
    assert_eq!(plain.best, Strategy::DpPerf);

    // The refined classifier: MK-Seq, SP-Unified selected.
    let refined = analyzer.analyze_refined(&desc);
    assert_eq!(refined.class, AppClass::MkSeq);
    assert_eq!(refined.best, Strategy::SpUnified);

    // And the refinement pays: SP-Unified beats the plain choice.
    let dynamic = analyzer.simulate(&desc, ExecutionConfig::Strategy(plain.best));
    let fixed = analyzer.simulate(&desc, ExecutionConfig::Strategy(refined.best));
    assert!(
        fixed.makespan < dynamic.makespan,
        "refined {} vs plain {}",
        fixed.makespan,
        dynamic.makespan
    );
}

#[test]
fn dag_refinement_leaves_wide_dags_dynamic() {
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let fork = synth::dag("wide", 1 << 20, 5, 512.0);
    assert_eq!(classify(&fork), AppClass::MkDag);
    let refined = analyzer.analyze_refined(&fork);
    assert_eq!(refined.class, AppClass::MkDag);
    assert_eq!(refined.best, Strategy::DpPerf);
}

#[test]
fn autotuning_improves_or_matches_the_default_granularity() {
    let platform = Platform::icpp15();
    for desc in [
        stream::descriptor(1 << 22, None, false),
        hetero_match::apps::blackscholes::descriptor(1 << 22),
    ] {
        let mut analyzer = Analyzer::new(&platform);
        let default_m = analyzer.planner().dynamic_instances_per_kernel;
        let default_time = analyzer
            .simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
            .makespan;
        let result = tune_task_size(&mut analyzer, &desc, Strategy::DpPerf, None);
        assert!(
            result.best_time <= default_time,
            "{}: tuned {} (m={}) vs default {} (m={})",
            desc.name,
            result.best_time,
            result.best_m,
            default_time,
            default_m
        );
        // The paper's observation: granularity matters (>5% spread).
        assert!(result.sensitivity() > 1.05, "{}", desc.name);
    }
}

#[test]
fn tuned_dynamic_still_loses_to_matched_static() {
    // §V's concluding observation: "even so [with task-size tuning],
    // static partitioning outperforms dynamic partitioning for the first
    // four classes of applications."
    let platform = Platform::icpp15();
    let desc = stream::descriptor(1 << 22, None, false);
    let mut analyzer = Analyzer::new(&platform);
    let tuned = tune_task_size(&mut analyzer, &desc, Strategy::DpPerf, None);
    let static_best = analyzer
        .simulate(&desc, ExecutionConfig::Strategy(Strategy::SpUnified))
        .makespan;
    assert!(
        static_best < tuned.best_time,
        "SP-Unified {} vs tuned DP-Perf {}",
        static_best,
        tuned.best_time
    );
}

#[test]
fn converted_static_approaches_sp_single() {
    // §V: converting a dynamic runtime to pinned instance counts gets
    // "close-to-optimal partitioning with minimal manual effort".
    let platform = Platform::icpp15();
    let analyzer = Analyzer::new(&platform);
    let desc = hetero_match::apps::blackscholes::paper_descriptor();
    let sp = analyzer
        .simulate(&desc, ExecutionConfig::Strategy(Strategy::SpSingle))
        .makespan;
    let converted = analyzer
        .simulate(&desc, ExecutionConfig::ConvertedStatic)
        .makespan;
    let dp = analyzer
        .simulate(&desc, ExecutionConfig::Strategy(Strategy::DpPerf))
        .makespan;
    // Converted lands between the optimum and plain dynamic, near the
    // optimum (within the half-instance rounding of the ratio).
    assert!(
        converted.as_secs_f64() <= sp.as_secs_f64() * 1.15,
        "conv {converted} vs sp {sp}"
    );
    assert!(converted <= dp, "conv {converted} vs dp {dp}");
}
